"""Figure 18: perf/cost gain over optimal static provisioning."""

from conftest import run_and_report


def test_fig18_perf_cost(benchmark):
    result = run_and_report(benchmark, "fig18")
    # Paper: GeoMean 2.69x; the scaled substrate compresses the magnitude
    # but MITTS must never lose to its own seeded static baseline.
    assert result.summary["geomean_gain"] >= 1.0
    assert result.summary["max_gain"] > 1.0
