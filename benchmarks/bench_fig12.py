"""Figure 12: four-program throughput/fairness vs conventional schedulers."""

from conftest import run_and_report


def test_fig12_four_program(benchmark):
    result = run_and_report(benchmark, "fig12")
    # Paper: MITTS beats the best conventional scheduler on most mixes.
    gains = [value for key, value in result.summary.items()
             if key.endswith("_gain")]
    assert sum(1 for g in gains if g > 1.0) >= len(gains) // 2
