"""Figure 11: MITTS vs static bandwidth provisioning (per benchmark)."""

from conftest import run_and_report


def test_fig11_static_comparison(benchmark):
    result = run_and_report(benchmark, "fig11")
    # Paper: GeoMean 1.18x offline; online GA slightly worse but > 1.
    assert result.summary["geomean_offline_gain"] > 1.0
    assert result.summary["geomean_online_gain"] > 0.9
