"""Ablation: GA vs hill climbing vs random search (Section IV-B)."""

from conftest import run_and_report


def test_ablation_optimizer(benchmark):
    result = run_and_report(benchmark, "ablation_optimizer")
    # The GA should not lose to hill climbing at equal budget.
    assert result.summary["ga_fitness"] \
        >= result.summary["hill_fitness"] - 0.05
