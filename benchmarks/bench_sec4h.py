"""Section IV-H: shared vs per-thread MITTS for threaded applications."""

from conftest import run_and_report


def test_sec4h_threaded(benchmark):
    result = run_and_report(benchmark, "sec4h")
    ratios = [result.summary["x264_shared_over_per_thread"],
              result.summary["ferret_shared_over_per_thread"]]
    # Paper: shared is over 2x better; require a clear win on at least
    # one program and no loss on average.
    assert max(ratios) > 1.2
    assert sum(ratios) / len(ratios) > 1.0
