"""Substrate ablation: results under the instruction-window core model."""

from conftest import run_and_report


def test_ablation_core_model(benchmark):
    result = run_and_report(benchmark, "ablation_core_model")
    # MITTS must not lose to the best conventional scheduler under
    # either core model (>= parity at smoke-scale GA budgets).
    assert result.summary["simple_mitts_gain"] > 0.97
    assert result.summary["window_mitts_gain"] > 0.97
