"""Figure 2: intrinsic inter-arrival distributions under two LLC sizes."""

from conftest import run_and_report


def test_fig02_distributions(benchmark):
    result = run_and_report(benchmark, "fig02")
    # Paper: a larger LLC reduces the number of memory requests.
    for key, value in result.summary.items():
        if key.endswith("request_ratio_large_over_small"):
            assert value < 1.0
