"""Figure 14: MISE vs MITTS vs the MISE+MITTS hybrid."""

from conftest import run_and_report


def test_fig14_hybrid(benchmark):
    result = run_and_report(benchmark, "fig14")
    # Paper: the hybrid adds a few percent over MITTS alone; at smoke
    # scale we accept parity within noise.
    assert result.summary["hybrid_fairness_gain_vs_mitts"] > 0.9
    assert result.summary["hybrid_throughput_gain_vs_mitts"] > 0.9
