"""Ablation: memory-controller transaction-queue depth (Section III-C)."""

from conftest import run_and_report


def test_ablation_fifo(benchmark):
    result = run_and_report(benchmark, "ablation_fifo")
    # A too-small window costs throughput relative to the 32-entry one.
    assert result.summary["savg_depth_8"] \
        >= result.summary["savg_depth_32"] * 0.98
