"""Substrate ablation: DRAM address interleaving scheme."""

from conftest import run_and_report


def test_ablation_addrmap(benchmark):
    result = run_and_report(benchmark, "ablation_addrmap")
    # Row interleaving must give the streaming benchmark a much higher
    # row-buffer hit rate than bank interleaving does; bank-level
    # parallelism may compensate in throughput, which is the point of
    # recording both.
    assert result.summary["libquantum_row_rowhit"] \
        > result.summary["libquantum_bank_rowhit"] + 0.1
    assert result.summary["mcf_row_rowhit"] \
        >= result.summary["mcf_bank_rowhit"]
