"""Extension: congestion feedback to the MITTS units (Section III-C)."""

from conftest import run_and_report


def test_ablation_congestion(benchmark):
    result = run_and_report(benchmark, "ablation_congestion")
    # Feedback must reduce the memory system's own delay (and queueing),
    # trading some throughput for smoothness.
    assert result.summary["latency_feedback_on"] \
        <= result.summary["latency_feedback_off"]
    assert result.summary["peak_queue_on"] \
        <= result.summary["peak_queue_off"]
