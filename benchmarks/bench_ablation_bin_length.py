"""Ablation: bin interval length L."""

from conftest import run_and_report


def test_ablation_bin_length(benchmark):
    result = run_and_report(benchmark, "ablation_bin_length")
    # Larger L stretches the same credits over a longer period: for a
    # memory-intensive program this costs throughput.
    assert result.summary["work_L40"] < result.summary["work_L5"]
