"""Figure 15: the comparison repeated with a large LLC."""

from conftest import run_and_report


def test_fig15_large_llc(benchmark):
    result = run_and_report(benchmark, "fig15")
    # Paper: MITTS still wins with a large LLC, by smaller margins.
    assert result.summary["wl1_fairness_gain"] > 1.0
