"""Section III-F: profiling-based configuration vs the GA."""

from conftest import run_and_report


def test_ablation_profiling(benchmark):
    result = run_and_report(benchmark, "ablation_profiling")
    # One profiling run lands within about half of the GA's searched
    # perf/cost optimum (the GA trims headroom profiling keeps).
    for key, ratio in result.summary.items():
        assert ratio > 0.4, key
