"""Figure 13: eight-program throughput/fairness vs conventional schedulers."""

from conftest import run_and_report


def test_fig13_eight_program(benchmark):
    result = run_and_report(benchmark, "fig13")
    assert result.summary["wl4_fairness_gain"] > 1.0
