"""Section IV-I: sensitivity to the number of credit bins."""

from conftest import run_and_report


def test_sec4i_bin_count(benchmark):
    result = run_and_report(benchmark, "sec4i")
    # Paper: more bins help with diminishing returns; at smoke scale we
    # check 10 bins is at least as good as 4.
    rows = {bins: savg for bins, savg in result.rows}
    assert rows[10] <= rows[4] * 1.05
