"""Section III-E: MITTS hardware cost table."""

from conftest import run_and_report


def test_hw_cost(benchmark):
    result = run_and_report(benchmark, "hw_cost")
    assert abs(result.summary["default_area_mm2"]
               - result.summary["published_area_mm2"]) < 1e-6
    assert result.summary["default_core_fraction"] <= 0.009 + 1e-9
