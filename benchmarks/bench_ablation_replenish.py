"""Ablation: reset (Algorithm 1) vs rate-drip replenishment."""

from conftest import run_and_report


def test_ablation_replenish(benchmark):
    result = run_and_report(benchmark, "ablation_replenish")
    # Reset preserves burst capacity on a bursty program.
    assert result.summary["reset_work"] \
        >= 0.95 * result.summary["drip_work"]
