"""Shared helpers for the figure/table regeneration benchmarks.

Each ``bench_*.py`` regenerates one of the paper's tables or figures at
the ``smoke`` scale (override with ``REPRO_SCALE=small|paper``) and prints
the same rows/series the paper reports.  pytest-benchmark measures the
harness runtime; the scientific output is the printed table, which is why
running with ``-s`` (or reading the captured output) matters more than
the timing statistics.
"""

import os

import pytest


SCALE = os.environ.get("REPRO_SCALE", "smoke")
SEED = int(os.environ.get("REPRO_SEED", "1"))


def run_and_report(benchmark, experiment_name):
    """Run one registered experiment under pytest-benchmark and print it."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(experiment_name, scale=SCALE, seed=SEED),
        rounds=1, iterations=1)
    print()
    print(result.render())
    return result


@pytest.fixture
def scale():
    return SCALE
