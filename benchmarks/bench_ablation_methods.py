"""Ablation: hybrid accounting method 1 (timestamp) vs method 2."""

from conftest import run_and_report


def test_ablation_methods(benchmark):
    result = run_and_report(benchmark, "ablation_methods")
    # The two methods must agree closely; method 1 is slightly aggressive.
    ratio = result.summary["method1_savg"] / result.summary["method2_savg"]
    assert 0.9 < ratio < 1.1
