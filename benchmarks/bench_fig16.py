"""Figure 16: bandwidth isolation vs static even/heterogeneous splits."""

from conftest import run_and_report


def test_fig16_isolation(benchmark):
    result = run_and_report(benchmark, "fig16")
    assert result.summary["throughput_gain_vs_even"] > 0.95
    assert result.summary["fairness_gain_vs_even"] > 1.0
