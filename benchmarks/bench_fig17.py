"""Figure 17: optimal per-application bin configurations for perf/cost."""

from conftest import run_and_report


def test_fig17_bin_configs(benchmark):
    result = run_and_report(benchmark, "fig17")
    # Paper: memory-intensive mcf buys far more credits than sjeng.
    assert result.summary["mcf_total_credits"] \
        > result.summary["sjeng_total_credits"]
    assert result.summary["mcf_fast_credits"] \
        >= result.summary["sjeng_fast_credits"]
