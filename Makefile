# Developer/CI entry points. `make lint test` is the same gate CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: all lint test test-contracts baseline rules bench

all: lint test

## simlint over the library; exits nonzero on any non-baselined finding
lint:
	$(PYTHON) -m repro.analysis src --format json

## tier-1 test suite
test:
	$(PYTHON) -m pytest -x -q

## tier-1 suite with runtime invariant contracts active
test-contracts:
	REPRO_CONTRACTS=1 $(PYTHON) -m pytest -x -q

## regenerate simlint-baseline.json (policy: keep it empty — fix findings)
baseline:
	$(PYTHON) -m repro.analysis src --write-baseline

## print the simlint rule table
rules:
	$(PYTHON) -m repro.analysis --list-rules

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s
