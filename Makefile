# Developer/CI entry points. `make lint test` is the same gate CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

# `make sweep` knobs
JOBS ?= 4
SCALE ?= smoke
CACHE_DIR ?= .repro-cache
RESULTS_DIR ?= results

.PHONY: all lint analyze typecheck test test-fast test-contracts \
	baseline rules bench bench-quick bench-figures sweep chaos \
	fabric-smoke chaos-fleet validate

all: lint analyze test

## simlint over the library; exits nonzero on any non-baselined finding
lint:
	$(PYTHON) -m repro.analysis src --format json

## simlint + simflow (whole-program effect/dataflow/pickle analysis)
analyze:
	$(PYTHON) -m repro.analysis --whole-program src --format json

## mypy --strict over the typed core; skipped (exit 0) when mypy is not
## installed so offline checkouts are never blocked by an optional tool
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --strict src/repro/core src/repro/analysis; \
	else \
		echo "typecheck: mypy not installed, skipping"; \
	fi

## tier-1 test suite
test:
	$(PYTHON) -m pytest -x -q

## tier-1 minus the @pytest.mark.slow golden-trace replays (~3x faster
## edit loop; CI and `make test` still run everything)
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## tier-1 suite with runtime invariant contracts active
test-contracts:
	REPRO_CONTRACTS=1 $(PYTHON) -m pytest -x -q

## seeded property harness + analytic bound checker (reproducible fuzz)
validate:
	$(PYTHON) -m repro.validate --scenarios 25 --seed 0

## regenerate simlint-baseline.json (policy: keep it empty — fix findings)
baseline:
	$(PYTHON) -m repro.analysis src --write-baseline

## print the simlint rule table
rules:
	$(PYTHON) -m repro.analysis --list-rules

## simulator throughput benchmark; writes BENCH_sim.json and fails on a
## >30% events/sec regression against the committed baseline
bench:
	$(PYTHON) -m repro.bench --baseline benchmarks/perf/baseline.json

## CI smoke variant of `bench` (shorter runs, fewer repeats)
bench-quick:
	$(PYTHON) -m repro.bench --quick \
		--baseline benchmarks/perf/baseline.json

## paper-figure microbenchmarks (pytest-benchmark; the old `make bench`)
bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## seeded fault-injection suite + checkpoint/resume selfcheck
chaos:
	$(PYTHON) -m repro.resilience --chaos --seed 7 --selfcheck

## campaign-service acceptance run: serial drain vs two concurrent
## worker pools with one killed mid-campaign; merged DBs must be
## bit-identical (same scenario CI's fabric-smoke job runs)
fabric-smoke:
	$(PYTHON) -m repro.fabric selfcheck --workdir .fabric-smoke \
		--num-jobs 24 --cycles 3000

## supervised-fleet acceptance run: a poisoned campaign drained on real
## storage and again behind a seeded FaultyFS with one pool hard-killed;
## both must end complete-degraded with identical fingerprints (same
## scenario CI's chaos-fleet job runs)
chaos-fleet:
	$(PYTHON) -m repro.fabric fleetcheck --workdir .fabric-fleet \
		--num-jobs 24 --cycles 1200

## run every experiment in parallel with the result cache on;
## interrupted sweeps pick up where they left off (same invocation)
sweep:
	$(PYTHON) -m repro.experiments --all --jobs $(JOBS) --scale $(SCALE) \
		--cache-dir $(CACHE_DIR) --save-dir $(RESULTS_DIR)
