#!/usr/bin/env python3
"""Phase-adaptive MITTS: detect phase changes, retune on demand.

The paper's phase-based online GA reconfigures at fixed phase boundaries;
a deployed system has to *find* the boundaries. This example wires a
:class:`~repro.workloads.phases.SystemPhaseMonitor` to the rule-based
trigger Section III-F suggests ("run Genetic Algorithm to reconfigure
bins when ..."): whenever any program's behaviour vector shifts, a fresh
CONFIG_PHASE is scheduled.

Usage::

    python examples/phase_adaptation.py
"""

from repro import OnlineGaTuner, SimSystem
from repro.sched import FrFcfsScheduler
from repro.sim import SCALED_MULTI_CONFIG
from repro.workloads import SystemPhaseMonitor, workload_names, \
    workload_traces

WORKLOAD = 1
CYCLES = 200_000


def main():
    names = workload_names(WORKLOAD)
    traces = workload_traces(WORKLOAD)
    print(f"workload {WORKLOAD}: {', '.join(names)}")

    system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                       scheduler=FrFcfsScheduler(len(traces)))
    tuner = OnlineGaTuner(system, objective="throughput", generations=2,
                          population=4, epoch=2_000, overhead_cycles=500)

    retunes = []

    def on_phase_change():
        # Rule-based trigger: start a new CONFIG_PHASE unless one is
        # already running (run_phase_started_at is None while configuring).
        if tuner.run_phase_started_at is not None:
            retunes.append(system.engine.now)
            system.engine.schedule(system.engine.now,
                                   tuner._begin_config_phase)

    monitor = SystemPhaseMonitor(system, window=5_000, threshold=0.55,
                                 confirm=2, on_change=on_phase_change)
    stats = system.run(CYCLES)

    print(f"\nphase changes detected at cycles: {monitor.changes_at}")
    print(f"retunes triggered at: {retunes}")
    print(f"GA software invocations: {tuner.software_invocations}")
    print("\nfinal per-program bin configurations:")
    for name, config in zip(names, tuner.best_genome):
        print(f"  {name:12s} {config.as_list()}")
    print("\ntotal work:",
          sum(core.work_cycles for core in stats.cores))


if __name__ == "__main__":
    main()
