#!/usr/bin/env python3
"""Online auto-tuning: the Figure 10 genetic algorithm at runtime.

Attaches an :class:`~repro.tuning.OnlineGaTuner` to a live four-program
simulation.  The tuner measures each program's quasi-alone service rate,
evaluates child bin-configurations in epochs, evolves them at generation
boundaries (paying a modelled software overhead), and installs the winner
for the RUN_PHASE -- no offline profiling required.

Usage::

    python examples/online_tuning.py
"""

from repro import OnlineGaTuner, SimSystem
from repro.sched import FrFcfsScheduler
from repro.sim import SCALED_MULTI_CONFIG
from repro.workloads import workload_names, workload_traces

WORKLOAD = 2
CYCLES = 150_000


def main():
    names = workload_names(WORKLOAD)
    traces = workload_traces(WORKLOAD)
    print(f"workload {WORKLOAD}: {', '.join(names)}")

    baseline = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                         scheduler=FrFcfsScheduler(len(traces)))
    base_stats = baseline.run(CYCLES)
    base_work = [core.work_cycles for core in base_stats.cores]
    print(f"baseline (FR-FCFS, unshaped) total work: {sum(base_work):,}")

    system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                       scheduler=FrFcfsScheduler(len(traces)))
    tuner = OnlineGaTuner(system, objective="throughput",
                          generations=3, population=6, epoch=3_000,
                          overhead_cycles=1_000)
    stats = system.run(CYCLES)

    if tuner.run_phase_started_at is None:
        print("\nrun ended inside the CONFIG_PHASE "
              f"({tuner.software_invocations} software invocations so "
              f"far); lengthen CYCLES to reach the RUN_PHASE")
    else:
        print(f"\nCONFIG_PHASE took {tuner.config_phase_cycles:,} cycles "
              f"({tuner.software_invocations} software invocations); "
              f"RUN_PHASE began at cycle {tuner.run_phase_started_at:,}")
    print("per-generation best fitness:",
          [round(h, 3) for h in tuner.history])
    if tuner.best_genome is not None:
        print("\nbest bin configurations found:")
        for program, config in zip(names, tuner.best_genome):
            print(f"  {program:12s} {config.as_list()}")

    work = [core.work_cycles for core in stats.cores]
    print(f"\nonline-tuned total work: {sum(work):,} "
          f"(vs baseline {sum(base_work):,})")
    print("per-program:", dict(zip(names, work)))


if __name__ == "__main__":
    main()
