#!/usr/bin/env python3
"""Bandwidth isolation: protecting a latency-critical tenant.

A real-time-ish service (astar: low MLP, latency-sensitive) is co-located
with two aggressive memory hogs (libquantum, mcf).  Without source
control, the hogs destroy its performance.  MITTS shapers cap the hogs'
distributions -- bursts allowed, sustained rate limited -- restoring most
of the victim's standalone performance while costing the hogs little
(Section IV-F's isolation argument).

Usage::

    python examples/bandwidth_isolation.py
"""

from repro import BinConfig, MittsShaper, NoLimiter, SimSystem, trace_for
from repro.sim import SCALED_MULTI_CONFIG

CYCLES = 120_000
PROGRAMS = ("astar", "libquantum", "mcf")


def run(label, limiters):
    traces = [trace_for(name, seed=i + 1)
              for i, name in enumerate(PROGRAMS)]
    system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                       limiters=limiters)
    stats = system.run(CYCLES)
    work = [core.work_cycles for core in stats.cores]
    lat = [core.average_latency for core in stats.cores]
    print(f"{label:22s} " + "  ".join(
        f"{name}: work={w:6d} lat={l:5.0f}"
        for name, w, l in zip(PROGRAMS, work, lat)))
    return work


def main():
    print(f"co-running {', '.join(PROGRAMS)} for {CYCLES:,} cycles\n")

    # Standalone reference for the victim.
    solo = SimSystem([trace_for("astar", seed=1)],
                     config=SCALED_MULTI_CONFIG)
    solo_work = solo.run(CYCLES).cores[0].work_cycles
    print(f"astar alone: work={solo_work}\n")

    unshaped = run("unshaped", None)

    # Cap each hog: a few burst credits up front, bulk pushed into the
    # slow tail so the sustained rate is genuinely limited.
    hog_config = BinConfig.from_credits([4, 1, 1, 0, 0, 0, 0, 0, 0, 12])
    shaped = run("hogs shaped by MITTS", [
        NoLimiter(),
        MittsShaper(hog_config),
        MittsShaper(hog_config),
    ])

    recovered = (shaped[0] - unshaped[0]) / max(1, solo_work - unshaped[0])
    print(f"\nvictim work: alone={solo_work}, shared={unshaped[0]}, "
          f"shaped={shaped[0]}")
    print(f"MITTS recovered {100 * recovered:.0f}% of the interference "
          f"loss at a bounded cost to the hogs.")


if __name__ == "__main__":
    main()
