#!/usr/bin/env python3
"""Auto-scaling a tenant's distribution (Section III-F).

Implements the paper's two control-plane mechanisms on a live system:

* a **schedule rule** — "add 8 credits to bin 0 between cycle 30k and
  90k" (the paper's '8AM to 6PM' example, in cycles);
* a **trigger rule** — "when the stall fraction exceeds 40 %, add slow-bin
  credits" (the paper's 'run GA when the objective drops' rule shape).

Usage::

    python examples/autoscaling.py
"""

from repro import BinConfig, MittsShaper, SimSystem, trace_for
from repro.cloud import AutoScaler, ScheduleRule, TriggerRule
from repro.sim import SCALED_MULTI_CONFIG

CYCLES = 120_000

BASE = BinConfig.from_credits([4, 2, 1, 1, 1, 1, 1, 1, 1, 2])


def main():
    system = SimSystem([trace_for("apache"), trace_for("mcf", seed=2)],
                       config=SCALED_MULTI_CONFIG,
                       limiters=[MittsShaper(BASE),
                                 MittsShaper(BinConfig.unlimited())])

    rush_hour = ScheduleRule(start=30_000, end=90_000, bin_index=0,
                             delta=8)
    relief_valve = TriggerRule(
        metric="stall_fraction", threshold=0.4, direction="above",
        action=lambda config: config.with_credits(
            9, min(config.spec.max_credits, config.credits[9] + 4)),
        cooldown=2)
    scaler = AutoScaler(system, core_id=0, base_config=BASE,
                        schedules=[rush_hour], triggers=[relief_valve],
                        epoch=5_000)

    print(f"base distribution: {BASE.as_list()}")
    print("schedule: +8 credits in bin 0 during cycles 30k-90k")
    print("trigger:  +4 slow credits when stall fraction > 40%\n")
    stats = system.run(CYCLES)

    print("reconfiguration events:")
    for cycle, reason in scaler.events:
        print(f"  cycle {cycle:>7,}: {reason}")
    limiter = system.limiter(0)
    print(f"\nfinal distribution: {limiter.config.as_list()}")
    print(f"tenant work: {stats.cores[0].work_cycles:,}  "
          f"shaper stalls: {stats.cores[0].shaper_stall_cycles:,}")


if __name__ == "__main__":
    main()
