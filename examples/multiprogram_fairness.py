#!/usr/bin/env python3
"""Multi-program fairness: MITTS vs conventional memory schedulers.

Runs the paper's workload 1 (gcc, libquantum, bzip, mcf) under each
conventional scheduler and under MITTS with GA-optimised per-core bin
configurations, reporting the Section IV-D metrics: average slowdown
(S_avg, throughput) and maximum slowdown (S_max, fairness).

Usage::

    python examples/multiprogram_fairness.py
"""

from repro.experiments.common import (SCALED_MULTI_CONFIG,
                                      conventional_schedulers, get_scale,
                                      measure_alone, optimize_mitts,
                                      run_scheduler, slowdowns_against)
from repro.workloads import workload_names, workload_traces

WORKLOAD = 1
CYCLES = 100_000


def main():
    names = workload_names(WORKLOAD)
    print(f"workload {WORKLOAD}: {', '.join(names)}")
    traces = workload_traces(WORKLOAD)
    alone = measure_alone(traces, SCALED_MULTI_CONFIG, CYCLES)
    print("alone work per program:",
          [int(w) for w in alone])

    print(f"\n{'policy':16s} {'S_avg':>7s} {'S_max':>7s}   per-program")
    for name in conventional_schedulers():
        stats = run_scheduler(name, traces, SCALED_MULTI_CONFIG, CYCLES)
        slowdowns = slowdowns_against(alone, stats)
        print(f"{name:16s} {sum(slowdowns) / len(slowdowns):7.3f} "
              f"{max(slowdowns):7.3f}   "
              f"{[round(s, 2) for s in slowdowns]}")

    scale = get_scale("smoke")
    for label, objective in (("MITTS (throughput)", "throughput"),
                             ("MITTS (fairness)", "fairness")):
        ga_result, evaluator = optimize_mitts(
            traces, SCALED_MULTI_CONFIG, CYCLES, objective, scale,
            alone_work=alone)
        stats = evaluator.run_genome(ga_result.best_genome)
        slowdowns = slowdowns_against(alone, stats)
        print(f"{label:16s} {sum(slowdowns) / len(slowdowns):7.3f} "
              f"{max(slowdowns):7.3f}   "
              f"{[round(s, 2) for s in slowdowns]}")
        for program, config in zip(names, ga_result.best_genome):
            print(f"    {program:12s} credits {config.as_list()}")


if __name__ == "__main__":
    main()
