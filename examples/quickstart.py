#!/usr/bin/env python3
"""Quickstart: shape one program's memory traffic with MITTS.

Runs mcf unshaped, under a crude static rate limiter, and under a MITTS
shaper with the same average bandwidth but a distribution that admits
bursts -- the core idea of the paper in ~60 lines.

Usage::

    python examples/quickstart.py
"""

from repro import BinConfig, MittsShaper, SimSystem, StaticLimiter, trace_for
from repro.metrics import InterarrivalDistribution
from repro.sim import SCALED_SINGLE_CONFIG


CYCLES = 100_000


def run(label, limiter):
    system = SimSystem([trace_for("mcf")], config=SCALED_SINGLE_CONFIG,
                       limiters=[limiter] if limiter else None)
    stats = system.run(CYCLES)
    core = stats.cores[0]
    print(f"{label:28s} work={core.work_cycles:7d}  "
          f"dram requests={core.dram_requests:5d}  "
          f"shaper stalls={core.shaper_stall_cycles:7d}")
    return stats


def main():
    print(f"mcf for {CYCLES:,} cycles on the scaled single-program system\n")

    run("unshaped", None)

    # A static limiter: one request per 40 cycles, no burst tolerance.
    run("static limiter (1/40 cyc)", StaticLimiter(40))

    # MITTS at the same average bandwidth (I_avg = 40 cycles) but with
    # fast-bin credits that let mcf's bursts through.
    config = BinConfig.from_credits([14, 4, 2, 1, 1, 1, 1, 1, 1, 3])
    print(f"\nMITTS config: credits={config.as_list()}  "
          f"I_avg={config.average_interval():.1f} cycles  "
          f"T_r={config.replenish_period()} cycles")
    stats = run("MITTS (same avg bandwidth)", MittsShaper(config))

    dist = InterarrivalDistribution.from_core_stats(stats.cores[0])
    print(f"\nshaped memory-request inter-arrival: mean="
          f"{dist.mean():.1f} cycles, burstiness={dist.burstiness():.2f}")
    print("\nThe distribution-based shaper admits the bursts the static")
    print("limiter delays, at the same long-run bandwidth.")


if __name__ == "__main__":
    main()
