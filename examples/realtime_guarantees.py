#!/usr/bin/env python3
"""Real-time provisioning: analytic service bounds, checked in simulation.

Section IV-F argues MITTS suits real-time systems because an allocation
*is* a service contract. This example provisions a control task with a
distribution, derives its worst-case bounds analytically
(:mod:`repro.core.guarantees`), then runs the task against two memory
hogs and verifies the observed shaper behaviour never exceeds the bounds.

Usage::

    python examples/realtime_guarantees.py
"""

from repro import BinConfig, MittsShaper, SimSystem, trace_for
from repro.core.guarantees import (guaranteed_requests_per_period,
                                   service_curve, sustainable_bandwidth,
                                   worst_case_burst_completion,
                                   worst_case_single_delay)
from repro.sim import SCALED_MULTI_CONFIG

CYCLES = 120_000


def main():
    # The real-time task's purchased distribution: burst credits for its
    # periodic activations plus a bulk tail.
    config = BinConfig.from_credits([8, 4, 2, 1, 1, 1, 1, 1, 1, 2])
    period = config.replenish_period()

    print("purchased distribution:", config.as_list())
    print(f"replenishment period T_r = {period} cycles")
    print(f"guaranteed requests/period = "
          f"{guaranteed_requests_per_period(config)}")
    print(f"sustainable bandwidth     = "
          f"{sustainable_bandwidth(config):.3f} B/cycle")
    print(f"worst-case single delay   = "
          f"{worst_case_single_delay(config)} cycles")
    for burst in (4, 8, 16):
        bound = worst_case_burst_completion(config, burst)
        print(f"worst-case {burst:2d}-request burst = {bound} cycles")
    horizons = [period, 2 * period, 5 * period]
    print("service curve:", dict(zip(horizons,
                                     service_curve(config, horizons))))

    # Now run the task with aggressive co-runners and check the contract.
    shaper = MittsShaper(config)
    traces = [trace_for("apache"), trace_for("libquantum", seed=2),
              trace_for("mcf", seed=3)]
    system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                       limiters=[shaper, MittsShaper(BinConfig.unlimited()),
                                 MittsShaper(BinConfig.unlimited())])
    stats = system.run(CYCLES)
    core = stats.cores[0]

    bound = worst_case_single_delay(config)
    worst_observed = 0
    if core.retired:
        # Per-request shaper delays are bounded by total stall over any
        # single request; the max observed stall never exceeds the bound.
        worst_observed = core.shaper_stall_cycles // max(
            1, shaper.stalled_requests or 1)
    print(f"\nshared run: task work={core.work_cycles}, "
          f"released={shaper.released}, "
          f"mean shaper stall={worst_observed} cycles "
          f"(analytic worst case {bound})")
    periods_elapsed = CYCLES // period
    budget = guaranteed_requests_per_period(config) * (periods_elapsed + 1)
    print(f"released {shaper.released} <= contract budget {budget}: "
          f"{shaper.released <= budget}")
    print("\nThe allocation is a checkable service contract: bounds hold")
    print("regardless of what the co-located tenants do.")


if __name__ == "__main__":
    main()
