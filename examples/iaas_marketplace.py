#!/usr/bin/env python3
"""IaaS marketplace: customers buy memory-traffic distributions.

Three Cloud tenants with different traffic characters -- a memory-hungry
analytics job (mcf-like), a bursty web server (apache-like), and a
compute-bound service (sjeng-like) -- bid for bin credits priced per
Section IV-G1 (price proportional to bandwidth, fast bins penalised by
``2 - t_i/t_N``).  The market clears, each tenant's purchased distribution
is installed in its core's MITTS shaper, and the mix runs on one shared
memory system.

Usage::

    python examples/iaas_marketplace.py
"""

from repro import BinConfig, BinSpec, MittsShaper, SimSystem, trace_for
from repro.cloud import (Bid, CreditMarket, Customer, demand_to_bids,
                         perf_per_cost)
from repro.core.pricing import config_price_core_equivalents, price_vector
from repro.sim import SCALED_MULTI_CONFIG

CYCLES = 120_000


def main():
    spec = BinSpec()
    print("per-credit reserve prices (fast -> slow bins):")
    print("  " + "  ".join(f"{p:.2f}" for p in price_vector(spec)))

    # The provider offers a chip-wide credit supply (Section III-C's
    # provisioned case: less than the off-chip peak).
    market = CreditMarket(spec, supply=[24, 16, 16, 16, 16, 16, 16, 16,
                                        16, 32])

    customers = [
        Customer(name="analytics", benchmark="mcf", budget=220.0),
        Customer(name="webserver", benchmark="apache", budget=120.0),
        Customer(name="batch", benchmark="sjeng", budget=40.0),
    ]
    # Each customer asks for the distribution matching its profile:
    # analytics wants bulk + burst, the web server mostly burst, the
    # compute job a trickle.
    desires = {
        "analytics": BinConfig.from_credits([12, 8, 6, 4, 4, 2, 2, 2, 2, 8]),
        "webserver": BinConfig.from_credits([10, 4, 2, 1, 1, 1, 1, 1, 1, 4]),
        "batch": BinConfig.from_credits([1, 1, 0, 0, 1, 0, 0, 0, 0, 4]),
    }
    bids = []
    for customer in customers:
        # Willingness to pay: analytics values credits most.
        markup = {"analytics": 1.6, "webserver": 1.3, "batch": 1.05}
        bids.extend(demand_to_bids(customer, desires[customer.name],
                                   markup=markup[customer.name]))

    outcome = market.clear(customers, bids)
    print(f"\nmarket revenue: {outcome.revenue:.2f}  "
          f"unsold credits per bin: {outcome.unsold}")
    for customer in customers:
        config = outcome.allocations[customer.name]
        price = config_price_core_equivalents(config)
        print(f"  {customer.name:10s} bought {config.as_list()}  "
              f"spend={outcome.spend[customer.name]:.2f}  "
              f"(~{price:.2f} core-equivalents)")

    # Run the co-located tenants with their purchased distributions.
    traces = [trace_for(c.benchmark, seed=i + 1)
              for i, c in enumerate(customers)]
    shapers = [MittsShaper(outcome.allocations[c.name]) for c in customers]
    system = SimSystem(traces, config=SCALED_MULTI_CONFIG, limiters=shapers)
    stats = system.run(CYCLES)

    print(f"\nshared run ({CYCLES:,} cycles):")
    for customer, core in zip(customers, stats.cores):
        config = outcome.allocations[customer.name]
        ppc = perf_per_cost(core.work_cycles, config)
        print(f"  {customer.name:10s} work={core.work_cycles:7d}  "
              f"dram={core.dram_requests:5d}  perf/cost={ppc:9.1f}")
    print("\nTenants received exactly the quantity AND inter-arrival")
    print("distribution of bandwidth they paid for; the provider priced")
    print("bursty traffic above bulk traffic of the same average rate.")


if __name__ == "__main__":
    main()
