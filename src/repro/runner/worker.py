"""The function that runs inside pool workers.

``execute_job`` is the *only* code the runner ships across the process
boundary.  It never lets an exception escape: every outcome -- success,
timeout, simulation bug -- comes back as a plain, picklable
``(job_id, status, data)`` tuple so one bad job cannot poison the pool's
result channel.  (A worker dying outright -- ``os._exit``, OOM kill,
segfault -- is the one failure mode this cannot absorb; the engine
detects the broken pool and rebuilds it.)

Workers obey the determinism contract: the only wall-clock facility used
here is the timeout guard from :mod:`repro.runner.wallclock`.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Tuple

from ..resilience.checkpoint import checkpoint_scope, discard_checkpoint
from .jobspec import resolve_callable
from .wallclock import JobTimeoutError, deadline

#: result statuses a worker can report
STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


def job_payload(spec, timeout, checkpoint=None) -> Dict[str, Any]:
    """The plain-data form of a spec that crosses into the worker.

    ``checkpoint`` is an optional path the job may save/resume partial
    work through (see :mod:`repro.resilience.checkpoint`); retries of
    the same job receive the same path, which is what makes a resumed
    attempt continue instead of restart.
    """
    return {"job_id": spec.job_id, "fn": spec.fn, "args": spec.args,
            "kwargs": spec.kwargs, "timeout": timeout,
            "checkpoint": checkpoint}


def describe_exception(exc: BaseException) -> Dict[str, Any]:
    """A picklable description of a failure (the exception itself may
    hold unpicklable simulator state, so only strings travel back).

    ``lineage`` carries the exception's class names along its MRO so the
    engine can classify a failure as deterministic (never retry) without
    unpickling the exception -- subclasses are matched by ancestry, not
    by exact name.
    """
    return {
        "error_type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__)),
        "lineage": [cls.__name__ for cls in type(exc).__mro__],
    }


def execute_job(payload: Dict[str, Any]) -> Tuple[str, str, Any]:
    """Run one job; always returns, never raises (see module docstring)."""
    job_id = payload["job_id"]
    checkpoint = payload.get("checkpoint")
    try:
        fn = resolve_callable(payload["fn"])
        with deadline(payload.get("timeout"), what=f"job {job_id!r}"):
            with checkpoint_scope(checkpoint):
                value = fn(*payload["args"], **dict(payload["kwargs"]))
        discard_checkpoint(checkpoint)
        return (job_id, STATUS_OK, value)
    except JobTimeoutError as exc:
        return (job_id, STATUS_TIMEOUT, describe_exception(exc))
    except Exception as exc:
        return (job_id, STATUS_ERROR, describe_exception(exc))
