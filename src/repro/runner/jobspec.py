"""Picklable, content-hashed job specifications.

A :class:`JobSpec` describes one unit of work -- "call this importable
function with these arguments" -- in a form that can cross a process
boundary (everything is plain data; the callable travels as its
``module:qualname`` path) and that can be *content-hashed* so the result
cache recognises identical work across runs.

The hash must be stable across processes and interpreter sessions, so it
is computed over a canonical recursive encoding rather than pickle bytes
(pickles of equal objects are not guaranteed byte-equal, and hash
randomisation makes set iteration order a trap).  Sets are rejected
outright: a spec containing one has no canonical order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple


class SpecError(ValueError):
    """A job spec is malformed (unresolvable callable, unhashable args)."""


# ----------------------------------------------------------------------
# callable <-> "module:qualname" paths


def callable_path(fn: Callable) -> str:
    """The importable ``module:qualname`` path of a top-level callable.

    Only module-level functions and classes round-trip through a process
    boundary by name; closures, lambdas, and bound methods are rejected
    early with a clear error instead of failing inside a worker.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise SpecError(f"{fn!r} has no importable module/qualname")
    if "<" in qualname or "." in qualname:
        raise SpecError(
            f"{fn!r} is not a top-level callable; workers can only "
            f"import module-level functions (got qualname {qualname!r})")
    path = f"{module}:{qualname}"
    if resolve_callable(path) is not fn:
        raise SpecError(f"{path} does not resolve back to {fn!r}")
    return path


def resolve_callable(path: str) -> Callable:
    """Import the callable named by a ``module:qualname`` path."""
    module_name, _, qualname = path.partition(":")
    if not module_name or not qualname:
        raise SpecError(f"malformed callable path {path!r} "
                        f"(expected 'module:qualname')")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, qualname)
    except AttributeError:
        raise SpecError(f"{module_name} has no attribute {qualname!r}"
                        ) from None
    if not callable(fn):
        raise SpecError(f"{path} resolves to non-callable {fn!r}")
    return fn


# ----------------------------------------------------------------------
# canonical content hashing


def _canonical(value: Any) -> Any:
    """A deterministic, order-pinned encoding of ``value`` for hashing."""
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return ("prim", type(value).__name__, repr(value))
    if isinstance(value, float):
        # repr() of a float is shortest-round-trip: stable across runs.
        return ("prim", "float", repr(value))
    if isinstance(value, (set, frozenset)):
        raise SpecError("sets have no canonical order and cannot appear "
                        "in a JobSpec; use a sorted tuple")
    if isinstance(value, dict):
        items = [(_canonical(k), _canonical(v)) for k, v in value.items()]
        return ("map", tuple(sorted(items)))
    if isinstance(value, tuple) and hasattr(value, "_fields"):
        return ("ntup", type(value).__name__,
                tuple(_canonical(v) for v in value))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in value))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: getattr(value, f.name)
                  for f in dataclasses.fields(value)}
        return ("obj", type(value).__qualname__, _canonical(fields))
    if isinstance(value, type) or callable(value):
        module = getattr(value, "__module__", "?")
        qualname = getattr(value, "__qualname__", repr(value))
        return ("ref", f"{module}:{qualname}")
    state = getattr(value, "__dict__", None)
    if state is not None:
        return ("obj", type(value).__qualname__, _canonical(state))
    raise SpecError(f"cannot canonically hash {type(value).__name__!r} "
                    f"value {value!r}")


def content_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``value``."""
    encoded = repr(_canonical(value)).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


# ----------------------------------------------------------------------
# the spec itself


@dataclass(frozen=True)
class JobSpec:
    """One independent unit of work for the runner.

    ``seed`` and ``scale`` are first-class fields (not buried in kwargs)
    because they are the two knobs every sweep varies and the cache key
    must distinguish; they are informational here -- the callable still
    receives them through ``args``/``kwargs`` like any other argument.
    """

    job_id: str
    fn: str
    args: Tuple = ()
    kwargs: Tuple = ()
    seed: Optional[int] = None
    scale: Optional[str] = None
    #: per-job overrides of the runner's timeout/retry policy
    timeout: Optional[float] = None
    retries: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise SpecError("job_id must be non-empty")
        if ":" not in self.fn:
            raise SpecError(f"fn must be a 'module:qualname' path, "
                            f"got {self.fn!r}")

    @classmethod
    def create(cls, job_id: str, fn, *args, seed: Optional[int] = None,
               scale: Optional[str] = None, timeout: Optional[float] = None,
               retries: Optional[int] = None, **kwargs) -> "JobSpec":
        """Build a spec from a callable (or path) and its call arguments."""
        path = fn if isinstance(fn, str) else callable_path(fn)
        return cls(job_id=job_id, fn=path, args=tuple(args),
                   kwargs=tuple(sorted(kwargs.items())),
                   seed=seed, scale=scale, timeout=timeout, retries=retries)

    def spec_hash(self) -> str:
        """Content hash of the *work* (callable + arguments).

        Deliberately excludes ``job_id`` (a display name), ``timeout`` and
        ``retries`` (execution policy): none of them change the result.
        """
        return content_hash({"fn": self.fn, "args": self.args,
                             "kwargs": self.kwargs, "seed": self.seed,
                             "scale": self.scale})

    def resolve(self) -> Callable:
        return resolve_callable(self.fn)

    def call_kwargs(self) -> dict:
        return dict(self.kwargs)
