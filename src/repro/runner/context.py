"""An ambient runner, so inner layers can share one process pool.

The experiment CLI owns the :class:`~repro.runner.engine.Runner`;
``experiments/common.py`` helpers (``measure_alone``, the GA's batch
evaluator) discover it here instead of threading a ``runner=`` argument
through every ``run(scale=..., seed=...)`` signature in the registry.

No runner installed (the default, and always the case inside pool
workers) means "run serially" -- callers must treat ``get_runner() is
None`` as the serial path, which is also what keeps worker processes
from trying to fan out recursively.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .engine import Runner

_current: Optional[Runner] = None


def get_runner() -> Optional[Runner]:
    """The ambient runner, or None when execution should stay serial."""
    return _current


def set_runner(runner: Optional[Runner]) -> Optional[Runner]:
    """Install ``runner`` as ambient; returns the previous one."""
    global _current
    previous = _current
    _current = runner
    return previous


@contextmanager
def using_runner(runner: Optional[Runner]) -> Iterator[Optional[Runner]]:
    """Scope ``runner`` as the ambient runner for a ``with`` block."""
    previous = set_runner(runner)
    try:
        yield runner
    finally:
        set_runner(previous)
