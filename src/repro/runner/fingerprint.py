"""Code fingerprinting for the result cache.

A cached result is only valid for the code that produced it.  The
fingerprint is a SHA-256 over the (path, content-hash) pairs of every
``*.py`` file in the installed ``repro`` package, so *any* source change
-- simulator, scheduler, experiment driver -- invalidates every cached
entry.  That is deliberately coarse: correctness beats cache longevity,
and a full re-run repopulates the cache anyway.
"""

from __future__ import annotations

import functools
import hashlib
from pathlib import Path


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def fingerprint_tree(root: Path) -> str:
    """SHA-256 over every ``*.py`` under ``root``, in sorted path order."""
    digest = hashlib.sha256()
    root = Path(root)
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        digest.update(relative.encode("utf-8"))
        digest.update(b"\0")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    return digest.hexdigest()


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Fingerprint of the currently importable ``repro`` source tree.

    Cached per process: the source tree is assumed immutable for the
    lifetime of a sweep (editing code mid-sweep voids the contract).
    """
    return fingerprint_tree(_package_root())
