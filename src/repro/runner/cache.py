"""Content-addressed on-disk result cache.

An entry's key is the SHA-256 of ``(spec hash, seed, scale, code
fingerprint)``: identical work under identical code hits; changing any of
the four misses.  Values are pickled with an integrity digest so a
truncated or bit-rotted entry (killed run, full disk) is *discarded and
recomputed*, never trusted and never fatal.

Writes are atomic (temp file + ``os.replace``) so concurrent sweeps
sharing a cache directory can only ever observe complete entries.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from .fingerprint import code_fingerprint
from .jobspec import JobSpec

_MAGIC = b"repro-cache-v1\n"


@dataclass(frozen=True)
class CacheHit:
    """Wrapper distinguishing "hit whose value is None" from a miss."""

    value: Any


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt}


@dataclass
class ResultCache:
    """Pickle-backed cache rooted at ``root``; see the module docstring."""

    root: Union[str, Path]
    #: override for tests; defaults to the live tree's fingerprint
    fingerprint: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.fingerprint is None:
            self.fingerprint = code_fingerprint()

    # ------------------------------------------------------------------

    def key_for(self, spec: JobSpec) -> str:
        material = "\n".join([spec.spec_hash(), repr(spec.seed),
                              repr(spec.scale), self.fingerprint])
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def entry_path(self, spec: JobSpec) -> Path:
        """On-disk location of ``spec``'s entry (fault injection / tooling);
        the file need not exist."""
        return self._path_for(self.key_for(spec))

    # ------------------------------------------------------------------

    def load(self, spec: JobSpec) -> Optional[CacheHit]:
        """The cached value for ``spec``, or None on miss/corruption."""
        key = self.key_for(spec)
        path = self._path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            payload = self._decode(raw, key)
        except Exception:
            # Anything a damaged pickle can throw lands here; the entry
            # is evidence-free garbage, so drop it and recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._discard(path)
            return None
        self.stats.hits += 1
        return CacheHit(payload["value"])

    def store(self, spec: JobSpec, value: Any) -> Optional[Path]:
        """Atomically persist ``value`` for ``spec``.

        Unpicklable values are skipped (the sweep still succeeds; it just
        will not resume for free) rather than failing the job.
        """
        key = self.key_for(spec)
        path = self._path_for(key)
        try:
            body = pickle.dumps({"key": key, "job_id": spec.job_id,
                                 "value": value},
                                protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.stats.corrupt += 1
            return None
        digest = hashlib.sha256(body).hexdigest().encode("ascii")
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(_MAGIC + digest + b"\n" + body)
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------

    @staticmethod
    def _decode(raw: bytes, key: str) -> dict:
        if not raw.startswith(_MAGIC):
            raise ValueError("bad cache magic")
        rest = raw[len(_MAGIC):]
        digest, separator, body = rest.partition(b"\n")
        if not separator:
            raise ValueError("truncated cache entry")
        if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
            raise ValueError("cache entry checksum mismatch")
        payload = pickle.loads(body)
        if payload.get("key") != key:
            raise ValueError("cache entry key mismatch")
        return payload

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            # Already gone or unwritable; the miss was recorded either way.
            return
