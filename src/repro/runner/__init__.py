"""``repro.runner`` -- parallel, cached, fault-tolerant execution engine.

The reproduction's credibility problem is evaluation count: the paper's
GA budget is ~600 simulations per optimisation and the experiment suite
multiplies that across figures, seeds, and scales.  This package makes
many independent simulations cheap without touching the determinism
contract:

* :class:`JobSpec` -- picklable, content-hashed description of one unit
  of work ("call this importable function with these arguments").
* :class:`Runner` -- executes specs over a ``ProcessPoolExecutor`` with
  per-job timeouts, bounded retry with exponential backoff, and
  worker-crash recovery; results are keyed by job id in submission
  order, never completion order, so ``jobs=N`` assembles bit-identically
  to serial.
* :class:`ResultCache` -- content-addressed on-disk cache keyed by
  (spec hash, seed, scale, code fingerprint); re-runs and ``--resume``
  skip completed work, corrupted entries are discarded and recomputed.
* :func:`get_runner` / :func:`using_runner` -- the ambient-runner
  context that lets ``experiments/common.py`` and the GA's batch
  evaluator share the CLI's pool.

Wall-clock time (timeouts, backoff, ETA) is confined to
:mod:`repro.runner.wallclock`; nothing wall-clock-derived may flow into
a result.
"""

from .cache import CacheHit, CacheStats, ResultCache
from .context import get_runner, set_runner, using_runner
from .engine import (DETERMINISTIC_LINEAGE, JobFailure, JobOutcome, Runner,
                     RunnerConfig, RunnerError, SweepResult,
                     is_deterministic_failure)
from .fingerprint import code_fingerprint, fingerprint_tree
from .jobspec import (JobSpec, SpecError, callable_path, content_hash,
                      resolve_callable)
from .wallclock import JobTimeoutError

__all__ = [
    "CacheHit",
    "CacheStats",
    "DETERMINISTIC_LINEAGE",
    "JobFailure",
    "JobOutcome",
    "JobSpec",
    "JobTimeoutError",
    "ResultCache",
    "Runner",
    "RunnerConfig",
    "RunnerError",
    "SpecError",
    "SweepResult",
    "callable_path",
    "code_fingerprint",
    "content_hash",
    "fingerprint_tree",
    "get_runner",
    "is_deterministic_failure",
    "resolve_callable",
    "set_runner",
    "using_runner",
]
