"""The parallel, cached, fault-tolerant execution engine.

``Runner.run`` takes a list of :class:`~repro.runner.jobspec.JobSpec` and
returns a :class:`SweepResult` whose outcomes are keyed by ``job_id`` in
*submission order* -- never completion order -- so ``jobs=N`` produces
bit-identical assemblies to the serial path (the jobs themselves are
deterministic functions of their spec; the engine only has to avoid
introducing order dependence on top).

Fault model:

* **slow job** -- a per-job wall-clock budget is enforced *inside* the
  worker (``SIGALRM``); the job comes back as a structured timeout and is
  retried with exponential backoff up to the retry limit.
* **failing job** -- exceptions are captured in the worker and returned
  as data; retried the same way, then reported as a :class:`JobFailure`
  without aborting the rest of the sweep.
* **dying worker** -- ``os._exit``/OOM/segfault breaks the whole
  ``ProcessPoolExecutor``; the engine charges one attempt to every job
  that was in flight (submission is windowed, so that set is at most
  ``jobs`` wide -- queued jobs are never charged), rebuilds the pool, and
  carries on.

The cache (when configured) is consulted before any process is spawned
and populated after every success, which is what makes ``--resume``
free and killed sweeps recoverable.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict, deque
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..resilience.checkpoint import checkpoint_scope, discard_checkpoint
from ..resilience.watchdog import StarvationError
from . import wallclock
from .cache import ResultCache
from .jobspec import JobSpec, SpecError, callable_path
from .progress import ProgressReporter
from .worker import (STATUS_OK, STATUS_TIMEOUT, describe_exception,
                     execute_job, job_payload)

#: how long one futures.wait() tick blocks before re-checking retry timers
_WAIT_TICK_SECONDS = 0.1

#: exception ancestries that make a failure *deterministic*: the same
#: spec will fail the same way every time (a starved configuration, a
#: validation error, a broken invariant), so retrying burns wall-clock
#: for nothing.  Timeouts and worker crashes stay retryable -- those
#: depend on machine state, not on the spec.  Matched against
#: ``describe_exception``'s ``lineage`` (MRO class names), so
#: subclasses like ``SpecError`` (ValueError) and ``ContractViolation``
#: (AssertionError) are covered by ancestry.
DETERMINISTIC_LINEAGE = frozenset(
    {"StarvationError", "ValueError", "AssertionError"})

#: the same policy for in-process (inline) execution, as types
_DETERMINISTIC_TYPES = (StarvationError, ValueError, AssertionError)


def is_deterministic_failure(kind: str,
                             info: Optional[dict] = None) -> bool:
    """Will this exact failure recur on every retry of the spec?

    The single source of truth for the deterministic-error taxonomy;
    the fabric's poison-job quarantine reuses it so "never retry" means
    the same thing inside one runner and across worker pools.  ``info``
    is a :func:`~repro.runner.worker.describe_exception` document; its
    ``lineage`` (MRO class names) is matched so subclasses like
    ``SpecError`` (ValueError) and ``ContractViolation``
    (AssertionError) are covered by ancestry.
    """
    if kind != "error":
        return False  # timeouts and crashes are machine-state luck
    info = info or {}
    lineage = info.get("lineage")
    if lineage is None:
        # Pre-lineage producer (stale worker): fall back on the leaf
        # class name alone.
        lineage = [info.get("error_type", "")]
    return not DETERMINISTIC_LINEAGE.isdisjoint(lineage)


class RunnerError(RuntimeError):
    """A sweep-level failure the caller chose not to tolerate."""


@dataclass(frozen=True)
class JobFailure:
    """Structured description of a job that exhausted its retries."""

    job_id: str
    kind: str  # "timeout" | "error" | "crash"
    error_type: str
    message: str
    traceback: str
    attempts: int
    #: True when the taxonomy says every retry of the spec would fail
    #: identically (the fabric quarantines such jobs on first failure)
    deterministic: bool = False

    def summary(self) -> str:
        return (f"{self.job_id}: {self.kind} after {self.attempts} "
                f"attempt(s): {self.error_type}: {self.message}")


@dataclass
class JobOutcome:
    """Terminal state of one job within a sweep."""

    job_id: str
    value: Any = None
    failure: Optional[JobFailure] = None
    attempts: int = 0
    cached: bool = False
    #: wall-clock seconds of the successful attempt (0.0 for cache hits);
    #: presentation only -- never part of a result
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class SweepResult:
    """Outcomes keyed by job id, in submission order."""

    outcomes: "OrderedDict[str, JobOutcome]"

    def __getitem__(self, job_id: str) -> JobOutcome:
        return self.outcomes[job_id]

    def __iter__(self):
        return iter(self.outcomes.values())

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[JobFailure]:
        return [outcome.failure for outcome in self.outcomes.values()
                if outcome.failure is not None]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes.values() if outcome.cached)

    def values(self) -> List[Any]:
        """Successful values in submission order; raises on any failure."""
        failures = self.failures
        if failures:
            details = "; ".join(f.summary() for f in failures[:3])
            raise RunnerError(
                f"{len(failures)} job(s) failed: {details}")
        return [outcome.value for outcome in self.outcomes.values()]


@dataclass
class RunnerConfig:
    """Execution policy shared by every job in a sweep."""

    jobs: int = 1
    #: per-job wall-clock budget in seconds (None = unlimited)
    timeout: Optional[float] = None
    #: extra attempts after the first failure
    retries: int = 2
    #: base of the exponential retry backoff, in seconds
    backoff: float = 0.25
    progress: bool = False
    #: directory for per-job checkpoints (None = checkpointing off);
    #: jobs that run via repro.resilience.checkpoint.run_with_checkpoints
    #: save partial work here and *resume* it when retried after a
    #: worker death or timeout
    checkpoint_dir: Optional[str] = None
    #: called with the sorted in-flight job ids on every pool wait tick
    #: (and once per inline attempt); the fabric queue uses this to renew
    #: job leases while long simulations run, so a *live* worker never
    #: has its work stolen.  Must be cheap and must never raise.
    heartbeat: Optional[Callable[[List[str]], None]] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")


@dataclass
class _Pending:
    """Book-keeping for one not-yet-terminal job."""

    spec: JobSpec
    index: int
    attempts: int = 0
    ready_at: float = 0.0


class Runner:
    """Executes job specs serially or over a process pool.  Reusable
    across sweeps; ``close()`` (or ``with``-block exit) tears the pool
    down."""

    def __init__(self, config: Optional[RunnerConfig] = None,
                 cache: Optional[ResultCache] = None) -> None:
        self.config = config or RunnerConfig()
        self.cache = cache
        self._executor: Optional[futures.ProcessPoolExecutor] = None

    # ------------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.config.jobs > 1

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # public entry points

    def run(self, specs: Sequence[JobSpec], inline: Optional[bool] = None,
            use_cache: bool = True, label: str = "sweep") -> SweepResult:
        """Execute ``specs``; see the module docstring for semantics.

        ``inline`` is a tri-state: ``None`` (default) picks the pool when
        ``jobs > 1`` and runs in-process otherwise; ``True`` forces
        in-process execution (still cached, still retried, failures still
        structured) -- used when the caller wants the pool available for
        the jobs' own inner fan-outs; ``False`` forces the pool even with
        ``jobs == 1`` -- used by the fabric worker so a single-slot pool
        still gets SIGALRM timeouts and survives ``kill -9`` of a job.
        Inline jobs do not enforce timeouts: interrupting the driver's
        main thread could tear simulator state mid-update.
        """
        specs = list(specs)
        seen = set()
        for spec in specs:
            if spec.job_id in seen:
                raise SpecError(f"duplicate job_id {spec.job_id!r}")
            seen.add(spec.job_id)

        outcomes: "OrderedDict[str, JobOutcome]" = OrderedDict(
            (spec.job_id, JobOutcome(job_id=spec.job_id)) for spec in specs)
        reporter = ProgressReporter(total=len(specs), label=label,
                                    enabled=self.config.progress,
                                    jobs=self.config.jobs)

        pending: List[_Pending] = []
        for index, spec in enumerate(specs):
            hit = self.cache.load(spec) if (self.cache is not None
                                            and use_cache) else None
            if hit is not None:
                outcome = outcomes[spec.job_id]
                outcome.value = hit.value
                outcome.cached = True
                reporter.job_done(cached=True)
            else:
                pending.append(_Pending(spec=spec, index=index))

        if pending:
            use_inline = inline if inline is not None else not self.parallel
            if use_inline:
                self._run_inline(pending, outcomes, reporter, use_cache)
            else:
                self._run_pool(pending, outcomes, reporter, use_cache)
        return SweepResult(outcomes=outcomes)

    def map(self, fn, argument_tuples: Iterable[tuple],
            label: str = "map", use_cache: bool = False) -> List[Any]:
        """Apply one callable to many argument tuples; values in input
        order.  Any job failing after retries raises :class:`RunnerError`
        (a partial map is useless to numeric callers)."""
        path = fn if isinstance(fn, str) else callable_path(fn)
        specs = [JobSpec.create(f"{label}[{index}]", path, *arguments)
                 for index, arguments in enumerate(argument_tuples)]
        return self.run(specs, use_cache=use_cache, label=label).values()

    # ------------------------------------------------------------------
    # serial/inline execution

    def _run_inline(self, pending: List[_Pending],
                    outcomes: Dict[str, JobOutcome],
                    reporter: ProgressReporter, use_cache: bool) -> None:
        for item in pending:
            spec = item.spec
            retries = self._retries_for(spec)
            checkpoint = self._checkpoint_path_for(spec)
            while True:
                item.attempts += 1
                self._beat([spec.job_id])
                started = wallclock.now()
                try:
                    fn = spec.resolve()
                    with checkpoint_scope(checkpoint):
                        value = fn(*spec.args, **spec.call_kwargs())
                except Exception as exc:
                    if (item.attempts <= retries
                            and not isinstance(exc, _DETERMINISTIC_TYPES)):
                        wallclock.sleep(self._backoff_delay(item.attempts))
                        continue
                    self._record_failure(
                        outcomes[spec.job_id], "error",
                        describe_exception(exc), item.attempts, reporter)
                    break
                discard_checkpoint(checkpoint)
                self._record_success(outcomes[spec.job_id], value,
                                     item.attempts,
                                     wallclock.now() - started,
                                     spec, use_cache, reporter)
                break

    # ------------------------------------------------------------------
    # pool execution

    def _ensure_executor(self) -> futures.ProcessPoolExecutor:
        if self._executor is None:
            self._executor = futures.ProcessPoolExecutor(
                max_workers=self.config.jobs)
        return self._executor

    def _rebuild_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _run_pool(self, pending: List[_Pending],
                  outcomes: Dict[str, JobOutcome],
                  reporter: ProgressReporter, use_cache: bool) -> None:
        # Windowed submission: at most `jobs` futures in flight.  Keeps
        # the in-flight set equal to the (approximately) *running* set so
        # a pool crash charges attempts only where the evidence is.
        queue: "deque[_Pending]" = deque(pending)
        waiting: List[_Pending] = []  # backoff timers pending
        in_flight: Dict[futures.Future, _Pending] = {}
        started_at: Dict[futures.Future, float] = {}

        while queue or waiting or in_flight:
            now = wallclock.now()
            if waiting:
                due = [item for item in waiting if item.ready_at <= now]
                if due:
                    waiting = [item for item in waiting
                               if item.ready_at > now]
                    queue.extend(due)

            executor = self._ensure_executor()
            while queue and len(in_flight) < self.config.jobs:
                item = queue.popleft()
                item.attempts += 1
                payload = job_payload(item.spec,
                                      self._timeout_for(item.spec),
                                      self._checkpoint_path_for(item.spec))
                future = executor.submit(execute_job, payload)
                in_flight[future] = item
                started_at[future] = wallclock.now()

            if not in_flight:
                # Everything left is sitting out a backoff window.
                next_ready = min(item.ready_at for item in waiting)
                wallclock.sleep(max(0.0, next_ready - wallclock.now()))
                continue

            self._beat(sorted(item.spec.job_id
                              for item in in_flight.values()))
            done, _ = futures.wait(set(in_flight),
                                   timeout=_WAIT_TICK_SECONDS,
                                   return_when=futures.FIRST_COMPLETED)
            pool_broken = False
            for future in done:
                item = in_flight.pop(future)
                duration = wallclock.now() - started_at.pop(future)
                pool_broken |= self._consume_future(
                    future, item, duration, outcomes, waiting, reporter,
                    use_cache)
            if pool_broken:
                # Every other in-flight future is dead too; drain them
                # all (the ones that finished before the break still
                # carry real results) and rebuild the pool.
                for future, item in list(in_flight.items()):
                    del in_flight[future]
                    duration = wallclock.now() - started_at.pop(future)
                    self._consume_future(future, item, duration, outcomes,
                                         waiting, reporter, use_cache)
                self._rebuild_executor()

    def _consume_future(self, future: futures.Future, item: _Pending,
                        duration: float, outcomes: Dict[str, JobOutcome],
                        waiting: List[_Pending],
                        reporter: ProgressReporter,
                        use_cache: bool) -> bool:
        """Fold one finished future into the sweep state.

        Returns True when the future revealed a broken pool (the caller
        must drain the rest of the in-flight set and rebuild).
        """
        try:
            job_id, status, data = future.result(timeout=0)
        except (BrokenProcessPool, futures.CancelledError):
            self._handle_retryable(
                item, "crash",
                {"error_type": "WorkerCrash",
                 "message": "worker process died while the job was "
                            "in flight",
                 "traceback": ""},
                outcomes, waiting, reporter)
            return True
        except futures.TimeoutError:
            # Not actually done (drain path): the pool is broken but this
            # future never resolved; treat it like a crash casualty.
            self._handle_retryable(
                item, "crash",
                {"error_type": "WorkerCrash",
                 "message": "pool broke before the job completed",
                 "traceback": ""},
                outcomes, waiting, reporter)
            return True
        except Exception as exc:
            # e.g. the job's return value failed to unpickle
            self._handle_retryable(item, "error", describe_exception(exc),
                                   outcomes, waiting, reporter)
            return False
        if status == STATUS_OK:
            self._record_success(outcomes[job_id], data, item.attempts,
                                 duration, item.spec, use_cache, reporter)
        else:
            kind = "timeout" if status == STATUS_TIMEOUT else "error"
            self._handle_retryable(item, kind, data, outcomes, waiting,
                                   reporter)
        return False

    # ------------------------------------------------------------------
    # shared bookkeeping

    def _beat(self, job_ids: List[str]) -> None:
        """Forward in-flight job ids to the configured heartbeat.

        A raising heartbeat would abort the whole sweep from a
        coordination side-channel, so failures are contained here; the
        lease simply is not renewed and the queue's normal expiry path
        takes over.
        """
        if self.config.heartbeat is None:
            return
        try:
            self.config.heartbeat(job_ids)
        except Exception:
            # Lease renewal is best-effort by design (see docstring).
            return

    def _timeout_for(self, spec: JobSpec) -> Optional[float]:
        return spec.timeout if spec.timeout is not None \
            else self.config.timeout

    def _retries_for(self, spec: JobSpec) -> int:
        return spec.retries if spec.retries is not None \
            else self.config.retries

    def _backoff_delay(self, attempts: int) -> float:
        return self.config.backoff * (2 ** (attempts - 1))

    def _checkpoint_path_for(self, spec: JobSpec) -> Optional[str]:
        """Stable per-job checkpoint path under ``config.checkpoint_dir``.

        Keyed on (job id, spec hash) so retries of the same job resume
        the same file while two jobs with identical specs never race on
        one path.
        """
        if self.config.checkpoint_dir is None:
            return None
        key = hashlib.sha256(
            f"{spec.job_id}\n{spec.spec_hash()}".encode("utf-8")).hexdigest()
        return os.path.join(self.config.checkpoint_dir, f"{key}.ckpt")

    @staticmethod
    def _deterministic_failure(kind: str, info: dict) -> bool:
        """Will this exact failure recur on every retry of the spec?"""
        return is_deterministic_failure(kind, info)

    def _handle_retryable(self, item: _Pending, kind: str, info: dict,
                          outcomes: Dict[str, JobOutcome],
                          waiting: List[_Pending],
                          reporter: ProgressReporter) -> None:
        if (item.attempts <= self._retries_for(item.spec)
                and not self._deterministic_failure(kind, info)):
            item.ready_at = wallclock.now() \
                + self._backoff_delay(item.attempts)
            waiting.append(item)
            return
        self._record_failure(outcomes[item.spec.job_id], kind, info,
                             item.attempts, reporter)

    def _record_success(self, outcome: JobOutcome, value: Any,
                        attempts: int, duration: float, spec: JobSpec,
                        use_cache: bool,
                        reporter: ProgressReporter) -> None:
        outcome.value = value
        outcome.attempts = attempts
        outcome.duration = duration
        if self.cache is not None and use_cache:
            self.cache.store(spec, value)
        reporter.job_done(duration=duration)

    @staticmethod
    def _record_failure(outcome: JobOutcome, kind: str, info: dict,
                        attempts: int, reporter: ProgressReporter) -> None:
        outcome.failure = JobFailure(
            job_id=outcome.job_id, kind=kind,
            error_type=info.get("error_type", "Error"),
            message=info.get("message", ""),
            traceback=info.get("traceback", ""),
            attempts=attempts,
            deterministic=is_deterministic_failure(kind, info))
        outcome.attempts = attempts
        reporter.job_done(failed=True)
