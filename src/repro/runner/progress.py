"""Progress and ETA reporting for sweeps.

Reports to ``stderr`` so stdout stays clean for experiment tables and
JSON.  The ETA is a deliberately simple estimate -- mean wall-clock per
*computed* job, scaled by remaining jobs over worker count -- which is
accurate for the homogeneous fan-outs the runner executes (same
experiment at the same scale, or one GA generation's genomes).

Wall-clock access goes through :mod:`repro.runner.wallclock` only; ETA
numbers are presentation, never results.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional

from . import wallclock


@dataclass
class ProgressReporter:
    """Line-per-update progress for one sweep."""

    total: int
    label: str = "sweep"
    enabled: bool = True
    jobs: int = 1
    #: minimum seconds between printed lines (final line always prints)
    min_interval: float = 0.5
    stream: Optional[object] = None

    done: int = field(default=0, init=False)
    cached: int = field(default=0, init=False)
    failed: int = field(default=0, init=False)
    _computed_seconds: float = field(default=0.0, init=False)
    _computed_jobs: int = field(default=0, init=False)
    _started: float = field(default=0.0, init=False)
    _last_print: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self._started = wallclock.now()

    # ------------------------------------------------------------------

    def job_done(self, cached: bool = False, failed: bool = False,
                 duration: float = 0.0) -> None:
        """Record one finished job and maybe print a progress line."""
        self.done += 1
        if cached:
            self.cached += 1
        elif failed:
            self.failed += 1
        if not cached:
            self._computed_seconds += max(duration, 0.0)
            self._computed_jobs += 1
        self._maybe_print(final=self.done >= self.total)

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion, or None when unknowable.

        Guarded against every degenerate shape a sweep can take: an
        empty or finished sweep is 0.0; no *computed* jobs yet (all
        cache hits so far, or nothing finished) is None, not a division
        by zero; an observed rate of zero seconds/job (timer resolution,
        all-instant jobs) is also None -- extrapolating a zero rate
        would promise eta 0 for work that has not run.
        """
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if self._computed_jobs <= 0:
            return None
        mean = self._computed_seconds / self._computed_jobs
        if mean <= 0.0:
            return None
        return mean * remaining / max(1, self.jobs)

    # ------------------------------------------------------------------

    def _maybe_print(self, final: bool) -> None:
        if not self.enabled:
            return
        now = wallclock.now()
        if not final and now - self._last_print < self.min_interval:
            return
        self._last_print = now
        eta = self.eta_seconds()
        eta_text = "" if eta is None else f", eta {_format_seconds(eta)}"
        extras = []
        if self.cached:
            extras.append(f"{self.cached} cached")
        if self.failed:
            extras.append(f"{self.failed} failed")
        extra_text = f" ({', '.join(extras)})" if extras else ""
        stream = self.stream if self.stream is not None else sys.stderr
        print(f"[{self.label}] {self.done}/{self.total} done"
              f"{extra_text}{eta_text}", file=stream, flush=True)


def _format_seconds(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
