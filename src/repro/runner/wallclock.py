"""The runner's single sanctioned wall-clock access point.

The determinism contract (README, simlint SIM002) bans wall-clock reads
from anything that computes simulation results: a simulated system's
behaviour depends only on cycle time.  The execution engine, however,
legitimately needs real time for three *non-result* purposes -- job
timeouts, retry backoff, and progress/ETA reporting.  All three go
through this module so the exemption is one grep-able, pragma'd place
instead of being scattered through the runner.

Nothing returned from these helpers may ever flow into a simulation or a
cached result value.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


class JobTimeoutError(Exception):
    """A job exceeded its wall-clock budget (raised inside the worker)."""


def now() -> float:
    """Monotonic wall-clock seconds, for ETA estimates and backoff only."""
    return time.monotonic()  # simlint: disable=SIM002


def epoch() -> float:
    """Epoch wall-clock seconds, for lease deadlines that must compare
    across *processes* (the fabric queue's claim files).  ``now()`` is
    monotonic per boot, not per process group; epoch time is the only
    clock two independently started workers can agree on.  Never flows
    into a result."""
    return time.time()  # simlint: disable=SIM002


def sleep(seconds: float) -> None:
    """Sleep the *driver* process (retry backoff); never simulation code."""
    if seconds > 0:
        time.sleep(seconds)


def _timeout_usable() -> bool:
    """SIGALRM timeouts need a main thread on a POSIX platform."""
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


@contextmanager
def deadline(seconds: Optional[float],
             what: str = "job") -> Iterator[None]:
    """Raise :class:`JobTimeoutError` if the block runs longer than
    ``seconds`` of wall time.

    Implemented with ``SIGALRM``/``setitimer`` so a hung simulation is
    interrupted *inside* the worker and the process pool stays healthy
    (future-side timeouts cannot cancel running work).  A ``None`` budget,
    a non-main thread, or a platform without ``SIGALRM`` degrade to a
    no-op rather than failing.
    """
    if seconds is None or seconds <= 0 or not _timeout_usable():
        yield
        return

    def _expired(signum, frame):
        raise JobTimeoutError(
            f"{what} exceeded its {seconds:g}s wall-clock budget")

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
