"""Finding and severity types shared by the linter, rules and CLI."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Dict


class Severity(str, Enum):
    """How bad a finding is.  ``ERROR`` breaks the determinism contract;
    ``WARNING`` is a hygiene hazard that tends to become an error later."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    fix_hint: str = ""
    snippet: str = ""
    #: last physical line of the flagged statement (0 = same as ``line``);
    #: lets a trailing ``# simlint: disable`` pragma cover multi-line calls
    end_line: int = 0

    def fingerprint(self) -> str:
        """Stable identity used for baseline matching.

        Deliberately excludes the line *number* (editing an unrelated part
        of the file must not un-baseline a grandfathered finding) and keys
        on the stripped source line instead.
        """
        digest = hashlib.sha1(self.snippet.strip().encode("utf-8",
                                                          "replace"))
        return f"{self.path}::{self.rule}::{digest.hexdigest()[:12]}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render_text(self) -> str:
        text = (f"{self.location()}: {self.rule} {self.severity.value}: "
                f"{self.message}")
        if self.fix_hint:
            text += f" [hint: {self.fix_hint}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }
