"""simlint driver: file discovery, parsing, suppression, rule dispatch.

The linter is a plain AST walk -- no imports of the linted code are ever
executed, so it is safe to run over broken or half-written modules, and it
needs nothing outside the standard library.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .findings import Finding, Severity
from .registry import Rule, all_rules

#: inline suppression pragma: ``# simlint: disable`` silences every rule on
#: the line, ``# simlint: disable=SIM001,SIM004`` only the listed ones.
_PRAGMA = re.compile(r"#\s*simlint:\s*disable(?:=(?P<ids>[A-Z0-9,\s]+))?")

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".tox", ".venv", "venv",
              "node_modules", ".eggs", "build", "dist"}


@dataclass
class Module:
    """One parsed source file handed to every applicable rule."""

    path: str          # path as reported in findings (relative, posix)
    tree: ast.AST
    lines: List[str]   # physical source lines, 1-based via line(n)

    def __post_init__(self) -> None:
        self.parts: Tuple[str, ...] = tuple(
            part for part in self.path.replace("\\", "/").split("/") if part)
        self.name: str = self.parts[-1] if self.parts else self.path

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule: Rule, node: ast.AST, message: str,
                fix_hint: Optional[str] = None) -> Finding:
        """Build a Finding anchored at ``node`` for ``rule``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.path,
            line=lineno,
            col=col + 1,
            message=message,
            fix_hint=rule.fix_hint if fix_hint is None else fix_hint,
            snippet=self.line(lineno).strip(),
            end_line=getattr(node, "end_lineno", 0) or 0,
        )

    def suppressed(self, finding: Finding) -> bool:
        """True if a ``# simlint: disable`` pragma covers ``finding``.

        The pragma is honoured on the finding's first physical line and on
        the statement's last line (for multi-line calls whose trailing
        comment carries the pragma).
        """
        for lineno in {finding.line, finding.end_line or finding.line}:
            match = _PRAGMA.search(self.line(lineno))
            if match is None:
                continue
            ids = match.group("ids")
            if ids is None:
                return True
            wanted = {part.strip() for part in ids.split(",") if part.strip()}
            if finding.rule in wanted:
                return True
        return False


class Linter:
    """Runs a rule set over files or directories and collects findings."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 select: Optional[Iterable[str]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None \
            else all_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.id for rule in self.rules}
            if unknown:
                raise ValueError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))}")
            self.rules = [rule for rule in self.rules if rule.id in wanted]

    # ------------------------------------------------------------------
    # discovery

    @staticmethod
    def discover(paths: Sequence[str]) -> List[str]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: List[str] = []
        for path in paths:
            if os.path.isfile(path):
                files.append(path)
                continue
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in _SKIP_DIRS
                                     and not d.startswith("."))
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        return sorted(set(files))

    # ------------------------------------------------------------------
    # linting

    def lint_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Lint one in-memory source string (the unit-test entry point)."""
        display = path.replace(os.sep, "/")
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Finding(
                rule="SIM000", severity=Severity.ERROR, path=display,
                line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
                fix_hint="fix the syntax error before linting",
                snippet=(exc.text or "").strip(),
            )]
        module = Module(path=display, tree=tree,
                        lines=source.splitlines())
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if not module.suppressed(finding):
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def lint_file(self, path: str) -> List[Finding]:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            source = handle.read()
        return self.lint_source(source, path=path)

    def lint_paths(self, paths: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for path in self.discover(paths):
            findings.extend(self.lint_file(path))
        return findings


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Convenience wrapper: lint ``paths`` with the full built-in rule set."""
    return Linter(select=select).lint_paths(paths)
