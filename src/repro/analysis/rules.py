"""The built-in SIM001-SIM008 rule set.

Every rule guards one clause of the simulator's determinism contract
(README "Determinism contract"): integer-cycle time, FIFO same-cycle event
order, seeded randomness, and no hidden wall-clock or ordering leaks.
Rules are pure AST analyses -- the linted code is never imported.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from .findings import Finding, Severity
from .linter import Module
from .registry import Rule, rule

#: directories whose modules simulate (as opposed to drive experiments)
SIM_SCOPE = frozenset({"sim", "dram", "core", "sched", "workloads",
                       "tuning", "resilience", "validate"})
#: directories allowed to read wall-clock time (they report to humans)
WALL_CLOCK_EXEMPT = frozenset({"experiments", "benchmarks"})

#: methods that schedule events on the engine
_SCHEDULE_ATTRS = frozenset({"schedule", "schedule_in"})


def _walk(node: ast.AST) -> Iterator[ast.AST]:
    return ast.walk(node)


def _call_name(node: ast.Call) -> str:
    """Dotted name of a call target, best effort (``a.b.c`` -> "a.b.c")."""
    parts: List[str] = []
    func = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    return ".".join(reversed(parts))


def _is_schedule_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SCHEDULE_ATTRS)


def _cycle_argument(node: ast.Call) -> Optional[ast.expr]:
    """The ``when``/``delay`` expression of a schedule call, if present."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg in ("when", "delay"):
            return keyword.value
    return None


# ----------------------------------------------------------------------
# SIM001


@rule
class UnseededRandomRule(Rule):
    """Simulation code must only draw from explicitly seeded RNGs."""

    id = "SIM001"
    severity = Severity.ERROR
    title = "unseeded or module-level randomness in simulation code"
    fix_hint = ("use a seeded random.Random(seed) instance threaded through "
                "the component's constructor")
    scope_parts = SIM_SCOPE

    def check(self, module: Module) -> Iterable[Finding]:
        for node in _walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [alias.name for alias in node.names
                       if alias.name != "Random"]
                if bad:
                    yield module.finding(
                        self, node,
                        f"importing {', '.join(bad)} from random pulls in "
                        f"the shared module-level RNG")
                continue
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "random.Random":
                if not node.args and not node.keywords:
                    yield module.finding(
                        self, node,
                        "random.Random() without a seed expression is "
                        "nondeterministic across runs")
            elif name.startswith("random.") and name.count(".") == 1:
                yield module.finding(
                    self, node,
                    f"{name}() uses the process-global RNG; reproducibility "
                    f"then depends on call order across the whole program")
            elif name in ("np.random.default_rng", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    yield module.finding(
                        self, node,
                        "default_rng() without a seed is nondeterministic "
                        "across runs")
            elif (name.startswith("np.random.")
                  or name.startswith("numpy.random.")):
                yield module.finding(
                    self, node,
                    f"{name}() uses numpy's global RNG; use a seeded "
                    f"Generator instead")


# ----------------------------------------------------------------------
# SIM002


@rule
class WallClockRule(Rule):
    """Simulation results must not depend on when they were computed."""

    id = "SIM002"
    severity = Severity.ERROR
    title = "wall-clock time read outside experiments/benchmarks"
    fix_hint = ("derive time from Engine.now (simulated cycles); only the "
                "experiment/benchmark harnesses may measure wall time")
    exempt_parts = WALL_CLOCK_EXEMPT

    _TIME_ATTRS = frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                             "perf_counter", "perf_counter_ns",
                             "process_time", "process_time_ns"})
    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    def check(self, module: Module) -> Iterable[Finding]:
        for node in _walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [alias.name for alias in node.names
                       if alias.name in self._TIME_ATTRS]
                if bad:
                    yield module.finding(
                        self, node,
                        f"importing {', '.join(bad)} from time gives "
                        f"simulation code access to the wall clock")
                continue
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if (isinstance(value, ast.Name) and value.id == "time"
                    and node.attr in self._TIME_ATTRS):
                yield module.finding(
                    self, node,
                    f"time.{node.attr} reads the wall clock; simulation "
                    f"behaviour must depend only on cycle time")
            elif node.attr in self._DATETIME_ATTRS:
                base = value
                if isinstance(base, ast.Attribute):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in ("datetime",
                                                              "date"):
                    yield module.finding(
                        self, node,
                        f"datetime {node.attr}() reads the wall clock; "
                        f"simulation behaviour must depend only on cycle "
                        f"time")


# ----------------------------------------------------------------------
# SIM003


@rule
class FloatCycleRule(Rule):
    """Cycle arguments to the engine must stay integral."""

    id = "SIM003"
    severity = Severity.ERROR
    title = "float value flowing into an Engine.schedule cycle argument"
    fix_hint = ("keep cycle arithmetic integral: use // (and round "
                "ns-derived values inside repro.dram.timing), never / or "
                "float literals")

    def check(self, module: Module) -> Iterable[Finding]:
        for node in _walk(module.tree):
            if not _is_schedule_call(node):
                continue
            cycle = _cycle_argument(node)
            if cycle is None:
                continue
            reason = self._float_taint(cycle)
            if reason is not None:
                yield module.finding(
                    self, node,
                    f"cycle argument of {node.func.attr}() contains "
                    f"{reason}; simulated time is integer CPU cycles")

    @staticmethod
    def _float_taint(expr: ast.expr) -> Optional[str]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Constant) and isinstance(node.value,
                                                             float):
                return f"the float literal {node.value!r}"
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "float"):
                return "a float() conversion"
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                return "true division (/, which produces a float)"
        return None


# ----------------------------------------------------------------------
# SIM004


class _SelfMutationFinder(ast.NodeVisitor):
    """Does a loop body schedule events or mutate ``self`` state?"""

    _MUTATORS = frozenset({"add", "append", "appendleft", "extend", "insert",
                           "remove", "discard", "pop", "popleft", "clear",
                           "update", "setdefault", "push"})

    def __init__(self) -> None:
        self.reason: Optional[str] = None

    def _is_self_state(self, node: ast.expr) -> bool:
        while isinstance(node, ast.Subscript):
            node = node.value
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    def visit_Call(self, node: ast.Call) -> None:
        if self.reason is None and _is_schedule_call(node):
            self.reason = "schedules events"
        elif (self.reason is None and isinstance(node.func, ast.Attribute)
              and node.func.attr in self._MUTATORS
              and self._is_self_state(node.func.value)):
            self.reason = "mutates shared simulator state"
        self.generic_visit(node)

    def _check_targets(self, targets: Sequence[ast.expr]) -> None:
        if self.reason is None and any(self._is_self_state(t)
                                       for t in targets):
            self.reason = "mutates shared simulator state"

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_targets(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_targets([node.target])
        self.generic_visit(node)


@rule
class UnsortedIterationRule(Rule):
    """Hash-ordered iteration must not drive scheduling or shared state."""

    id = "SIM004"
    severity = Severity.ERROR
    title = ("iteration over set/dict without sorted() in a loop that "
             "schedules events or mutates shared sim state")
    fix_hint = "wrap the iterable in sorted(...) to pin the visit order"

    _DICT_VIEWS = frozenset({"keys", "values", "items"})
    _WRAPPERS = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})

    def check(self, module: Module) -> Iterable[Finding]:
        for node in _walk(module.tree):
            if not isinstance(node, ast.For):
                continue
            what = self._unordered(node.iter)
            if what is None:
                continue
            finder = _SelfMutationFinder()
            for stmt in node.body:
                finder.visit(stmt)
            if finder.reason is None:
                continue
            yield module.finding(
                self, node,
                f"loop over {what} {finder.reason}; iteration order must "
                f"be made explicit")

    def _unordered(self, expr: ast.expr) -> Optional[str]:
        # peel order-preserving wrappers: list(x.items()) is still x-ordered
        while (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
               and expr.func.id in self._WRAPPERS and expr.args):
            expr = expr.args[0]
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id in ("set",
                                                                    "frozenset"):
                return "a set"
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in self._DICT_VIEWS
                    and not expr.args):
                return f"a dict .{expr.func.attr}() view"
        return None


# ----------------------------------------------------------------------
# SIM005


@rule
class MutableDefaultRule(Rule):
    """Mutable default arguments alias state across instances and calls."""

    id = "SIM005"
    severity = Severity.WARNING
    title = "mutable default argument"
    fix_hint = "default to None and create the container inside the function"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in _walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._mutable(default):
                    yield module.finding(
                        self, default,
                        "mutable default argument is shared across every "
                        "call; state leaks between simulations")

    @staticmethod
    def _mutable(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in ("list", "dict", "set", "bytearray",
                                     "deque", "defaultdict", "Counter"))


# ----------------------------------------------------------------------
# SIM006


class _LambdaCaptureVisitor(ast.NodeVisitor):
    """Track loop-mutated names per function scope; flag schedule lambdas
    whose free variables are loop-mutated (late binding: the lambda sees
    the *last* value, silently reordering same-cycle behaviour)."""

    def __init__(self, rule_obj: Rule, module: Module) -> None:
        self.rule = rule_obj
        self.module = module
        self.findings: List[Finding] = []
        #: stack of per-loop sets of names rebound inside that loop
        self._loop_names: List[Set[str]] = []

    # -- scope management ------------------------------------------------

    def _enter_function(self, node: ast.AST) -> None:
        saved = self._loop_names
        self._loop_names = []
        for stmt in ast.iter_child_nodes(node):
            self.visit(stmt)
        self._loop_names = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    # -- loops -----------------------------------------------------------

    @staticmethod
    def _bound_names(target: ast.expr) -> Set[str]:
        # Only names actually rebound count: ``x = ...`` rebinds x, but
        # ``x.attr = ...`` / ``x[i] = ...`` mutate the object x refers to.
        names: Set[str] = set()
        stack: List[ast.expr] = [target]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, (ast.Tuple, ast.List)):
                stack.extend(node.elts)
            elif isinstance(node, ast.Starred):
                stack.append(node.value)
        return names

    def _loop_body_names(self, node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    names |= self._bound_names(target)
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                names |= self._bound_names(child.target)
            elif isinstance(child, ast.For):
                names |= self._bound_names(child.target)
        return names

    def _enter_loop(self, node, iteration_target: Optional[ast.expr]) -> None:
        names = self._loop_body_names(node)
        if iteration_target is not None:
            names |= self._bound_names(iteration_target)
        self._loop_names.append(names)
        self.generic_visit(node)
        self._loop_names.pop()

    def visit_For(self, node: ast.For) -> None:
        self._enter_loop(node, node.target)

    def visit_While(self, node: ast.While) -> None:
        self._enter_loop(node, None)

    # -- the check -------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if _is_schedule_call(node) and self._loop_names:
            rebound = set().union(*self._loop_names)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if not isinstance(arg, ast.Lambda):
                    continue
                captured = sorted(self._free_names(arg) & rebound)
                if captured:
                    self.findings.append(self.module.finding(
                        self.rule, arg,
                        f"lambda passed to {node.func.attr}() captures "
                        f"loop-rebound name(s) {', '.join(captured)} by "
                        f"reference; it will see the value from the last "
                        f"iteration"))
        self.generic_visit(node)

    @staticmethod
    def _free_names(lam: ast.Lambda) -> Set[str]:
        args = lam.args
        params = {a.arg for a in (args.args + args.posonlyargs
                                  + args.kwonlyargs)}
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        return {child.id for child in ast.walk(lam.body)
                if isinstance(child, ast.Name)
                and isinstance(child.ctx, ast.Load)} - params


@rule
class ScheduleCallbackRule(Rule):
    """Schedule callbacks must not late-bind loop variables."""

    id = "SIM006"
    severity = Severity.ERROR
    title = "order-fragile lambda scheduled from inside a loop"
    fix_hint = ("bind the value as a lambda default (lambda r=request: ...) "
                "or pass a bound method / named function")

    def check(self, module: Module) -> Iterable[Finding]:
        visitor = _LambdaCaptureVisitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings


# ----------------------------------------------------------------------
# SIM007


@rule
class InlineTimingRule(Rule):
    """All ns->cycle conversion lives in repro.dram.timing."""

    id = "SIM007"
    severity = Severity.ERROR
    title = "inline ns->cycle arithmetic outside repro.dram.timing"
    fix_hint = ("express DRAM timing through repro.dram.timing (DramTiming "
                "fields / _mem_clocks) so rounding happens exactly once")

    #: names that look like a nanosecond quantity or a clock-ratio constant
    _NS_NAME = re.compile(r"(^ns$|_ns$|^ns_|_ns_|nanosecond)", re.IGNORECASE)
    _RATIO_NAMES = frozenset({"CPU_CYCLES_PER_MEM_CLOCK"})
    exempt_files = frozenset()

    def applies_to(self, module: Module) -> bool:
        if module.path.replace("\\", "/").endswith("dram/timing.py"):
            return False
        return super().applies_to(module)

    def check(self, module: Module) -> Iterable[Finding]:
        for node in _walk(module.tree):
            if isinstance(node, (ast.Name, ast.Attribute)):
                name = node.id if isinstance(node, ast.Name) else node.attr
                if name in self._RATIO_NAMES:
                    yield module.finding(
                        self, node,
                        f"{name} must only be used inside "
                        f"repro.dram.timing; call its conversion helpers "
                        f"instead")
            elif isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
                for side in (node.left, node.right):
                    name = None
                    if isinstance(side, ast.Name):
                        name = side.id
                    elif isinstance(side, ast.Attribute):
                        name = side.attr
                    if name is not None and self._NS_NAME.search(name):
                        yield module.finding(
                            self, node,
                            f"arithmetic on nanosecond quantity "
                            f"'{name}' outside repro.dram.timing; inline "
                            f"conversions round differently at every site")
                        break


# ----------------------------------------------------------------------
# SIM008


@rule
class SwallowedExceptionRule(Rule):
    """Silently swallowed exceptions hide broken simulator state."""

    id = "SIM008"
    severity = Severity.WARNING
    title = "bare/broad except clause that swallows the exception"
    fix_hint = ("catch the specific exception you expect, or at minimum "
                "record the failure before continuing")

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, module: Module) -> Iterable[Finding]:
        for node in _walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is not None and not (
                    isinstance(node.type, ast.Name)
                    and node.type.id in self._BROAD):
                continue
            if all(self._is_noop(stmt) for stmt in node.body):
                kind = "bare except" if node.type is None \
                    else f"except {node.type.id}"
                yield module.finding(
                    self, node,
                    f"{kind} with a pass-only body swallows failures that "
                    f"would otherwise expose corrupted simulator state")

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis)
