"""Runtime invariant contracts for the simulator's hot seams.

Static analysis (simlint) catches contract violations it can see in the
source; this module catches the ones that only appear at runtime -- a
refactored event queue that loses FIFO order, a scheduler bug that drives
a shaper bin negative, a float sneaking into cycle arithmetic through a
config value.  Checks are **off by default** and cost one attribute/global
read per guarded call when disabled, so production runs pay essentially
nothing.

Enable them:

* process-wide via the environment: ``REPRO_CONTRACTS=1 pytest``
* programmatically: ``contracts.set_enabled(True)`` / ``set_enabled(False)``
* scoped (tests): ``with contracts.enabled_scope(): ...``

Components that want zero per-event overhead when disabled (the engine's
event loop) capture :func:`is_enabled` once at construction; everything
else consults the global through :func:`check` / :func:`invariant` on each
call.  Contracts are *observers only*: they never mutate simulator state,
so enabling them cannot change simulation results (pinned by
``tests/test_determinism.py``).
"""

from __future__ import annotations

import functools
import os
from contextlib import contextmanager
from typing import Callable, Iterator, List


class ContractViolation(AssertionError):
    """A runtime invariant of the simulator was broken.

    Subclasses :class:`AssertionError` so harnesses that already treat
    assertion failures as fatal do the right thing, while still being
    catchable specifically.
    """


#: callables notified with each ContractViolation before it propagates
#: (fault-injection harnesses proving a contract actually fired)
_observers: List[Callable[[ContractViolation], None]] = []


def add_observer(observer: Callable[[ContractViolation], None]) -> None:
    """Register a callback invoked with every violation before it raises."""
    _observers.append(observer)


def remove_observer(observer: Callable[[ContractViolation], None]) -> None:
    """Unregister a callback; missing observers are ignored."""
    try:
        _observers.remove(observer)
    except ValueError:
        return


@contextmanager
def observing(observer: Callable[[ContractViolation], None]) -> Iterator[None]:
    """Scope an observer registration (always unregisters on exit)."""
    add_observer(observer)
    try:
        yield
    finally:
        remove_observer(observer)


def violate(error: ContractViolation) -> None:
    """Announce a pre-built violation to every observer, then raise it.

    Observers run *before* the raise so a harness can capture the
    violation even when an outer layer swallows the exception; an
    observer that itself raises does not mask the violation.  Runtime
    monitors that carry structured diagnostics (the bound checker's
    :class:`repro.validate.BoundViolation`) construct their own
    :class:`ContractViolation` subclass and hand it here, so one observer
    registration sees both kinds of failure.
    """
    for observer in list(_observers):
        try:
            observer(error)
        except Exception:
            # A broken observer must not mask the real violation.
            continue
    raise error


def _violate(message: str) -> None:
    """Build, announce, and raise a plain :class:`ContractViolation`."""
    violate(ContractViolation(message))


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_CONTRACTS", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


_enabled: bool = _env_enabled()


def is_enabled() -> bool:
    """Are runtime contracts currently active?"""
    return _enabled


def set_enabled(on: bool) -> bool:
    """Turn contracts on/off globally; returns the previous setting.

    Components that captured the flag at construction (the
    :class:`~repro.sim.engine.Engine`) keep their captured value; create
    them after toggling, or use :func:`enabled_scope` around the whole
    simulation setup.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Context manager enabling (or disabling) contracts within a block."""
    previous = set_enabled(on)
    try:
        yield
    finally:
        set_enabled(previous)


def check(condition: bool, message: str, *args: object) -> None:
    """Raise :class:`ContractViolation` unless ``condition`` holds.

    The condition is evaluated by the *caller*, so hot paths should guard
    the whole block with ``if contracts.is_enabled():`` to avoid computing
    it when contracts are off.
    """
    if _enabled and not condition:
        _violate(message % args if args else message)


def hot_bind(bound_method: Callable) -> Callable:
    """Fastest safe callable for a contract-wrapped bound method.

    When contracts are disabled at bind time, returns the *undecorated*
    method re-bound to the same instance, eliminating the wrapper's
    per-call frame on hot paths.  When contracts are enabled -- or the
    method was never wrapped -- the original bound method is returned
    unchanged.  Like :class:`~repro.sim.engine.Engine`, the flag is
    captured at bind time: bind inside :func:`enabled_scope` (or under
    ``REPRO_CONTRACTS=1``) to keep the checks.
    """
    if _enabled:
        return bound_method
    func = getattr(bound_method, "__func__", None)
    raw = getattr(func, "__wrapped__", None)
    if raw is None:
        return bound_method
    return raw.__get__(bound_method.__self__)


def invariant(*predicates: Callable[[object], bool],
              when: str = "post") -> Callable:
    """Method decorator asserting object invariants around a call.

    Each predicate takes the instance and returns True when the invariant
    holds; its docstring (or name) becomes the failure message.  ``when``
    is ``"post"`` (default), ``"pre"``, or ``"both"``.  When contracts are
    disabled the wrapper is a single global read plus the original call.
    """
    if when not in ("pre", "post", "both"):
        raise ValueError(f"when must be pre/post/both, not {when!r}")
    check_pre = when in ("pre", "both")
    check_post = when in ("post", "both")

    def describe(predicate: Callable[[object], bool]) -> str:
        doc = (predicate.__doc__ or "").strip().splitlines()
        return doc[0] if doc else predicate.__name__

    def decorator(method: Callable) -> Callable:
        @functools.wraps(method)
        def wrapper(self, *args: object, **kwargs: object):
            if not _enabled:
                return method(self, *args, **kwargs)
            if check_pre:
                for predicate in predicates:
                    if not predicate(self):
                        _violate(
                            f"{type(self).__name__}.{method.__name__} "
                            f"precondition violated: {describe(predicate)}")
            result = method(self, *args, **kwargs)
            if check_post:
                for predicate in predicates:
                    if not predicate(self):
                        _violate(
                            f"{type(self).__name__}.{method.__name__} "
                            f"postcondition violated: {describe(predicate)}")
            return result
        return wrapper

    return decorator
