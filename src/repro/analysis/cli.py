"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (or every finding baselined), 1 = new findings,
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .baseline import Baseline
from .findings import Finding
from .linter import Linter
from .registry import all_rules

DEFAULT_BASELINE = "simlint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism lint for the MITTS simulator")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--whole-program", action="store_true",
                        help="additionally run the interprocedural simflow "
                             "passes (effects, cycle-units dataflow, "
                             "checkpoint/pickle safety) over all paths "
                             "as one program")
    parser.add_argument("--select", metavar="SIM001,SIM004",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file of grandfathered findings "
                             f"(default: ./{DEFAULT_BASELINE} if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _resolve_baseline(args: argparse.Namespace) -> Optional[str]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    if os.path.exists(DEFAULT_BASELINE):
        return DEFAULT_BASELINE
    return None


def _print_rules(stream) -> None:
    stream.write(f"{'id':<8}{'severity':<10}title\n")
    for rule in all_rules():
        stream.write(f"{rule.id:<8}{rule.severity.value:<10}{rule.title}\n")
        stream.write(f"{'':<18}fix: {rule.fix_hint}\n")


def _emit_text(new: Sequence[Finding], old: Sequence[Finding],
               stream) -> None:
    for finding in new:
        stream.write(finding.render_text() + "\n")
    if old:
        stream.write(f"({len(old)} baselined finding(s) suppressed)\n")
    if new:
        errors = sum(1 for f in new if f.severity.value == "error")
        warnings = len(new) - errors
        stream.write(f"simlint: {len(new)} new finding(s) "
                     f"({errors} error, {warnings} warning)\n")
    else:
        stream.write("simlint: clean\n")


def _emit_json(new: Sequence[Finding], old: Sequence[Finding],
               stream) -> None:
    payload = {
        "version": 1,
        "new": [finding.to_dict() for finding in new],
        "baselined": len(old),
        "counts": {
            "error": sum(1 for f in new if f.severity.value == "error"),
            "warning": sum(1 for f in new if f.severity.value == "warning"),
        },
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def main(argv: Optional[Sequence[str]] = None,
         stdout=None, stderr=None) -> int:
    stdout = stdout or sys.stdout
    stderr = stderr or sys.stderr
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules(stdout)
        return 0

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",")
                  if part.strip()]
    try:
        linter = Linter(select=select)
    except ValueError as exc:
        stderr.write(f"simlint: {exc}\n")
        return 2

    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        stderr.write(f"simlint: no such path: {', '.join(missing)}\n")
        return 2

    findings: List[Finding] = linter.lint_paths(args.paths)

    if args.whole_program:
        # Import here: the flow package parses the whole tree and is only
        # needed when the interprocedural passes actually run.
        from .flow import analyze_paths

        flow_select = set(select) if select is not None else None
        findings.extend(analyze_paths(args.paths, select=flow_select))
        findings.sort(key=lambda f: (f.path, f.line, f.rule, f.col))

    baseline_path = _resolve_baseline(args)
    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(findings).save(target)
        stdout.write(f"simlint: wrote {len(findings)} finding(s) to "
                     f"{target}\n")
        return 0

    baseline = Baseline()
    if baseline_path is not None and os.path.exists(baseline_path):
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            stderr.write(f"simlint: bad baseline: {exc}\n")
            return 2
    new, old = baseline.split(findings)

    if args.format == "json":
        _emit_json(new, old, stdout)
    else:
        _emit_text(new, old, stdout)
    return 1 if new else 0
