"""Baseline files: grandfather existing findings, fail only on new ones.

A baseline is a committed JSON file holding the fingerprints of known
findings.  ``python -m repro.analysis src --baseline simlint-baseline.json``
subtracts them, so a rule can be introduced (or tightened) without forcing
an immediate fix of every historical hit -- while any *new* violation still
fails the build.  This repo ships an empty baseline on purpose: all real
findings were fixed rather than grandfathered.

Fingerprints key on (path, rule, hash of the stripped source line), not on
line numbers, so unrelated edits to a file do not un-baseline its entries.
Duplicate identical lines are handled as a multiset.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, List, Sequence, Tuple

from .findings import Finding

FORMAT_VERSION = 1


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self.fingerprints = Counter(fingerprints)

    # ------------------------------------------------------------------
    # persistence

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "fingerprints" not in payload:
            raise ValueError(
                f"{path} is not a simlint baseline (missing 'fingerprints')")
        version = payload.get("version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise ValueError(f"{path} has unsupported baseline version "
                             f"{version!r}")
        return cls(payload["fingerprints"])

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(finding.fingerprint() for finding in findings)

    def save(self, path: str) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "fingerprints": sorted(self.fingerprints.elements()),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # ------------------------------------------------------------------
    # filtering

    def split(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition ``findings`` into (new, grandfathered)."""
        remaining = Counter(self.fingerprints)
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            key = finding.fingerprint()
            if remaining[key] > 0:
                remaining[key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    def __len__(self) -> int:
        return sum(self.fingerprints.values())
