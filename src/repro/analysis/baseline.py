"""Baseline files: grandfather existing findings, fail only on new ones.

A baseline is a committed JSON file holding the fingerprints of known
findings.  ``python -m repro.analysis src --baseline simlint-baseline.json``
subtracts them, so a rule can be introduced (or tightened) without forcing
an immediate fix of every historical hit -- while any *new* violation still
fails the build.  This repo ships an empty baseline on purpose: all real
findings were fixed rather than grandfathered.

Fingerprints key on (path, rule, hash of the stripped source line), not on
line numbers, so unrelated edits to a file do not un-baseline its entries.
Duplicate identical lines are handled as a multiset.

Format version 2 partitions fingerprints by analysis pass::

    {"version": 2,
     "passes": {"simlint": ["src/a.py::SIM004::ab12..."],
                "simflow": ["src/b.py::SIM013::cd34..."]}}

``simlint`` holds the per-file rules (SIM001-SIM008), ``simflow`` the
whole-program rules (SIM009+).  The partition is derived from the rule id
embedded in each fingerprint, so the two passes can be re-baselined
independently without clobbering each other.  Version-1 files (one flat
``fingerprints`` list) still load -- the shim migrates them in memory and
the next ``--write-baseline`` persists version 2.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from .findings import Finding

FORMAT_VERSION = 2

#: highest rule number handled by the per-file pass; above = whole-program
LAST_PER_FILE_RULE = 8

_FINGERPRINT_RULE = re.compile(r"::SIM(\d{3})::")


def pass_for_rule(rule_id: str) -> str:
    """Which analysis pass owns a rule id ('simlint' or 'simflow')."""
    match = re.match(r"^SIM(\d{3})$", rule_id)
    if match and int(match.group(1)) > LAST_PER_FILE_RULE:
        return "simflow"
    return "simlint"


def _pass_for_fingerprint(fingerprint: str) -> str:
    match = _FINGERPRINT_RULE.search(fingerprint)
    if match and int(match.group(1)) > LAST_PER_FILE_RULE:
        return "simflow"
    return "simlint"


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self.fingerprints = Counter(fingerprints)

    # ------------------------------------------------------------------
    # persistence

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(f"{path} is not a simlint baseline")
        version = payload.get("version", 1)
        if version == FORMAT_VERSION:
            passes = payload.get("passes")
            if not isinstance(passes, dict):
                raise ValueError(f"{path} is a version-2 baseline without "
                                 f"a 'passes' section")
            merged: List[str] = []
            for name in sorted(passes):
                entries = passes[name]
                if not isinstance(entries, list):
                    raise ValueError(f"{path}: pass {name!r} must hold a "
                                     f"list of fingerprints")
                merged.extend(entries)
            return cls(merged)
        if version == 1:
            # migration shim: version-1 files carried one flat list
            if "fingerprints" not in payload:
                raise ValueError(f"{path} is not a simlint baseline "
                                 f"(missing 'fingerprints')")
            return cls(payload["fingerprints"])
        raise ValueError(f"{path} has unsupported baseline version "
                         f"{version!r}")

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(finding.fingerprint() for finding in findings)

    def save(self, path: str) -> None:
        passes: Dict[str, List[str]] = {"simlint": [], "simflow": []}
        for fingerprint in sorted(self.fingerprints.elements()):
            passes[_pass_for_fingerprint(fingerprint)].append(fingerprint)
        payload = {
            "version": FORMAT_VERSION,
            "passes": passes,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # ------------------------------------------------------------------
    # filtering

    def split(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition ``findings`` into (new, grandfathered)."""
        remaining = Counter(self.fingerprints)
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            key = finding.fingerprint()
            if remaining[key] > 0:
                remaining[key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    def __len__(self) -> int:
        return sum(self.fingerprints.values())
