"""Pluggable rule registry for simlint.

Rules are classes decorated with :func:`rule`; the decorator validates the
rule's metadata and adds it to the global registry the linter iterates.
Keeping registration declarative means a future PR can ship extra rules
(or a project-local plugin module) without touching the linter core.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Type

_RULE_ID = re.compile(r"^SIM\d{3}$")

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for simlint rules.

    Subclasses set the class attributes below and implement
    :meth:`check`, which yields :class:`~repro.analysis.findings.Finding`
    objects for one parsed module.  ``scope_parts`` / ``exempt_parts``
    restrict a rule by path component: a rule with ``scope_parts`` only
    runs on files whose path contains one of those directory names, and a
    rule with ``exempt_parts`` skips files whose path contains one.
    """

    id: str = ""
    severity = None  # type: ignore[assignment]
    title: str = ""
    fix_hint: str = ""
    #: only lint files whose path contains one of these directory names
    #: (empty = everywhere)
    scope_parts: frozenset = frozenset()
    #: skip files whose path contains one of these directory names
    exempt_parts: frozenset = frozenset()
    #: skip files with one of these basenames
    exempt_files: frozenset = frozenset()

    def applies_to(self, module) -> bool:
        parts = set(module.parts)
        if module.name in self.exempt_files:
            return False
        if self.exempt_parts & parts:
            return False
        if self.scope_parts and not (self.scope_parts & parts):
            return False
        return True

    def check(self, module) -> Iterable:
        raise NotImplementedError


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` subclass."""
    if not issubclass(cls, Rule):
        raise TypeError(f"{cls!r} must subclass Rule")
    if not _RULE_ID.match(cls.id or ""):
        raise ValueError(f"rule {cls.__name__} needs an id like 'SIM001', "
                         f"got {cls.id!r}")
    if cls.severity is None or not cls.title:
        raise ValueError(f"rule {cls.id} needs severity and title")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _ensure_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_builtin_rules()
    return _REGISTRY[rule_id]()


def _ensure_builtin_rules() -> None:
    # Import for the registration side effect; deferred to dodge the
    # rules -> findings -> registry import cycle at package init.
    from . import rules  # noqa: F401
    from .flow import rules as flow_rules  # noqa: F401
