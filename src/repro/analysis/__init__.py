"""Static + dynamic guardrails for the simulator's determinism contract.

The MITTS reproduction depends on a contract the rest of the code merely
states in prose: simulation time is *integer CPU cycles*, same-cycle events
run in *FIFO scheduling order*, and every stochastic component draws from a
*seeded* ``random.Random``.  A silently nondeterministic or float-polluted
simulator invalidates every figure reproduction and every GA-tuned bin
configuration, so this package enforces the contract by machine:

``repro.analysis.simlint`` (:mod:`~repro.analysis.linter`,
:mod:`~repro.analysis.rules`)
    An AST-based static analyzer (stdlib only) with a pluggable rule
    registry and the SIM001-SIM008 rule set.  Run it as::

        python -m repro.analysis src
        python -m repro.analysis src --format json

    Findings can be suppressed per line with ``# simlint: disable=SIM001``
    and grandfathered through a committed baseline file (see
    :mod:`~repro.analysis.baseline`); the CLI exits nonzero on any
    non-baselined finding.

``repro.analysis.simflow`` (:mod:`~repro.analysis.flow`)
    The whole-program counterpart: a symbol table, an idiom-aware call
    graph, and the interprocedural SIM009-SIM014 rule set (effect
    inference, cycle-units dataflow, checkpoint/pickle safety).  Run it
    through the same CLI with ``--whole-program``; pragmas, baseline
    and JSON output are shared with simlint.

:mod:`repro.analysis.contracts`
    Lightweight runtime invariants (``@invariant`` / ``check``) wired into
    the simulator's hot seams -- engine time monotonicity and heap-FIFO
    order, non-negative shaper credits, the 32-entry transaction-queue
    bound, DRAM row-buffer legality.  Disabled by default; enable with the
    ``REPRO_CONTRACTS=1`` environment variable or
    :func:`repro.analysis.contracts.enabled_scope`.
"""

from __future__ import annotations

from .baseline import Baseline
from .contracts import ContractViolation, check, invariant, is_enabled
from .findings import Finding, Severity
from .linter import Linter, lint_paths
from .registry import all_rules, get_rule, rule

__all__ = [
    "Baseline",
    "ContractViolation",
    "Finding",
    "Linter",
    "Severity",
    "all_rules",
    "check",
    "get_rule",
    "invariant",
    "is_enabled",
    "lint_paths",
    "rule",
]
