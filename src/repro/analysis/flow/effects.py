"""Interprocedural effect inference (rules SIM009-SIM011).

Each function gets a set of *intrinsic* effects found by AST scan --
wall-clock reads, draws from unseeded/global RNGs, ambient environment
access (env vars, filesystem, ``global`` mutation) -- which then
propagate caller-ward over the call graph to a fixpoint.  A finding fires
when a simulation root (``SimSystem.run`` or any callback scheduled on an
engine) can transitively reach an effect.

The effect lattice is the powerset of ``{WALLCLOCK, RNG, AMBIENT}``
ordered by inclusion; propagation is monotone union, so the fixpoint is
reached in at most ``len(lattice) * |functions|`` rounds (in practice a
handful).

``repro/runner/wallclock.py`` is the sanctioned cut point: effects
intrinsic to it never propagate (that is the module's whole purpose --
one grep-able, pragma'd wall-clock access point).  Individual sites can
also be waived with ``# simlint: disable=SIM009`` (etc.) on the line of
the effectful call, exactly like the per-file rules.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from .callgraph import CallGraph
from .symbols import FunctionInfo, Program, _dotted

# -- effect kinds -------------------------------------------------------

WALLCLOCK = "wall-clock"
RNG = "unseeded-rng"
AMBIENT = "ambient-state"

#: effect kind -> whole-program rule id that reports it
RULE_FOR_EFFECT = {WALLCLOCK: "SIM009", RNG: "SIM010", AMBIENT: "SIM011"}

_TIME_ATTRS = frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                         "perf_counter", "perf_counter_ns",
                         "process_time", "process_time_ns", "sleep"})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_GLOBAL_RANDOM = frozenset({"random", "randint", "randrange", "choice",
                            "choices", "shuffle", "sample", "uniform",
                            "gauss", "normalvariate", "betavariate",
                            "expovariate", "seed", "getrandbits",
                            "triangular"})
_OS_FS = frozenset({"remove", "unlink", "rename", "replace", "makedirs",
                    "mkdir", "rmdir", "listdir", "scandir", "getcwd",
                    "urandom", "getenv", "putenv"})


class EffectSite(NamedTuple):
    """Where an intrinsic effect happens (for anchoring and messages)."""

    kind: str
    func_qualname: str
    path: str
    lineno: int
    end_lineno: int
    description: str


class EffectAnalysis:
    """Intrinsic scan + transitive propagation + root reachability."""

    def __init__(self, program: Program, graph: CallGraph,
                 cut_modules: Tuple[str, ...] = ("runner.wallclock",),
                 exempt_parts: Iterable[str] = ("experiments",
                                                "benchmarks", "analysis"),
                 ) -> None:
        self.program = program
        self.graph = graph
        self.cut_modules = cut_modules
        self.exempt_parts = frozenset(exempt_parts)
        #: qualname -> {kind: originating EffectSite}
        self.intrinsic: Dict[str, Dict[str, EffectSite]] = {}
        #: qualname -> {kind: (site, via_qualname_or_None)}
        self.effects: Dict[str, Dict[str, Tuple[EffectSite,
                                                Optional[str]]]] = {}
        self._scan_intrinsic()
        self._propagate()

    # ------------------------------------------------------------------
    # intrinsic effects

    def _is_cut(self, func: FunctionInfo) -> bool:
        return any(func.module.name.endswith(cut)
                   for cut in self.cut_modules)

    def _scan_intrinsic(self) -> None:
        for func in self.program.all_functions():
            if self._is_cut(func):
                self.intrinsic[func.qualname] = {}
                continue
            sites: Dict[str, EffectSite] = {}
            for kind, node, description in _intrinsic_effects(func):
                rule_id = RULE_FOR_EFFECT[kind]
                anchor = _pseudo_finding(func, node, rule_id)
                if func.module.module.suppressed(anchor):
                    continue
                sites.setdefault(kind, EffectSite(
                    kind, func.qualname, func.module.path,
                    getattr(node, "lineno", 1),
                    getattr(node, "end_lineno", 0) or 0, description))
            self.intrinsic[func.qualname] = sites

    # ------------------------------------------------------------------
    # propagation (callee effects flow into callers)

    def _propagate(self) -> None:
        effects: Dict[str, Dict[str, Tuple[EffectSite, Optional[str]]]] = {
            qualname: {kind: (site, None)
                       for kind, site in sites.items()}
            for qualname, sites in self.intrinsic.items()}
        changed = True
        while changed:
            changed = False
            for site_list in self.graph.sites:
                caller = site_list.caller.qualname
                callee = site_list.callee.qualname
                if self._is_cut(site_list.callee):
                    continue
                for kind, (origin, _via) in effects.get(callee,
                                                        {}).items():
                    if kind not in effects.setdefault(caller, {}):
                        effects[caller][kind] = (origin, callee)
                        changed = True
        self.effects = effects

    # ------------------------------------------------------------------
    # roots

    def roots(self) -> List[FunctionInfo]:
        """Simulation entry points: ``SimSystem.run`` and every scheduled
        callback defined outside the exempt directories."""
        found: Dict[str, FunctionInfo] = {}
        for cls in self.program.classes_named("SimSystem"):
            run = cls.methods.get("run")
            if run is not None:
                found[run.qualname] = run
        for callback, _site in self.graph.scheduled_callbacks():
            if self._exempt(callback):
                continue
            found.setdefault(callback.qualname, callback)
        return [found[name] for name in sorted(found)]

    def _exempt(self, func: FunctionInfo) -> bool:
        parts = set(func.module.module.parts)
        return bool(parts & self.exempt_parts)

    # ------------------------------------------------------------------
    # reporting

    def violations(self) -> List[Tuple[EffectSite, List[str]]]:
        """(effect site, root->effect chain) for every reachable effect.

        One entry per distinct effect site; the chain is a witness, not
        an enumeration of every path.
        """
        reachable = self.graph.reachable_from(self.roots())
        seen: Set[Tuple[str, str, int]] = set()
        out: List[Tuple[EffectSite, List[str]]] = []
        for qualname in sorted(reachable):
            for kind, (origin, _via) in sorted(
                    self.effects.get(qualname, {}).items()):
                key = (origin.kind, origin.path, origin.lineno)
                if key in seen:
                    continue
                # only report each effect once, at the function whose
                # chain to the intrinsic site is shortest: prefer the
                # site's own function when reachable.
                if origin.func_qualname in reachable \
                        and qualname != origin.func_qualname:
                    continue
                seen.add(key)
                chain = self.graph.witness_path(reachable, qualname)
                if qualname != origin.func_qualname:
                    chain = chain + self._tail_to_origin(qualname, origin)
                out.append((origin, chain))
        return out

    def _tail_to_origin(self, start: str,
                        origin: EffectSite) -> List[str]:
        """Call chain from ``start`` down to the intrinsic site's function."""
        tail: List[str] = []
        current = start
        guard = 0
        while current != origin.func_qualname and guard < 50:
            guard += 1
            advanced = False
            for site in self.graph.calls_from(current):
                callee = site.callee.qualname
                if origin.kind in self.effects.get(callee, {}):
                    tail.append(callee)
                    current = callee
                    advanced = True
                    break
            if not advanced:
                break
        return tail


# ----------------------------------------------------------------------
# the per-function intrinsic scan


def _intrinsic_effects(func: FunctionInfo
                       ) -> Iterable[Tuple[str, ast.AST, str]]:
    for node in ast.walk(func.node):
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            parts = dotted.split(".")
            if len(parts) == 2 and parts[0] == "time" \
                    and parts[1] in _TIME_ATTRS:
                yield WALLCLOCK, node, f"{dotted}() reads the wall clock"
            elif parts[-1] in _DATETIME_ATTRS and len(parts) >= 2 \
                    and parts[-2] in ("datetime", "date"):
                yield WALLCLOCK, node, f"{dotted}() reads the wall clock"
            elif dotted in ("os.environ",):
                yield AMBIENT, node, "os.environ reads ambient state"
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            parts = dotted.split(".")
            if dotted == "random.Random" and not node.args \
                    and not node.keywords:
                yield RNG, node, ("random.Random() without a seed is "
                                  "nondeterministic")
            elif len(parts) == 2 and parts[0] == "random" \
                    and parts[1] in _GLOBAL_RANDOM:
                yield RNG, node, f"{dotted}() uses the process-global RNG"
            elif parts[-2:] == ["random", "default_rng"] and not node.args \
                    and not node.keywords:
                yield RNG, node, "default_rng() without a seed"
            elif len(parts) >= 2 and parts[-2] == "random" \
                    and parts[0] in ("np", "numpy"):
                yield RNG, node, f"{dotted}() uses numpy's global RNG"
            elif dotted in ("os.urandom", "uuid.uuid4", "uuid.uuid1",
                            "secrets.token_bytes", "secrets.token_hex",
                            "secrets.randbelow"):
                yield RNG, node, f"{dotted}() is entropy-seeded"
            elif dotted == "open" or dotted == "os.getenv" \
                    or (len(parts) == 2 and parts[0] == "os"
                        and parts[1] in _OS_FS):
                yield AMBIENT, node, (f"{dotted}() touches the ambient "
                                      f"environment")
        elif isinstance(node, ast.Global):
            # `global X` only matters if the function also rebinds X
            rebound = _rebinds(func.node, set(node.names))
            if rebound:
                yield AMBIENT, node, (f"mutates module global(s) "
                                      f"{', '.join(sorted(rebound))}")


def _rebinds(func_node: ast.AST, names: Set[str]) -> Set[str]:
    rebound: Set[str] = set()
    for node in ast.walk(func_node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in names:
                rebound.add(target.id)
    return rebound


def _pseudo_finding(func: FunctionInfo, node: ast.AST, rule_id: str):
    """A minimal Finding-shaped object for pragma checks."""
    from ..findings import Finding, Severity
    return Finding(
        rule=rule_id, severity=Severity.ERROR, path=func.module.path,
        line=getattr(node, "lineno", 1), col=1, message="",
        end_line=getattr(node, "end_lineno", 0) or 0)
