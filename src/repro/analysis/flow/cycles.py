"""Interprocedural cycle-units dataflow (rule SIM012).

SIM003 catches a float *written directly inside* a ``schedule`` cycle
argument; this pass catches the float that arrives *through dataflow*: a
helper whose return expression divides, a parameter that some call site
feeds a float, a local assigned from either.  The lattice per value is
``{clean, tainted}``; three facts are computed to a joint fixpoint over
the call graph:

* ``returns_float(f)`` -- some ``return`` expression of ``f`` is tainted;
* ``tainted_params(f)`` -- parameters that receive a tainted argument at
  at least one resolved call site;
* ``tainted_locals(f)`` -- names assigned a tainted expression
  (flow-insensitive: one taint anywhere taints the name everywhere).

``repro.dram.timing`` is the sanctioned conversion point (SIM007): its
functions' returns are trusted clean, exactly like the per-file rule
trusts its internals.  ``int()``, ``round()``, ``//``, ``math.floor`` and
``math.ceil`` launder taint -- they produce ints.

To stay purely interprocedural (and not double-report what SIM003
already flags), a schedule site is only reported when the taint reaches
the cycle expression through a *name or call*, never when the float
literal / ``/`` / ``float()`` sits in the expression itself.
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from .callgraph import CallGraph, ScheduleSite
from .symbols import FunctionInfo, Program, _dotted

#: call targets that always produce an int (taint launderers)
_INT_FUNCS = frozenset({"int", "round", "len", "ord", "id", "hash",
                        "math.floor", "math.ceil", "math.trunc"})
#: call targets that produce floats outright
_FLOAT_FUNCS = frozenset({"float", "math.sqrt", "math.log", "math.log2",
                          "math.exp", "math.pow", "math.sin", "math.cos",
                          "statistics.mean", "statistics.median", "sum"})
# (`sum` is only float when its inputs are; treating it as clean would
# miss `sum(latencies) / n` hidden behind a helper, and schedule args
# built from sum() of ints almost always go through // anyway -- so sum
# itself is NOT in the float set; listed here once to document the
# decision.)
_FLOAT_FUNCS = _FLOAT_FUNCS - {"sum"}

#: modules whose returns are trusted integral (the sanctioned converters)
_TRUSTED_MODULES = ("dram.timing",)


class TaintReason(NamedTuple):
    description: str
    lineno: int


class CycleTaintAnalysis:
    """Fixpoint float-taint over returns, params and locals."""

    def __init__(self, program: Program, graph: CallGraph) -> None:
        self.program = program
        self.graph = graph
        self.returns_float: Dict[str, Optional[TaintReason]] = {}
        self.tainted_params: Dict[str, Dict[str, TaintReason]] = {}
        self.tainted_locals: Dict[str, Dict[str, TaintReason]] = {}
        for func in program.all_functions():
            self.returns_float[func.qualname] = None
            self.tainted_params[func.qualname] = self._declared_floats(func)
            self.tainted_locals[func.qualname] = {}
        self._fixpoint()

    @staticmethod
    def _declared_floats(func: FunctionInfo) -> Dict[str, TaintReason]:
        """Params that are floats by declaration: ``x: float`` or a float
        default value."""
        tainted: Dict[str, TaintReason] = {}
        args = func.node.args
        positional = args.posonlyargs + args.args
        defaults: List[Optional[ast.expr]] = (
            [None] * (len(positional) - len(args.defaults))
            + list(args.defaults))
        for arg, default in list(zip(positional, defaults)) + list(
                zip(args.kwonlyargs, args.kw_defaults)):
            if (arg.annotation is not None
                    and isinstance(arg.annotation, ast.Name)
                    and arg.annotation.id == "float"):
                tainted[arg.arg] = TaintReason(
                    f"{arg.arg} is annotated float", arg.lineno)
            elif (default is not None
                    and isinstance(default, ast.Constant)
                    and isinstance(default.value, float)):
                tainted[arg.arg] = TaintReason(
                    f"{arg.arg} defaults to the float {default.value!r}",
                    arg.lineno)
        return tainted

    # ------------------------------------------------------------------

    def _trusted(self, func: FunctionInfo) -> bool:
        return any(func.module.name.endswith(m) for m in _TRUSTED_MODULES)

    def _fixpoint(self) -> None:
        changed = True
        rounds = 0
        while changed and rounds < 50:
            rounds += 1
            changed = False
            for func in self.program.all_functions():
                if self._update_locals(func):
                    changed = True
                if self._update_return(func):
                    changed = True
            if self._update_params():
                changed = True

    def _update_locals(self, func: FunctionInfo) -> bool:
        changed = False
        locals_ = self.tainted_locals[func.qualname]
        for node in ast.walk(func.node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            name = node.targets[0].id
            if name in locals_:
                continue
            reason = self._taint(func, node.value, allow_direct=True)
            if reason is not None:
                locals_[name] = TaintReason(
                    f"{name} = {reason.description}", node.lineno)
                changed = True
        return changed

    def _update_return(self, func: FunctionInfo) -> bool:
        if self.returns_float[func.qualname] is not None \
                or self._trusted(func):
            return False
        for node in ast.walk(func.node):
            if isinstance(node, ast.Return) and node.value is not None:
                reason = self._taint(func, node.value, allow_direct=True)
                if reason is not None:
                    self.returns_float[func.qualname] = TaintReason(
                        f"returns {reason.description}", node.lineno)
                    return True
        return False

    def _update_params(self) -> bool:
        changed = False
        for site in self.graph.sites:
            if site.kind != "call" or not isinstance(site.node, ast.Call):
                continue
            callee = site.callee
            if self._trusted(callee):
                continue
            params = self.tainted_params[callee.qualname]
            for param, expr in _bind_args(callee, site.node):
                if param in params:
                    continue
                reason = self._taint(site.caller, expr, allow_direct=True)
                if reason is not None:
                    params[param] = TaintReason(
                        f"{param} receives {reason.description} from "
                        f"{site.caller.qualname} "
                        f"(line {site.node.lineno})",
                        site.node.lineno)
                    changed = True
        return changed

    # ------------------------------------------------------------------
    # expression taint

    def _taint(self, func: FunctionInfo, expr: ast.expr,
               allow_direct: bool) -> Optional[TaintReason]:
        """Taint of ``expr`` evaluated in ``func``.

        ``allow_direct=False`` ignores float sources written literally in
        the expression (SIM003's jurisdiction) and only reports taint
        arriving through names and calls.
        """
        if isinstance(expr, ast.Constant):
            if allow_direct and isinstance(expr.value, float):
                return TaintReason(f"the float literal {expr.value!r}",
                                   expr.lineno)
            return None
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Div):
                if allow_direct:
                    return TaintReason("true division (/)", expr.lineno)
                return None
            if isinstance(expr.op, (ast.FloorDiv, ast.RShift, ast.LShift,
                                    ast.BitAnd, ast.BitOr, ast.Mod)):
                return None  # integral by construction
            return (self._taint(func, expr.left, allow_direct)
                    or self._taint(func, expr.right, allow_direct))
        if isinstance(expr, ast.UnaryOp):
            return self._taint(func, expr.operand, allow_direct)
        if isinstance(expr, ast.IfExp):
            return (self._taint(func, expr.body, allow_direct)
                    or self._taint(func, expr.orelse, allow_direct))
        if isinstance(expr, ast.Call):
            return self._call_taint(func, expr, allow_direct)
        if isinstance(expr, ast.Name):
            local = self.tainted_locals[func.qualname].get(expr.id)
            if local is not None:
                return local
            param = self.tainted_params[func.qualname].get(expr.id)
            if param is not None:
                return param
            return None
        return None

    def _call_taint(self, func: FunctionInfo, call: ast.Call,
                    allow_direct: bool) -> Optional[TaintReason]:
        dotted = _dotted(call.func)
        simple = dotted.split(".")[-1] if "." not in dotted else dotted
        if dotted in _INT_FUNCS or simple in ("int", "round", "len"):
            return None
        if dotted in _FLOAT_FUNCS or dotted == "float":
            if allow_direct:
                return TaintReason(f"a {dotted}() conversion", call.lineno)
            return None
        if dotted in ("min", "max", "abs", "sum"):
            for arg in call.args:
                reason = self._taint(func, arg, allow_direct)
                if reason is not None:
                    return reason
            return None
        # resolved program function with a float-tainted return?
        for site in self.graph.calls_from(func.qualname):
            if site.node is call and site.kind == "call":
                callee = site.callee
                reason = self.returns_float.get(callee.qualname)
                if reason is not None:
                    return TaintReason(
                        f"a call to {callee.qualname}() which "
                        f"{reason.description} (line {reason.lineno})",
                        call.lineno)
        return None

    # ------------------------------------------------------------------
    # reporting

    def violations(self) -> List[Tuple[ScheduleSite, TaintReason]]:
        out = []
        for site in self.graph.schedule_sites:
            if site.cycle is None:
                continue
            reason = self._taint(site.caller, site.cycle,
                                 allow_direct=False)
            if reason is not None:
                out.append((site, reason))
        return out


def _bind_args(callee: FunctionInfo,
               call: ast.Call) -> List[Tuple[str, ast.expr]]:
    """Map call-site argument expressions onto callee parameter names."""
    params = callee.param_names()
    if callee.is_method and params and params[0] in ("self", "cls"):
        params = params[1:]
    bound: List[Tuple[str, ast.expr]] = []
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            bound.append((params[index], arg))
    names = set(params)
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in names:
            bound.append((keyword.arg, keyword.value))
    return bound
