"""Checkpoint/pickle safety (rules SIM013-SIM014).

The resilience subsystem's contract is that ``SimSystem.save_checkpoint``
pickles the *entire* simulator object graph and a resumed run is
bit-identical.  Two statically checkable properties keep that true:

**SIM013 -- slot-consistent reachable state.**  Every class whose
instances the checkpoint pickler can reach from a ``SimSystem`` must
declare ``__slots__`` (directly, or ``@dataclass(slots=True)``), and
every attribute the class ever assigns on ``self`` must appear in the
slot set of its MRO.  Slotless classes make the hot object graph bigger
and slower, and -- worse -- accept silent dynamic attributes that a
refactored resume path would drop; a slotted class assigning an
undeclared attribute is a straight ``AttributeError`` waiting in a cold
path.  Reachability is computed over inferred attribute types,
constructor annotations, classes instantiated inside reachable methods,
and the subclass closure (a ``scheduler: MemorySchedulerProtocol``
annotation pulls in every registered policy).

**SIM014 -- importable JobSpec callables.**  A ``JobSpec`` travels to
worker processes as a ``module:qualname`` string; lambdas, nested
functions and bound methods do not survive the trip.  Call sites whose
``fn`` argument cannot round-trip are flagged, and literal
``"module:qualname"`` strings naming a module inside the analyzed
program are verified to resolve to a module-level callable.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from .callgraph import CallGraph, JobSpecSite
from .symbols import ClassInfo, FunctionInfo, Program, _dotted

#: class names whose instances root the checkpoint object graph
CHECKPOINT_ROOTS = ("SimSystem",)

#: path components exempt from the slots discipline (driver-side code
#: that is never inside a checkpointed object graph)
SLOTS_EXEMPT_PARTS = frozenset({"experiments", "benchmarks", "analysis",
                                "tests"})

#: ancestors that make a class an exception type (always slotless-ok)
_EXCEPTION_SUFFIXES = ("Error", "Exception", "Warning", "Interrupt")

_CALLABLE_PATH = re.compile(r"^[A-Za-z_][\w.]*:[A-Za-z_]\w*$")


class SlotFinding(NamedTuple):
    cls: ClassInfo
    kind: str          # "missing-slots" | "inconsistent-slots"
    detail: str
    chain: List[str]   # root -> ... -> class (containment witness)


class JobSpecFinding(NamedTuple):
    site: JobSpecSite
    detail: str


# ----------------------------------------------------------------------
# SIM013: reachable-class slot discipline


class PickleReachability:
    """Closure of classes the checkpoint pickler can reach."""

    def __init__(self, program: Program, graph: CallGraph) -> None:
        self.program = program
        self.graph = graph
        #: class qualname -> (ClassInfo, containment chain from a root)
        self.reachable: Dict[str, Tuple[ClassInfo, List[str]]] = {}
        self._compute()

    def _compute(self) -> None:
        queue: List[ClassInfo] = []

        def add(cls: ClassInfo, chain: List[str]) -> None:
            if cls.qualname in self.reachable:
                return
            self.reachable[cls.qualname] = (cls, chain)
            queue.append(cls)

        for root_name in CHECKPOINT_ROOTS:
            for cls in self.program.classes_named(root_name):
                add(cls, [cls.qualname])
        # A scheduled bound method drags its whole instance into the
        # engine's pickled event queue -- the owning class is a root too.
        for callback, _site in self.graph.scheduled_callbacks():
            if callback.owner is not None:
                add(callback.owner,
                    [f"<event-queue>.{callback.qualname}",
                     callback.owner.qualname])

        while queue:
            cls = queue.pop(0)
            chain = self.reachable[cls.qualname][1]
            for neighbour in self._neighbours(cls):
                add(neighbour, chain + [neighbour.qualname])

    def _neighbours(self, cls: ClassInfo) -> Iterable[ClassInfo]:
        # 1. inferred instance-attribute types
        for attr_type in self.graph.attr_types.get(cls.qualname,
                                                   {}).values():
            yield attr_type
        # 2. program classes named in __init__ annotations (containers
        #    included: Sequence[SourceLimiter] reaches SourceLimiter)
        init = cls.methods.get("__init__")
        if init is not None:
            args = init.node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.annotation is not None:
                    yield from self.graph.annotation_classes(
                        cls.module, arg.annotation)
        # 2b. dataclass field annotations
        for annotation in cls.annotated_fields.values():
            if annotation is not None:
                yield from self.graph.annotation_classes(cls.module,
                                                         annotation)
        # 3. classes instantiated inside any method body
        for method in cls.methods.values():
            for created in self.graph.instantiations.get(
                    method.qualname, []):
                yield created
        # 4. subclass closure: anything substitutable for a reachable base
        yield from self.program.subclasses_of(cls)

    # ------------------------------------------------------------------

    def violations(self) -> List[SlotFinding]:
        out: List[SlotFinding] = []
        for qualname in sorted(self.reachable):
            cls, chain = self.reachable[qualname]
            if self._exempt(cls):
                continue
            if not cls.has_slots:
                out.append(SlotFinding(
                    cls, "missing-slots",
                    f"class {cls.name} is reachable from the "
                    f"{CHECKPOINT_ROOTS[0]} checkpoint graph but defines "
                    f"no __slots__; instances accept dynamic attributes "
                    f"a resume path can silently drop", chain))
                continue
            slots, all_known = self.program.mro_slots(cls)
            if not all_known:
                continue  # some ancestor grants __dict__; nothing to prove
            assigned = cls.assigned_attrs()
            declared = (slots | cls.class_attrs
                        | set(cls.annotated_fields)
                        | set(cls.methods) | self._inherited_names(cls))
            extra = sorted(assigned - declared)
            if extra:
                out.append(SlotFinding(
                    cls, "inconsistent-slots",
                    f"class {cls.name} has __slots__ but assigns "
                    f"attribute(s) {', '.join(extra)} not declared in any "
                    f"__slots__ along its MRO", chain))
        return out

    def _inherited_names(self, cls: ClassInfo) -> Set[str]:
        names: Set[str] = set()
        seen: Set[str] = set()
        stack = list(self.program.bases_of(cls))
        while stack:
            base = stack.pop()
            if base.qualname in seen:
                continue
            seen.add(base.qualname)
            names |= base.class_attrs | set(base.annotated_fields)
            names |= set(base.methods)
            stack.extend(self.program.bases_of(base))
        return names

    def _exempt(self, cls: ClassInfo) -> bool:
        parts = set(cls.module.module.parts)
        if parts & SLOTS_EXEMPT_PARTS:
            return True
        if any(name.split(".")[-1].endswith(_EXCEPTION_SUFFIXES)
               for name in cls.base_names):
            return True
        if cls.name.endswith(_EXCEPTION_SUFFIXES):
            return True
        # NamedTuple / Enum / Protocol subclasses manage their own state
        for name in cls.base_names:
            tail = name.split(".")[-1]
            if tail in ("NamedTuple", "Enum", "IntEnum", "StrEnum",
                        "Protocol", "ABC", "type"):
                return True
        return False


# ----------------------------------------------------------------------
# SIM014: importable JobSpec callables


def jobspec_violations(program: Program,
                       graph: CallGraph) -> List[JobSpecFinding]:
    out: List[JobSpecFinding] = []
    for site in graph.jobspec_sites:
        expr = site.fn_expr
        if expr is None:
            continue
        detail = _fn_expr_problem(program, site.caller, expr)
        if detail is not None:
            out.append(JobSpecFinding(site, detail))
    return out


def _fn_expr_problem(program: Program, caller: FunctionInfo,
                     expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Lambda):
        return ("a lambda cannot travel as module:qualname; workers "
                "cannot import it")
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _string_path_problem(program, expr.value)
    if isinstance(expr, ast.Name):
        # a nested def or a local lambda assignment?
        problem = _local_binding_problem(caller, expr.id)
        if problem is not None:
            return problem
        symbol = program.resolve(caller.module, expr.id)
        if isinstance(symbol, FunctionInfo) and symbol.is_method:
            return (f"{expr.id} is a method; workers can only import "
                    f"module-level callables")
        return None
    if isinstance(expr, ast.Attribute):
        dotted = _dotted(expr)
        parts = dotted.split(".")
        if parts[0] in ("self", "cls"):
            owner = caller.owner
            if len(parts) == 2 and owner is not None:
                if parts[1] in owner.methods:
                    return (f"{dotted} is a bound method; it cannot be "
                            f"imported by module:qualname in a worker")
                if _annotation_is_str(
                        owner.annotated_fields.get(parts[1])):
                    # a declared str field carries a module:qualname
                    # path, not a callable -- resolve_callable() checks
                    # the path itself at runtime
                    return None
            return (f"{dotted} is a bound method; it cannot be imported "
                    f"by module:qualname in a worker")
        symbol = program.resolve(caller.module, dotted)
        if isinstance(symbol, FunctionInfo) and symbol.is_method:
            return (f"{dotted} resolves to a method, not a module-level "
                    f"callable")
        return None
    return None


def _annotation_is_str(annotation: Optional[ast.expr]) -> bool:
    """True for ``str`` and ``Optional[str]`` annotations."""
    if isinstance(annotation, ast.Name):
        return annotation.id == "str"
    if isinstance(annotation, ast.Constant):
        return annotation.value == "str"
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _annotation_is_str(annotation.slice)
    return False


def _local_binding_problem(caller: FunctionInfo,
                           name: str) -> Optional[str]:
    for node in ast.walk(caller.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not caller.node and node.name == name:
            return (f"{name} is a nested function; it has no importable "
                    f"module:qualname and may capture closure state")
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == name
                        for t in node.targets) \
                and isinstance(node.value, ast.Lambda):
            return f"{name} is bound to a lambda; workers cannot import it"
    return None


def _string_path_problem(program: Program, path: str) -> Optional[str]:
    if ":" not in path:
        return (f"callable path {path!r} is malformed (expected "
                f"'module:qualname')")
    if not _CALLABLE_PATH.match(path):
        return (f"callable path {path!r} cannot name a module-level "
                f"callable")
    module_name, _, qualname = path.partition(":")
    module = program.modules.get(module_name)
    if module is None:
        return None  # external module: not statically checkable
    if qualname in module.functions or qualname in module.classes:
        return None
    return (f"{module_name} defines no module-level callable "
            f"{qualname!r}; resolve_callable() will fail in the worker")
