"""Whole-program symbol table: modules, classes, functions, imports.

The table is built from source text alone (``ast.parse``; the analyzed
code is never imported), mirroring the simlint guarantee that linting a
broken or hostile tree is always safe.  Each parsed file becomes a
:class:`ModuleInfo` carrying its dotted module name, import aliases, and
the classes/functions defined at module scope; :class:`Program` owns the
set and answers the resolution queries every later pass is built on:
"what does the name ``MittsShaper`` mean inside ``repro.cloud.vm``?".

Nested functions and lambdas deliberately do *not* get symbols of their
own: callers cannot name them, so the passes treat their bodies as part
of the enclosing function.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..linter import Linter, Module

Symbol = Union["ModuleInfo", "ClassInfo", "FunctionInfo"]


class FunctionInfo:
    """One module-level function or class method."""

    __slots__ = ("qualname", "name", "module", "node", "owner")

    def __init__(self, qualname: str, name: str, module: "ModuleInfo",
                 node: ast.AST, owner: Optional["ClassInfo"] = None) -> None:
        self.qualname = qualname      # "pkg.mod.func" / "pkg.mod.Cls.meth"
        self.name = name
        self.module = module
        self.node = node              # FunctionDef | AsyncFunctionDef
        self.owner = owner            # defining class, if a method

    @property
    def is_method(self) -> bool:
        return self.owner is not None

    def param_names(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args
                 + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<func {self.qualname}>"


class ClassInfo:
    """One class: methods, base names, ``__slots__``, assigned attrs."""

    __slots__ = ("qualname", "name", "module", "node", "base_names",
                 "methods", "slots", "is_dataclass", "dataclass_slots",
                 "annotated_fields", "class_attrs", "decorator_names")

    def __init__(self, qualname: str, name: str, module: "ModuleInfo",
                 node: ast.ClassDef) -> None:
        self.qualname = qualname
        self.name = name
        self.module = module
        self.node = node
        #: raw dotted base-class names, resolved lazily via the program
        self.base_names: List[str] = [_dotted(b) for b in node.bases]
        self.methods: Dict[str, FunctionInfo] = {}
        #: names in __slots__, or None when the class defines no __slots__
        self.slots: Optional[Set[str]] = None
        self.is_dataclass = False
        self.dataclass_slots = False
        #: class-level annotated names (dataclass fields, declared attrs)
        self.annotated_fields: Dict[str, Optional[ast.expr]] = {}
        #: plain class-level assignments (constants, registries, ...)
        self.class_attrs: Set[str] = set()
        self.decorator_names: List[str] = [_dotted(d)
                                           for d in node.decorator_list]
        self._scan_body()

    def _scan_body(self) -> None:
        for deco in self.node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target)
            if name.split(".")[-1] == "dataclass":
                self.is_dataclass = True
                if isinstance(deco, ast.Call):
                    for kw in deco.keywords:
                        if (kw.arg == "slots"
                                and isinstance(kw.value, ast.Constant)
                                and kw.value.value is True):
                            self.dataclass_slots = True
        for stmt in self.node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__slots__":
                        self.slots = _slot_names(stmt.value)
                    else:
                        self.class_attrs.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                if stmt.target.id == "__slots__" and stmt.value is not None:
                    self.slots = _slot_names(stmt.value)
                else:
                    self.annotated_fields[stmt.target.id] = stmt.annotation

    @property
    def has_slots(self) -> bool:
        return self.slots is not None or self.dataclass_slots

    def assigned_attrs(self) -> Set[str]:
        """Attributes ever assigned as ``self.x = ...`` in a method."""
        names: Set[str] = set()
        for method in self.methods.values():
            self_name = _self_param(method)
            if self_name is None:
                continue
            for node in ast.walk(method.node):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == self_name):
                        names.add(target.attr)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<class {self.qualname}>"


class ModuleInfo:
    """One parsed source file plus its name-resolution context."""

    __slots__ = ("name", "module", "imports", "functions", "classes",
                 "global_assigns")

    def __init__(self, name: str, module: Module) -> None:
        self.name = name              # dotted module name
        self.module = module          # the linter's Module (path/tree/lines)
        #: local alias -> fully dotted target ("pkg.mod" or "pkg.mod.attr")
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module-level ``NAME = ...`` assignments (registries, constants)
        self.global_assigns: Dict[str, ast.expr] = {}
        self._collect()

    @property
    def path(self) -> str:
        return self.module.path

    def _collect(self) -> None:
        # Imports are collected from the whole tree, not just module
        # scope: the codebase defers cycle-prone imports into functions
        # (``from .noc import MeshNoc`` inside ``__init__``) and those
        # names must still resolve.  Folding them into one module-level
        # alias map is a harmless over-approximation.
        for stmt in ast.walk(self.module.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.imports.setdefault(local, target)
            elif isinstance(stmt, ast.ImportFrom):
                base = self._resolve_from(stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports.setdefault(
                        local,
                        f"{base}.{alias.name}" if base else alias.name)
        for stmt in self.module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{self.name}.{stmt.name}"
                self.functions[stmt.name] = FunctionInfo(
                    qualname, stmt.name, self, stmt)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{self.name}.{stmt.name}"
                info = ClassInfo(qualname, stmt.name, self, stmt)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        method = FunctionInfo(
                            f"{qualname}.{sub.name}", sub.name, self, sub,
                            owner=info)
                        info.methods[sub.name] = method
                self.classes[stmt.name] = info
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.global_assigns[target.id] = stmt.value

    def _resolve_from(self, stmt: ast.ImportFrom) -> str:
        """Absolute dotted base of a ``from X import ...`` statement."""
        if stmt.level == 0:
            return stmt.module or ""
        # relative import: peel `level` components off this module's
        # package (a module's package is its name minus the last part).
        parts = self.name.split(".")
        base_parts = parts[:-stmt.level] if stmt.level <= len(parts) else []
        if stmt.module:
            base_parts.append(stmt.module)
        return ".".join(base_parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<module {self.name} ({self.path})>"


class Program:
    """All parsed modules of one analysis run, with name resolution."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        #: every function/method by qualified name
        self.functions: Dict[str, FunctionInfo] = {}
        #: simple class name -> defining classes (usually one)
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        for module in sorted(self.modules.values(),
                             key=lambda m: m.name):
            for func in sorted(module.functions.values(),
                               key=lambda f: f.qualname):
                self.functions[func.qualname] = func
            for cls in sorted(module.classes.values(),
                              key=lambda c: c.qualname):
                self.classes_by_name.setdefault(cls.name, []).append(cls)
                for method in sorted(cls.methods.values(),
                                     key=lambda m: m.qualname):
                    self.functions[method.qualname] = method

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def from_files(cls, files: Sequence[str]) -> "Program":
        sources = {}
        for path in files:
            with open(path, "r", encoding="utf-8",
                      errors="replace") as handle:
                sources[path] = handle.read()
        return cls.from_sources(sources)

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Program":
        """Build a program from ``{path: source}`` (the test entry point).

        Files that fail to parse are skipped here; the per-file linter
        already reports them as SIM000.
        """
        modules: List[ModuleInfo] = []
        for path, source in sorted(sources.items()):
            display = path.replace(os.sep, "/")
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            module = Module(path=display, tree=tree,
                            lines=source.splitlines())
            modules.append(ModuleInfo(module_name_for(display), module))
        return cls(modules)

    @classmethod
    def from_paths(cls, paths: Sequence[str]) -> "Program":
        return cls.from_files(Linter.discover(paths))

    # ------------------------------------------------------------------
    # resolution

    def resolve_dotted(self, dotted: str) -> Optional[Symbol]:
        """Resolve an absolute dotted name to a module/class/function."""
        if dotted in self.modules:
            return self.modules[dotted]
        module_name, _, attr = dotted.rpartition(".")
        if not module_name:
            return None
        owner = self.modules.get(module_name)
        if owner is not None:
            return (owner.classes.get(attr) or owner.functions.get(attr)
                    or None)
        # could be module.Class.attr (e.g. an imported nested name)
        outer = self.resolve_dotted(module_name)
        if isinstance(outer, ClassInfo):
            return outer.methods.get(attr)
        return None

    def resolve(self, module: ModuleInfo,
                dotted: str) -> Optional[Symbol]:
        """Resolve ``dotted`` as written inside ``module``."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is not None:
            absolute = f"{target}.{rest}" if rest else target
            resolved = self.resolve_dotted(absolute)
            if resolved is not None:
                return resolved
            # ``import pkg`` followed by ``pkg.sub.attr``: retry treating
            # progressively longer prefixes as the module name.
            return self.resolve_dotted(absolute)
        if not rest:
            return (module.classes.get(head) or module.functions.get(head)
                    or None)
        local = module.classes.get(head)
        if local is not None:
            return local.methods.get(rest)
        return self.resolve_dotted(dotted)

    def resolve_class(self, module: ModuleInfo,
                      dotted: str) -> Optional[ClassInfo]:
        symbol = self.resolve(module, dotted)
        return symbol if isinstance(symbol, ClassInfo) else None

    # ------------------------------------------------------------------
    # class hierarchy

    def bases_of(self, cls: ClassInfo) -> List[ClassInfo]:
        bases = []
        for name in cls.base_names:
            base = self.resolve_class(cls.module, name)
            if base is not None:
                bases.append(base)
        return bases

    def mro_slots(self, cls: ClassInfo) -> Tuple[Optional[Set[str]], bool]:
        """(union of ``__slots__`` over known ancestors, all_known).

        ``all_known`` is False when some ancestor either lives outside
        the program or lacks ``__slots__`` -- in both cases instances may
        carry a ``__dict__`` and slot-consistency cannot be decided.
        """
        slots: Set[str] = set()
        all_known = True
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if current.slots is not None:
                slots |= current.slots
            elif current.dataclass_slots:
                slots |= set(current.annotated_fields)
            else:
                all_known = False
            for name in current.base_names:
                base = self.resolve_class(current.module, name)
                if base is None:
                    # Unknown external bases: object and Exception-family
                    # roots contribute no __dict__-free guarantees.
                    if name.split(".")[-1] not in ("object",):
                        all_known = False
                else:
                    stack.append(base)
        return slots, all_known

    def subclasses_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """Program classes that (transitively) inherit from ``cls``."""
        out: List[ClassInfo] = []
        for module in self.modules.values():
            for candidate in module.classes.values():
                if candidate is cls:
                    continue
                if self._inherits(candidate, cls, set()):
                    out.append(candidate)
        return out

    def _inherits(self, cls: ClassInfo, ancestor: ClassInfo,
                  seen: Set[str]) -> bool:
        if cls.qualname in seen:
            return False
        seen.add(cls.qualname)
        for base in self.bases_of(cls):
            if base is ancestor or self._inherits(base, ancestor, seen):
                return True
        return False

    # ------------------------------------------------------------------
    # lookups used by the passes

    def classes(self) -> Iterable[ClassInfo]:
        for module in self.modules.values():
            yield from module.classes.values()

    def all_functions(self) -> Iterable[FunctionInfo]:
        return self.functions.values()

    def classes_named(self, name: str) -> List[ClassInfo]:
        return list(self.classes_by_name.get(name, ()))

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        for module in self.modules.values():
            if module.path == path:
                return module
        return None


# ----------------------------------------------------------------------
# helpers


def _dotted(node: ast.expr) -> str:
    """Dotted name of an expression, best effort (``a.b.c`` -> "a.b.c")."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Subscript):
        # Optional[X] / List[X] heads resolve through their value
        return _dotted(node.value)
    return ".".join(reversed(parts))


def _slot_names(expr: ast.expr) -> Set[str]:
    names: Set[str] = set()
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return {expr.value}
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for element in expr.elts:
            if isinstance(element, ast.Constant) and isinstance(
                    element.value, str):
                names.add(element.value)
    return names


def _self_param(method: FunctionInfo) -> Optional[str]:
    node = method.node
    for deco in node.decorator_list:
        if isinstance(deco, ast.Name) and deco.id == "staticmethod":
            return None
    args = node.args.posonlyargs + node.args.args
    if not args:
        return None
    return args[0].arg


def module_name_for(path: str) -> str:
    """Dotted module name of a file path.

    Recognises ``src``-layout roots (``src/repro/sim/engine.py`` ->
    ``repro.sim.engine``); for loose files the stem is the module name.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for marker in ("src", "lib"):
        if marker in parts:
            index = len(parts) - 1 - parts[::-1].index(marker)
            tail = parts[index + 1:]
            if tail:
                return ".".join(tail)
    # fall back: the longest suffix starting at a known top-level package
    for anchor in ("repro", "tests"):
        if anchor in parts:
            index = parts.index(anchor)
            return ".".join(parts[index:])
    return ".".join(parts[-1:]) if parts else path
