"""simflow: whole-program effect & dataflow analysis.

simlint (:mod:`repro.analysis.rules`) proves determinism properties one
file at a time; anything reached *through a call chain* -- a wall-clock
read two helpers deep, a float that becomes a cycle count in the caller,
a class the checkpoint pickler visits -- is invisible to it.  simflow is
the interprocedural counterpart: it parses every module under a root into
a symbol table (:mod:`~repro.analysis.flow.symbols`), builds a call graph
that understands the codebase's idioms -- pre-bound callbacks handed to
``Engine.schedule``/``schedule_in``/``SimSystem.every``, classes whose
instances are scheduled as callables, ``module:qualname`` JobSpec strings
(:mod:`~repro.analysis.flow.callgraph`) -- and runs three interprocedural
passes over it:

* **effect inference** (:mod:`~repro.analysis.flow.effects`, SIM009-011):
  classify each function's transitive effects (wall clock, unseeded RNG,
  ambient env/filesystem/global state) and fail when a nondeterministic
  effect is reachable from ``SimSystem.run`` or any scheduled callback,
  except through the pragma'd ``repro/runner/wallclock.py``;
* **cycle-units dataflow** (:mod:`~repro.analysis.flow.cycles`, SIM012):
  track float-ness of values flowing into ``when``/``delay`` arguments
  across calls -- the interprocedural SIM003/SIM007;
* **serialization safety** (:mod:`~repro.analysis.flow.pickles`,
  SIM013-014): every class reachable from the ``SimSystem`` checkpoint
  graph must carry ``__slots__``-consistent state, and every JobSpec
  callable must be importable by ``module:qualname``.

Run it behind the existing CLI::

    python -m repro.analysis --whole-program src
    python -m repro.analysis --whole-program src --format json

Findings reuse the simlint machinery end to end: the same
:class:`~repro.analysis.findings.Finding` type, ``# simlint:
disable=SIM0xx`` pragmas, and the versioned baseline file.
"""

from __future__ import annotations

from .callgraph import CallGraph
from .driver import ProgramRule, analyze_paths, analyze_sources
from .symbols import Program

__all__ = [
    "CallGraph",
    "Program",
    "ProgramRule",
    "analyze_paths",
    "analyze_sources",
]
