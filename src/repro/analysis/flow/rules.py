"""Whole-program rules SIM009-SIM014.

Thin adapters from the analysis passes (:mod:`effects`, :mod:`cycles`,
:mod:`pickles`) to :class:`~repro.analysis.findings.Finding` objects.
Each finding is anchored at the *defect* (the effectful call, the
schedule site, the class statement), with the interprocedural witness
chain in the message so a reader can see why a line nowhere near a
simulator is being blamed for breaking one.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding, Severity
from ..registry import rule
from .driver import ProgramContext, ProgramRule
from .effects import AMBIENT, RNG, WALLCLOCK
from .pickles import jobspec_violations


class _EffectRule(ProgramRule):
    """Shared reporting for the three effect kinds."""

    kind = ""

    def check_program(self, context: ProgramContext) -> Iterable[Finding]:
        for site, chain in context.effects.violations():
            if site.kind != self.kind:
                continue
            witness = " -> ".join(chain) if chain else site.func_qualname
            yield Finding(
                rule=self.id, severity=self.severity, path=site.path,
                line=site.lineno, col=1,
                message=(f"{site.description}; reachable from a "
                         f"simulation root via {witness}"),
                fix_hint=self.fix_hint,
                snippet=context.snippet(site.path, site.lineno),
                end_line=site.end_lineno)


@rule
class WallClockReachableRule(_EffectRule):
    id = "SIM009"
    severity = Severity.ERROR
    title = "wall-clock read reachable from a simulation root"
    fix_hint = ("route timing through repro.runner.wallclock, or take "
                "cycles from the engine")
    kind = WALLCLOCK


@rule
class UnseededRngReachableRule(_EffectRule):
    id = "SIM010"
    severity = Severity.ERROR
    title = "unseeded/global RNG reachable from a simulation root"
    fix_hint = ("thread a seeded random.Random(seed) from the config "
                "into every stochastic component")
    kind = RNG


@rule
class AmbientStateReachableRule(_EffectRule):
    id = "SIM011"
    severity = Severity.ERROR
    title = "ambient environment access reachable from a simulation root"
    fix_hint = ("read env/files in the driver layer and pass values in; "
                "make module globals immutable")
    kind = AMBIENT


@rule
class InterproceduralCycleTaintRule(ProgramRule):
    id = "SIM012"
    severity = Severity.ERROR
    title = "schedule cycle argument float-tainted through dataflow"
    fix_hint = ("convert at the source with // or "
                "repro.dram.timing helpers so the schedule site "
                "receives an int")

    def check_program(self, context: ProgramContext) -> Iterable[Finding]:
        for site, reason in context.cycles.violations():
            path = site.caller.module.path
            yield Finding(
                rule=self.id, severity=self.severity, path=path,
                line=site.node.lineno, col=site.node.col_offset + 1,
                message=(f"cycle argument of {site.name}() in "
                         f"{site.caller.qualname} is float-tainted "
                         f"through dataflow: {reason.description} "
                         f"(line {reason.lineno})"),
                fix_hint=self.fix_hint,
                snippet=context.snippet(path, site.node.lineno),
                end_line=(site.node.end_lineno or 0))


@rule
class CheckpointSlotsRule(ProgramRule):
    id = "SIM013"
    severity = Severity.WARNING
    title = "checkpoint-reachable class with missing/inconsistent __slots__"
    fix_hint = ("declare __slots__ (or @dataclass(slots=True)) covering "
                "every attribute the class assigns")

    def check_program(self, context: ProgramContext) -> Iterable[Finding]:
        for slot_finding in context.pickles.violations():
            cls = slot_finding.cls
            chain = " -> ".join(slot_finding.chain)
            yield Finding(
                rule=self.id, severity=self.severity,
                path=cls.module.path, line=cls.node.lineno, col=1,
                message=f"{slot_finding.detail} (reached via {chain})",
                fix_hint=self.fix_hint,
                snippet=context.snippet(cls.module.path, cls.node.lineno),
                end_line=0)


@rule
class JobSpecImportabilityRule(ProgramRule):
    id = "SIM014"
    severity = Severity.ERROR
    title = "JobSpec callable not importable by module:qualname"
    fix_hint = ("pass a module-level function (or its 'module:qualname' "
                "string); lift lambdas and methods to module scope")

    def check_program(self, context: ProgramContext) -> Iterable[Finding]:
        for job_finding in jobspec_violations(context.program,
                                              context.graph):
            site = job_finding.site
            path = site.caller.module.path
            yield Finding(
                rule=self.id, severity=self.severity, path=path,
                line=site.node.lineno, col=site.node.col_offset + 1,
                message=(f"JobSpec callable in {site.caller.qualname} "
                         f"cannot round-trip to a worker: "
                         f"{job_finding.detail}"),
                fix_hint=self.fix_hint,
                snippet=context.snippet(path, site.node.lineno),
                end_line=(site.node.end_lineno or 0))
