"""Whole-program analysis driver.

Builds the expensive shared state -- symbol table, call graph, the three
analyses -- exactly once per run (:class:`ProgramContext`), hands it to
every registered :class:`ProgramRule`, then applies the same pragma
suppression the per-file linter uses and returns findings sorted by
location.

``ProgramRule`` subclasses the per-file :class:`~repro.analysis.registry.Rule`
so the existing registry, ``--list-rules`` and ``--select`` machinery see
the whole-program rules with zero changes; their per-file ``check`` is a
no-op, so a plain ``Linter`` run is unaffected.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..findings import Finding
from ..registry import Rule, all_rules
from .callgraph import CallGraph
from .cycles import CycleTaintAnalysis
from .effects import EffectAnalysis
from .pickles import PickleReachability
from .symbols import Program


class ProgramContext:
    """One run's shared analysis state.

    The call graph is built eagerly (everything needs it); the three
    passes are built lazily so ``--select SIM012`` does not pay for the
    effect fixpoint.
    """

    __slots__ = ("program", "graph", "_effects", "_cycles", "_pickles")

    def __init__(self, program: Program) -> None:
        self.program = program
        self.graph = CallGraph(program)
        self._effects: Optional[EffectAnalysis] = None
        self._cycles: Optional[CycleTaintAnalysis] = None
        self._pickles: Optional[PickleReachability] = None

    @property
    def effects(self) -> EffectAnalysis:
        if self._effects is None:
            self._effects = EffectAnalysis(self.program, self.graph)
        return self._effects

    @property
    def cycles(self) -> CycleTaintAnalysis:
        if self._cycles is None:
            self._cycles = CycleTaintAnalysis(self.program, self.graph)
        return self._cycles

    @property
    def pickles(self) -> PickleReachability:
        if self._pickles is None:
            self._pickles = PickleReachability(self.program, self.graph)
        return self._pickles

    def snippet(self, path: str, line: int) -> str:
        """Stripped source line for fingerprinting, '' when unknown."""
        module = self.program.module_for_path(path)
        if module is None:
            return ""
        lines = module.module.lines
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""


class ProgramRule(Rule):
    """A rule that sees the whole :class:`Program` at once.

    ``check`` (the per-file hook) yields nothing so the plain linter
    skips these; the driver calls :meth:`check_program` instead.
    """

    #: marker the CLI uses to partition rule listings
    whole_program = True

    def check(self, module) -> Iterable[Finding]:
        return iter(())

    def check_program(self, context: ProgramContext) -> Iterable[Finding]:
        raise NotImplementedError


def program_rules(select: Optional[Set[str]] = None) -> List[ProgramRule]:
    """Registered whole-program rules, optionally narrowed to ``select``."""
    rules = [r for r in all_rules() if isinstance(r, ProgramRule)]
    if select is not None:
        rules = [r for r in rules if r.id in select]
    return rules


def analyze_program(program: Program,
                    select: Optional[Set[str]] = None) -> List[Finding]:
    """Run every (selected) whole-program rule over ``program``."""
    context = ProgramContext(program)
    findings: List[Finding] = []
    for rule_instance in program_rules(select):
        findings.extend(rule_instance.check_program(context))
    kept: List[Finding] = []
    for finding in findings:
        module = program.module_for_path(finding.path)
        if module is not None and module.module.suppressed(finding):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    return kept


def analyze_sources(sources: Dict[str, str],
                    select: Optional[Set[str]] = None) -> List[Finding]:
    """Analyze in-memory ``{path: source}`` (the test entry point)."""
    return analyze_program(Program.from_sources(sources), select)


def analyze_paths(paths: Sequence[str],
                  select: Optional[Set[str]] = None) -> List[Finding]:
    """Discover ``.py`` files under ``paths`` and analyze them together."""
    return analyze_program(Program.from_paths(paths), select)
