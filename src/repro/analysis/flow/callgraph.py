"""Idiom-aware call graph over a :class:`~repro.analysis.flow.symbols.Program`.

Resolution is deliberately *typed* rather than name-matched: ``x.select(...)``
only links to ``AtlasScheduler.select`` when the analysis can see that ``x``
holds an ``AtlasScheduler`` -- through a constructor call, an annotated
parameter, or a ``self.x = Cls(...)`` assignment somewhere in the class.
That keeps the graph precise enough that reachability findings are real.

Beyond plain calls the builder understands the codebase's callback idioms:

* a function *reference* passed as an argument (``engine.schedule(when,
  self.llc.lookup, req)``) produces a ``callback`` edge from the caller;
* an instance of a class defining ``__call__`` passed as an argument
  (``engine.schedule_in(p, _PeriodicCallback(...))``) links to its
  ``__call__``;
* lambdas and nested ``def``\\ s have no symbols of their own -- their
  bodies are analyzed as part of the enclosing function;
* calls to ``schedule``/``schedule_in``/``every`` are additionally
  recorded as *schedule sites* (cycle argument + scheduled callbacks),
  the roots and sinks of the effect and cycle-unit passes;
* ``JobSpec.create``/``JobSpec(...)`` call sites are collected for the
  serialization-safety pass.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .symbols import (ClassInfo, FunctionInfo, ModuleInfo, Program, _dotted,
                      _self_param)

#: engine/scheduler methods that run their callback later, in event order
SCHEDULE_NAMES = frozenset({"schedule", "schedule_in", "every"})
#: of those, the ones whose first argument is a cycle count
CYCLE_ARG_NAMES = frozenset({"schedule", "schedule_in", "every"})


class CallSite:
    """One resolved edge: ``caller`` invokes (or schedules) ``callee``."""

    __slots__ = ("caller", "callee", "node", "kind")

    def __init__(self, caller: FunctionInfo, callee: FunctionInfo,
                 node: ast.AST, kind: str) -> None:
        self.caller = caller
        self.callee = callee
        self.node = node
        self.kind = kind              # "call" | "callback"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{self.kind} {self.caller.qualname} -> "
                f"{self.callee.qualname}>")


class ScheduleSite:
    """One ``schedule``/``schedule_in``/``every`` call."""

    __slots__ = ("caller", "node", "cycle", "callbacks", "name")

    def __init__(self, caller: FunctionInfo, node: ast.Call,
                 cycle: Optional[ast.expr],
                 callbacks: List[FunctionInfo], name: str) -> None:
        self.caller = caller
        self.node = node
        self.cycle = cycle
        self.callbacks = callbacks
        self.name = name


class JobSpecSite:
    """One ``JobSpec.create(...)`` / ``JobSpec(...)`` call."""

    __slots__ = ("caller", "node", "fn_expr", "via_create")

    def __init__(self, caller: FunctionInfo, node: ast.Call,
                 fn_expr: Optional[ast.expr], via_create: bool) -> None:
        self.caller = caller
        self.node = node
        self.fn_expr = fn_expr
        self.via_create = via_create


class CallGraph:
    """Edges, schedule sites, and per-class attribute types."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.sites: List[CallSite] = []
        self._out: Dict[str, List[CallSite]] = {}
        self._in: Dict[str, List[CallSite]] = {}
        self.schedule_sites: List[ScheduleSite] = []
        self.jobspec_sites: List[JobSpecSite] = []
        #: class qualname -> {attr: ClassInfo} inferred instance types
        self.attr_types: Dict[str, Dict[str, ClassInfo]] = {}
        #: caller qualname -> classes instantiated in its body
        self.instantiations: Dict[str, List[ClassInfo]] = {}
        self._infer_attr_types()
        for func in list(program.all_functions()):
            self._walk_function(func)

    # ------------------------------------------------------------------
    # public queries

    def calls_from(self, qualname: str) -> List[CallSite]:
        return self._out.get(qualname, [])

    def callers_of(self, qualname: str) -> List[CallSite]:
        return self._in.get(qualname, [])

    def scheduled_callbacks(self) -> List[Tuple[FunctionInfo, ScheduleSite]]:
        """Every (callback, site) pair scheduled anywhere in the program."""
        out = []
        for site in self.schedule_sites:
            for callback in site.callbacks:
                out.append((callback, site))
        return out

    def reachable_from(self, roots: Iterable[FunctionInfo]
                       ) -> Dict[str, Tuple[FunctionInfo,
                                            Optional[CallSite]]]:
        """BFS closure over call+callback edges.

        Returns ``{qualname: (function, entering_site)}`` where
        ``entering_site`` is the edge that first reached the function
        (``None`` for roots) -- enough to reconstruct a witness path.
        """
        seen: Dict[str, Tuple[FunctionInfo, Optional[CallSite]]] = {}
        queue: List[FunctionInfo] = []
        for root in roots:
            if root.qualname not in seen:
                seen[root.qualname] = (root, None)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for site in self.calls_from(current.qualname):
                callee = site.callee
                if callee.qualname not in seen:
                    seen[callee.qualname] = (callee, site)
                    queue.append(callee)
        return seen

    def witness_path(self, reachable: Dict[str, Tuple[FunctionInfo,
                                                      Optional[CallSite]]],
                     qualname: str) -> List[str]:
        """Root-to-function chain of qualnames for diagnostics."""
        chain: List[str] = []
        current: Optional[str] = qualname
        guard = 0
        while current is not None and guard < 1000:
            guard += 1
            chain.append(current)
            entry = reachable.get(current)
            if entry is None or entry[1] is None:
                break
            current = entry[1].caller.qualname
        return list(reversed(chain))

    # ------------------------------------------------------------------
    # attribute-type inference (phase 1)

    def _infer_attr_types(self) -> None:
        for cls in self.program.classes():
            types: Dict[str, ClassInfo] = {}
            for name, annotation in cls.annotated_fields.items():
                inferred = self._annotation_class(cls.module, annotation)
                if inferred is not None:
                    types[name] = inferred
            for method in cls.methods.values():
                self_name = _self_param(method)
                if self_name is None:
                    continue
                params = _annotated_params(self.program, method)
                for node in ast.walk(method.node):
                    target = None
                    value = None
                    if isinstance(node, ast.Assign) and len(
                            node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == self_name):
                        continue
                    inferred = None
                    if (isinstance(node, ast.AnnAssign)
                            and node.annotation is not None):
                        inferred = self._annotation_class(cls.module,
                                                          node.annotation)
                    if inferred is None and value is not None:
                        inferred = self._rhs_class(cls.module, value, params)
                    if inferred is not None:
                        types.setdefault(target.attr, inferred)
            self.attr_types[cls.qualname] = types

    def _annotation_class(self, module: ModuleInfo,
                          annotation: Optional[ast.expr]
                          ) -> Optional[ClassInfo]:
        if annotation is None:
            return None
        for cls in self.annotation_classes(module, annotation):
            return cls
        return None

    def annotation_classes(self, module: ModuleInfo,
                           annotation: ast.expr) -> List[ClassInfo]:
        """Every program class referenced anywhere in an annotation
        (handles ``Optional[X]``, ``List[X]``, ``"X"`` strings, unions)."""
        found: List[ClassInfo] = []
        stack: List[ast.expr] = [annotation]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Constant) and isinstance(node.value,
                                                             str):
                cls = self.program.resolve_class(module, node.value)
                if cls is not None:
                    found.append(cls)
                continue
            if isinstance(node, (ast.Name, ast.Attribute)):
                cls = self.program.resolve_class(module, _dotted(node))
                if cls is not None:
                    found.append(cls)
                continue
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    stack.append(child)
        return found

    def _rhs_class(self, module: ModuleInfo, value: ast.expr,
                   params: Dict[str, ClassInfo]) -> Optional[ClassInfo]:
        """Type of an assignment RHS: ``Cls(...)``, a typed param, or a
        list/comprehension of either."""
        if isinstance(value, ast.Call):
            cls = self.program.resolve_class(module, _dotted(value.func))
            return cls
        if isinstance(value, ast.Name):
            return params.get(value.id)
        if isinstance(value, (ast.List, ast.Tuple)) and value.elts:
            return self._rhs_class(module, value.elts[0], params)
        if isinstance(value, ast.ListComp):
            return self._rhs_class(module, value.elt, params)
        return None

    # ------------------------------------------------------------------
    # expression typing (phase 2, per function)

    def _type_of(self, func: FunctionInfo, expr: ast.expr,
                 env: Dict[str, ClassInfo]) -> Optional[ClassInfo]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self._type_of(func, expr.value, env)
            if owner is not None:
                attr_type = self._class_attr_type(owner, expr.attr)
                if attr_type is not None:
                    return attr_type
            symbol = self.program.resolve(func.module, _dotted(expr))
            if isinstance(symbol, ClassInfo):
                return symbol
            return None
        if isinstance(expr, ast.Call):
            target = self._callable_symbol(func, expr.func, env)
            if isinstance(target, ClassInfo):
                return target
            return None
        return None

    def _class_attr_type(self, cls: ClassInfo,
                         attr: str) -> Optional[ClassInfo]:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            found = self.attr_types.get(current.qualname, {}).get(attr)
            if found is not None:
                return found
            stack.extend(self.program.bases_of(current))
        return None

    def _method_of(self, cls: ClassInfo,
                   name: str) -> Optional[FunctionInfo]:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            method = current.methods.get(name)
            if method is not None:
                return method
            stack.extend(self.program.bases_of(current))
        return None

    def _callable_symbol(self, func: FunctionInfo, target: ast.expr,
                         env: Dict[str, ClassInfo]):
        """The FunctionInfo/ClassInfo a call target resolves to, if any."""
        if isinstance(target, ast.Name):
            local = env.get(target.id)
            if local is not None:
                # calling an instance -> its __call__
                return self._method_of(local, "__call__") or local
            return self.program.resolve(func.module, target.id)
        if isinstance(target, ast.Attribute):
            value_type = self._type_of(func, target.value, env)
            if value_type is not None:
                method = self._method_of(value_type, target.attr)
                if method is not None:
                    return method
            if (isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and func.owner is not None):
                return self._method_of(func.owner, target.attr)
            return self.program.resolve(func.module, _dotted(target))
        return None

    # ------------------------------------------------------------------
    # phase 2: walk every function body

    def _walk_function(self, func: FunctionInfo) -> None:
        env: Dict[str, ClassInfo] = _annotated_params(self.program, func)
        if func.owner is not None:
            self_name = _self_param(func)
            if self_name is not None:
                env[self_name] = func.owner
        # flow-insensitive local types: any `x = Cls(...)` / `x = typed`
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                inferred = self._type_of(func, node.value, env)
                if inferred is not None:
                    env.setdefault(node.targets[0].id, inferred)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                self._record_call(func, node, env)

    def _record_call(self, func: FunctionInfo, node: ast.Call,
                     env: Dict[str, ClassInfo]) -> None:
        target = self._callable_symbol(func, node.func, env)
        if isinstance(target, ClassInfo):
            self.instantiations.setdefault(func.qualname, []).append(target)
            init = self._method_of(target, "__init__")
            if init is not None:
                self._add_edge(func, init, node, "call")
        elif isinstance(target, FunctionInfo):
            self._add_edge(func, target, node, "call")

        callee_name = node.func.attr if isinstance(node.func,
                                                   ast.Attribute) else (
            node.func.id if isinstance(node.func, ast.Name) else "")

        # JobSpec sites (by name: the class need not be resolvable)
        dotted = _dotted(node.func)
        if dotted.endswith("JobSpec.create") or dotted == "JobSpec" \
                or dotted.endswith(".JobSpec"):
            self.jobspec_sites.append(JobSpecSite(
                func, node, _jobspec_fn_expr(node,
                                             dotted.endswith("create")),
                dotted.endswith("create")))

        # callback arguments -> "callback" edges
        callbacks: List[FunctionInfo] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            resolved = self._callback_target(func, arg, env)
            if resolved is not None:
                callbacks.append(resolved)
                self._add_edge(func, resolved, node, "callback")

        if callee_name in SCHEDULE_NAMES and isinstance(node.func,
                                                        ast.Attribute):
            cycle = _cycle_argument(node)
            self.schedule_sites.append(ScheduleSite(func, node, cycle,
                                                    callbacks, callee_name))

    def _callback_target(self, func: FunctionInfo, arg: ast.expr,
                         env: Dict[str, ClassInfo]
                         ) -> Optional[FunctionInfo]:
        """A function reference (or callable instance) passed by value."""
        if isinstance(arg, (ast.Name, ast.Attribute)):
            symbol = self._callable_symbol(func, arg, env)
            if isinstance(symbol, FunctionInfo):
                return symbol
            if isinstance(symbol, ClassInfo):
                return self._method_of(symbol, "__call__")
            return None
        if isinstance(arg, ast.Call):
            created = self._callable_symbol(func, arg.func, env)
            if isinstance(created, ClassInfo):
                return self._method_of(created, "__call__")
        return None

    def _add_edge(self, caller: FunctionInfo, callee: FunctionInfo,
                  node: ast.AST, kind: str) -> None:
        site = CallSite(caller, callee, node, kind)
        self.sites.append(site)
        self._out.setdefault(caller.qualname, []).append(site)
        self._in.setdefault(callee.qualname, []).append(site)


# ----------------------------------------------------------------------
# helpers


def _annotated_params(program: Program,
                      func: FunctionInfo) -> Dict[str, ClassInfo]:
    env: Dict[str, ClassInfo] = {}
    args = func.node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.annotation is None:
            continue
        symbol = _annotation_head_class(program, func.module,
                                        arg.annotation)
        if symbol is not None:
            env[arg.arg] = symbol
    return env


def _annotation_head_class(program: Program, module: ModuleInfo,
                           annotation: ast.expr) -> Optional[ClassInfo]:
    stack: List[ast.expr] = [annotation]
    while stack:
        node = stack.pop(0)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            cls = program.resolve_class(module, node.value)
            if cls is not None:
                return cls
            continue
        if isinstance(node, (ast.Name, ast.Attribute)):
            cls = program.resolve_class(module, _dotted(node))
            if cls is not None:
                return cls
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                stack.append(child)
    return None


def _cycle_argument(node: ast.Call) -> Optional[ast.expr]:
    """The when/delay/period expression of a schedule-family call."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg in ("when", "delay", "period"):
            return keyword.value
    return None


def _jobspec_fn_expr(node: ast.Call,
                     via_create: bool) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == "fn":
            return keyword.value
    if via_create:
        return node.args[1] if len(node.args) >= 2 else None
    return node.args[1] if len(node.args) >= 2 else None
