"""Per-bank DRAM state: open row tracking and ready-time bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis import contracts
from .timing import DramTiming


@dataclass(slots=True)
class Bank:
    """One DRAM bank's row-buffer state machine.

    The bank is modelled with two pieces of state: the currently open row
    (or ``None`` after a precharge) and the cycle at which the bank can
    accept its next column command.  Row hit/closed/conflict latencies come
    from :class:`~repro.dram.timing.DramTiming`.
    """

    timing: DramTiming
    open_row: Optional[int] = None
    ready_cycle: int = 0
    row_hits: int = 0
    row_misses: int = 0
    #: cycle of the last activate, to honour the tRC window
    last_activate: int = field(default=-(10 ** 9))

    def classify(self, row: int) -> str:
        """Would an access to ``row`` be a ``hit``/``closed``/``conflict``?"""
        if self.open_row is None:
            return "closed"
        if self.open_row == row:
            return "hit"
        return "conflict"

    def access(self, row: int, now: int, is_write: bool = False) -> int:
        """Perform an access to ``row`` starting no earlier than ``now``.

        Returns the cycle at which the data burst completes.  Updates the
        open row and the bank's ready time.  Successive column commands to
        an open row pipeline at the burst rate (tCCD ~= tBL), so the bank
        becomes ready for the *next* command well before this access's data
        has returned -- this is what lets streaming traffic approach the
        bus's peak bandwidth.  The caller (the DRAM device) serialises data
        bursts on the shared channel bus.
        """
        guarded = contracts.is_enabled()
        if guarded:
            contracts.check(isinstance(now, int) and isinstance(row, int),
                            "Bank.access(row=%r, now=%r): cycles and rows "
                            "are integers", row, now)
            contracts.check(now >= 0, "Bank.access at negative cycle %r",
                            now)
        prev_ready = self.ready_cycle
        start = max(now, self.ready_cycle)
        kind = self.classify(row)
        if kind == "hit":
            latency = self.timing.row_hit_latency
            next_ready = start + self.timing.t_bl
            self.row_hits += 1
        elif kind == "closed":
            start = max(start, self.last_activate + self.timing.t_rc)
            latency = self.timing.row_closed_latency
            next_ready = start + self.timing.t_rcd + self.timing.t_bl
            self.last_activate = start
            self.row_misses += 1
        else:  # conflict: precharge, then activate
            start = max(start, self.last_activate + self.timing.t_rc)
            latency = self.timing.row_conflict_latency
            next_ready = start + self.timing.t_rp + self.timing.t_rcd \
                + self.timing.t_bl
            self.last_activate = start + self.timing.t_rp
            self.row_misses += 1
        done = start + latency
        self.open_row = row
        recovery = self.timing.t_wr if is_write else 0
        self.ready_cycle = next_ready + recovery
        if guarded:
            # Row-buffer legality: the access leaves ``row`` open, never
            # finishes before it starts, and bank readiness only advances.
            contracts.check(self.open_row == row,
                            "Bank left row %r open after accessing row %r",
                            self.open_row, row)
            contracts.check(done >= start >= now,
                            "Bank access time ran backwards: now=%d "
                            "start=%d done=%d", now, start, done)
            contracts.check(self.ready_cycle >= prev_ready,
                            "Bank ready_cycle regressed from %d to %d",
                            prev_ready, self.ready_cycle)
            contracts.check(self.last_activate <= self.ready_cycle,
                            "Bank last_activate %d beyond ready_cycle %d",
                            self.last_activate, self.ready_cycle)
        return done

    def refresh(self, now: int) -> None:
        """Apply a refresh: closes the row and blocks the bank for tRFC."""
        prev_ready = self.ready_cycle
        start = max(now, self.ready_cycle)
        self.open_row = None
        self.ready_cycle = start + self.timing.t_rfc
        if contracts.is_enabled():
            contracts.check(self.ready_cycle >= prev_ready,
                            "Bank refresh regressed ready_cycle from %d "
                            "to %d", prev_ready, self.ready_cycle)
