"""DRAM substrate: DDR3-style request-level timing model (DRAMSim2-lite)."""

from .address_map import AddressMapper, DramCoordinates
from .bank import Bank
from .device import DramDevice
from .timing import DDR3_1333, DramTiming

__all__ = [
    "AddressMapper",
    "Bank",
    "DDR3_1333",
    "DramCoordinates",
    "DramDevice",
    "DramTiming",
]
