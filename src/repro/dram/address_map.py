"""Physical address to DRAM coordinate mapping.

The default interleaving is row:bank:column (consecutive cache lines walk
the columns of one row, then move to the next bank), which is the scheme
DRAMSim2 defaults to and what gives streaming workloads their high
row-buffer hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .timing import DramTiming


@dataclass(frozen=True)
class DramCoordinates:
    """Location of one cache line in the DRAM geometry."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def flat_bank(self) -> int:
        """Globally unique bank index (channel-major)."""
        return self.bank + self.rank * 1024 + self.channel * 1024 * 1024


class AddressMapper:
    """Maps byte addresses to (channel, rank, bank, row, column).

    Two interleaving schemes are supported:

    * ``"row"`` (default, DRAMSim2's default): consecutive cache lines walk
      the columns of one row before moving to the next bank -- streaming
      traffic gets long row-hit runs.
    * ``"bank"``: consecutive cache lines rotate across banks (and
      channels) first -- single streams spread over all banks, trading
      row-hit runs for bank-level parallelism.
    """

    SCHEMES = ("row", "bank")

    def __init__(self, timing: DramTiming, scheme: str = "row") -> None:
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown mapping scheme {scheme!r}; "
                             f"known: {self.SCHEMES}")
        self.timing = timing
        self.scheme = scheme
        self.columns_per_row = timing.row_buffer_bytes // timing.line_bytes

    def map(self, address: int) -> DramCoordinates:
        line = address // self.timing.line_bytes
        if self.scheme == "row":
            return self._map_row_interleaved(line)
        return self._map_bank_interleaved(line)

    def _map_row_interleaved(self, line: int) -> DramCoordinates:
        """line -> column -> bank -> rank -> channel -> row."""
        column = line % self.columns_per_row
        line //= self.columns_per_row
        bank = line % self.timing.banks_per_rank
        line //= self.timing.banks_per_rank
        rank = line % self.timing.ranks_per_channel
        line //= self.timing.ranks_per_channel
        channel = line % self.timing.channels
        row = line // self.timing.channels
        return DramCoordinates(channel=channel, rank=rank, bank=bank,
                               row=row, column=column)

    def _map_bank_interleaved(self, line: int) -> DramCoordinates:
        """line -> channel -> bank -> rank -> column -> row."""
        channel = line % self.timing.channels
        line //= self.timing.channels
        bank = line % self.timing.banks_per_rank
        line //= self.timing.banks_per_rank
        rank = line % self.timing.ranks_per_channel
        line //= self.timing.ranks_per_channel
        column = line % self.columns_per_row
        row = line // self.columns_per_row
        return DramCoordinates(channel=channel, rank=rank, bank=bank,
                               row=row, column=column)

    def bank_index(self, address: int) -> int:
        """Flat bank index in ``range(timing.total_banks)``."""
        coords = self.map(address)
        return (coords.channel * self.timing.ranks_per_channel
                + coords.rank) * self.timing.banks_per_rank + coords.bank
