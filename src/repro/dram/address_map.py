"""Physical address to DRAM coordinate mapping.

The default interleaving is row:bank:column (consecutive cache lines walk
the columns of one row, then move to the next bank), which is the scheme
DRAMSim2 defaults to and what gives streaming workloads their high
row-buffer hit rates.

Mapping runs once per DRAM service, so the mapper precomputes shift/mask
pairs for power-of-two geometries (every shipped
:class:`~repro.dram.timing.DramTiming`) and exposes
:meth:`AddressMapper.flat_index` so callers that already mapped an address
do not map it a second time just to find the flat bank index.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

from .timing import DramTiming


class DramCoordinates(NamedTuple):
    """Location of one cache line in the DRAM geometry."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def flat_bank(self) -> int:
        """Globally unique bank index (channel-major)."""
        return self.bank + self.rank * 1024 + self.channel * 1024 * 1024


def _shift_mask(value: int) -> Optional[Tuple[int, int]]:
    """``(shift, mask)`` for a power-of-two ``value``, else ``None``."""
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1, value - 1
    return None


class AddressMapper:
    """Maps byte addresses to (channel, rank, bank, row, column).

    Two interleaving schemes are supported:

    * ``"row"`` (default, DRAMSim2's default): consecutive cache lines walk
      the columns of one row before moving to the next bank -- streaming
      traffic gets long row-hit runs.
    * ``"bank"``: consecutive cache lines rotate across banks (and
      channels) first -- single streams spread over all banks, trading
      row-hit runs for bank-level parallelism.
    """

    SCHEMES = ("row", "bank")

    __slots__ = ("timing", "scheme", "columns_per_row", "_pow2")

    def __init__(self, timing: DramTiming, scheme: str = "row") -> None:
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown mapping scheme {scheme!r}; "
                             f"known: {self.SCHEMES}")
        self.timing = timing
        self.scheme = scheme
        self.columns_per_row = timing.row_buffer_bytes // timing.line_bytes
        # Shift/mask fast path for power-of-two geometries (all shipped
        # timings); any non-power-of-two dimension falls back to div/mod.
        dims = (timing.line_bytes, self.columns_per_row,
                timing.banks_per_rank, timing.ranks_per_channel,
                timing.channels)
        pairs = [_shift_mask(dim) for dim in dims]
        self._pow2 = None
        if all(pair is not None for pair in pairs):
            self._pow2 = tuple(pairs)

    def map(self, address: int) -> DramCoordinates:
        timing = self.timing
        pow2 = self._pow2
        if pow2 is not None:
            (line_s, _), (col_s, col_m), (bank_s, bank_m), \
                (rank_s, rank_m), (chan_s, chan_m) = pow2
            line = address >> line_s
            if self.scheme == "row":
                column = line & col_m
                line >>= col_s
                bank = line & bank_m
                line >>= bank_s
                rank = line & rank_m
                line >>= rank_s
                channel = line & chan_m
                row = line >> chan_s
            else:
                channel = line & chan_m
                line >>= chan_s
                bank = line & bank_m
                line >>= bank_s
                rank = line & rank_m
                line >>= rank_s
                column = line & col_m
                row = line >> col_s
            return DramCoordinates(channel, rank, bank, row, column)
        line = address // timing.line_bytes
        if self.scheme == "row":
            return self._map_row_interleaved(line)
        return self._map_bank_interleaved(line)

    def _map_row_interleaved(self, line: int) -> DramCoordinates:
        """line -> column -> bank -> rank -> channel -> row."""
        column = line % self.columns_per_row
        line //= self.columns_per_row
        bank = line % self.timing.banks_per_rank
        line //= self.timing.banks_per_rank
        rank = line % self.timing.ranks_per_channel
        line //= self.timing.ranks_per_channel
        channel = line % self.timing.channels
        row = line // self.timing.channels
        return DramCoordinates(channel=channel, rank=rank, bank=bank,
                               row=row, column=column)

    def _map_bank_interleaved(self, line: int) -> DramCoordinates:
        """line -> channel -> bank -> rank -> column -> row."""
        channel = line % self.timing.channels
        line //= self.timing.channels
        bank = line % self.timing.banks_per_rank
        line //= self.timing.banks_per_rank
        rank = line % self.timing.ranks_per_channel
        line //= self.timing.ranks_per_channel
        column = line % self.columns_per_row
        row = line // self.columns_per_row
        return DramCoordinates(channel=channel, rank=rank, bank=bank,
                               row=row, column=column)

    def flat_index(self, coords: DramCoordinates) -> int:
        """Flat bank index of already-mapped coordinates (no re-mapping)."""
        timing = self.timing
        return (coords.channel * timing.ranks_per_channel
                + coords.rank) * timing.banks_per_rank + coords.bank

    def map_lines(self, lines):
        """Vectorized :meth:`map` over an array of DRAM line numbers.

        ``lines`` is a numpy integer array of ``address // line_bytes``
        values; returns ``(flat_bank, row, channel)`` arrays with the same
        shape, where ``flat_bank`` matches :meth:`flat_index`.  This is the
        batched kernel's one-shot coordinate precomputation: the per-trace
        address column is mapped in a handful of array shift/mask ops
        instead of one :meth:`map` call per DRAM service.  Non-power-of-two
        geometries fall back to a scalar loop over :meth:`map` (identical
        results, just not vectorized).
        """
        timing = self.timing
        pow2 = self._pow2
        if pow2 is None:
            triples = [self.map(int(line) * timing.line_bytes)
                       for line in lines]
            flat = [self.flat_index(c) for c in triples]
            row = [c.row for c in triples]
            channel = [c.channel for c in triples]
            return flat, row, channel
        (_line_s, _), (col_s, col_m), (bank_s, bank_m), \
            (rank_s, rank_m), (chan_s, chan_m) = pow2
        work = lines
        if self.scheme == "row":
            work = work >> col_s
            bank = work & bank_m
            work = work >> bank_s
            rank = work & rank_m
            work = work >> rank_s
            channel = work & chan_m
            row = work >> chan_s
        else:
            channel = work & chan_m
            work = work >> chan_s
            bank = work & bank_m
            work = work >> bank_s
            rank = work & rank_m
            work = work >> rank_s
            row = work >> col_s
        flat = (channel * timing.ranks_per_channel
                + rank) * timing.banks_per_rank + bank
        return flat, row, channel

    def bank_index(self, address: int) -> int:
        """Flat bank index in ``range(timing.total_banks)``."""
        return self.flat_index(self.map(address))
