"""The DRAM device: banks behind a shared per-channel data bus.

This is the DRAMSim2 substitute.  It is request-level rather than
command-level: given a request and the current cycle it computes the cycle
at which the data burst finishes, honouring per-bank row-buffer state, the
tRC activate window, write recovery, data-bus serialisation, and periodic
refresh.  That is the level of fidelity MITTS and the comparator schedulers
actually exercise -- they reorder and throttle *requests*, not DDR commands.
"""

from __future__ import annotations

from typing import List

from .address_map import AddressMapper
from .bank import Bank
from .timing import DramTiming


class DramDevice:
    """Request-level DRAM model with banked row buffers."""

    __slots__ = ("timing", "mapper", "banks", "bus_free", "_next_refresh",
                 "_refresh_bank", "_t_bl")

    def __init__(self, timing: DramTiming,
                 mapping_scheme: str = "row") -> None:
        self.timing = timing
        self.mapper = AddressMapper(timing, scheme=mapping_scheme)
        self.banks: List[Bank] = [Bank(timing) for _ in range(timing.total_banks)]
        #: per-channel cycle at which the data bus is next free
        self.bus_free: List[int] = [0] * timing.channels
        self._next_refresh = timing.t_refi if timing.refresh_enabled else None
        self._refresh_bank = 0
        self._t_bl = timing.t_bl

    def _maybe_refresh(self, now: int) -> None:
        """Round-robin per-bank refresh, one bank per tREFI/banks slot."""
        if self._next_refresh is None:
            return
        while now >= self._next_refresh:
            bank = self.banks[self._refresh_bank % len(self.banks)]
            bank.refresh(self._next_refresh)
            self._refresh_bank += 1
            self._next_refresh += max(1, self.timing.t_refi // len(self.banks))

    def would_row_hit(self, address: int) -> bool:
        """True if ``address`` would hit the currently open row of its bank."""
        coords = self.mapper.map(address)
        bank = self.banks[self.mapper.flat_index(coords)]
        return bank.open_row == coords.row

    def bank_ready_cycle(self, address: int) -> int:
        """Cycle at which the bank owning ``address`` can start a command."""
        return self.banks[self.mapper.bank_index(address)].ready_cycle

    def service(self, address: int, now: int, is_write: bool = False) -> int:
        """Service one cache-line request; returns the data-complete cycle."""
        if self._next_refresh is not None and now >= self._next_refresh:
            self._maybe_refresh(now)
        mapper = self.mapper
        coords = mapper.map(address)
        bank = self.banks[mapper.flat_index(coords)]
        done = bank.access(coords.row, now, is_write=is_write)
        # Serialise the data burst on the channel bus.
        t_bl = self._t_bl
        bus_free = self.bus_free
        channel = coords.channel
        bus_start = done - t_bl
        free_at = bus_free[channel]
        if free_at > bus_start:
            bus_start = free_at
        done = bus_start + t_bl
        bus_free[channel] = done
        return done

    @property
    def row_hits(self) -> int:
        return sum(bank.row_hits for bank in self.banks)

    @property
    def row_misses(self) -> int:
        return sum(bank.row_misses for bank in self.banks)
