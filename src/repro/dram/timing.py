"""DDR3 timing parameters converted to CPU cycles.

The paper's Table II specifies a 2.4 GHz core and DDR3-1333 memory with one
channel, one rank and eight banks per rank.  DDR3-1333 has a 666.67 MHz
memory clock, so one memory clock is 3.6 CPU cycles; all JEDEC parameters
below are the standard DDR3-1333H values (in memory clocks) pre-multiplied
into integer CPU cycles.

Only the parameters that matter for request-level contention are modelled:
row activate (tRCD), precharge (tRP), CAS latency (tCL), burst transfer
(tBL), and the activate-to-activate (tRC) window.  Refresh is modelled as a
periodic bank-unavailable window so long runs see its throughput tax.
"""

from __future__ import annotations

from dataclasses import dataclass


#: CPU cycles per DDR3-1333 memory clock at a 2.4 GHz core.
CPU_CYCLES_PER_MEM_CLOCK = 3.6


def _mem_clocks(n: float) -> int:
    """Convert memory clocks to (rounded) CPU cycles."""
    return max(1, round(n * CPU_CYCLES_PER_MEM_CLOCK))


@dataclass(frozen=True, slots=True)
class DramTiming:
    """DRAM timing in CPU cycles plus geometry, Table II defaults."""

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    row_buffer_bytes: int = 8192
    line_bytes: int = 64

    #: ACT -> READ/WRITE (tRCD), DDR3-1333H: 9 memory clocks
    t_rcd: int = _mem_clocks(9)
    #: PRE -> ACT (tRP): 9 memory clocks
    t_rp: int = _mem_clocks(9)
    #: READ -> first data (tCL): 9 memory clocks
    t_cl: int = _mem_clocks(9)
    #: data burst on the bus (BL8 = 4 memory clocks)
    t_bl: int = _mem_clocks(4)
    #: ACT -> ACT same bank (tRC): 33 memory clocks
    t_rc: int = _mem_clocks(33)
    #: write recovery added to write row cycles (tWR): 10 memory clocks
    t_wr: int = _mem_clocks(10)
    #: refresh command duration (tRFC): 107 memory clocks at 2Gb
    t_rfc: int = _mem_clocks(107)
    #: average refresh interval (tREFI): 7.8 us = 5200 memory clocks
    t_refi: int = _mem_clocks(5200)
    #: whether periodic refresh is simulated
    refresh_enabled: bool = True

    @property
    def row_hit_latency(self) -> int:
        """Latency of a read that hits the open row."""
        return self.t_cl + self.t_bl

    @property
    def row_closed_latency(self) -> int:
        """Latency of a read to a bank with no open row."""
        return self.t_rcd + self.t_cl + self.t_bl

    @property
    def row_conflict_latency(self) -> int:
        """Latency of a read that must close another row first."""
        return self.t_rp + self.t_rcd + self.t_cl + self.t_bl

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Data-bus peak: one cache line per tBL per channel."""
        return self.channels * self.line_bytes / self.t_bl


#: Table II configuration: DDR3-1333, 1 channel, 1 rank, 8 banks, 8KB rows.
DDR3_1333 = DramTiming()
