"""Command-line entry point for the campaign fabric.

Usage::

    python -m repro.fabric submit sweep.yaml --queue-root runs
    python -m repro.fabric work runs                  # drain (several OK)
    python -m repro.fabric supervise runs --pools 4   # babysat fleet
    python -m repro.fabric status runs --watch
    python -m repro.fabric query runs --csv out.csv
    python -m repro.fabric query runs --sql \\
        "SELECT name, value FROM metrics JOIN campaigns USING (campaign_id)"
    python -m repro.fabric plot runs -x seed -y row_hit_rate -o fig.svg
    python -m repro.fabric doctor runs --repair       # triage stuck state
    python -m repro.fabric requeue runs 17            # un-quarantine job 17
    python -m repro.fabric selfcheck --workdir /tmp/fabric-check
    python -m repro.fabric fleetcheck --workdir /tmp/fabric-fleet

``submit`` expands a manifest once; ``work`` can be started any number
of times, on any schedule -- worker pools coordinate purely through the
queue directory (claims + leases), and a killed pool's jobs are stolen
after its leases lapse.  ``supervise`` runs N such pools as restarted-
with-backoff children.  ``query``/``plot`` merge the queue into the
results database first, so they always see the latest drained state;
``--no-merge`` reads the database as-is (the "from the DB alone" path).

Exit codes follow the campaign disposition wherever one exists:
0 = ``complete``, 3 = ``complete-degraded`` (terminal, but with
failed/quarantined jobs -- results have explicit holes), 4 = ``wedged``
(cannot terminate without repair), 2 = operator error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..metrics.report import format_table
from ..runner import wallclock
from .db import DbError, ResultsDb, write_csv
from .doctor import diagnose
from .harden import (INJECTION_SIDECAR_PREFIX, FaultPlan, FaultPlanError,
                     FaultyFS, run_fleetcheck)
from .manifest import ManifestError, parse_manifest
from .plot import PlotError, count_holes, render, series_from_table
from .queue import (DEFAULT_LEASE_SECONDS, DEFAULT_MAX_ATTEMPTS,
                    DISPOSITION_COMPLETE, DISPOSITION_DEGRADED,
                    DISPOSITION_IN_PROGRESS, DISPOSITION_WEDGED,
                    CampaignQueue, QueueError, find_campaign,
                    list_campaigns)
from .service import (DEFAULT_POLL_SECONDS, default_worker_id,
                      work_campaign)
from .supervise import (DEFAULT_BACKOFF_SECONDS, DEFAULT_MAX_RESTARTS,
                        DEFAULT_POOLS, DEFAULT_RESTART_WINDOW_SECONDS,
                        run_supervisor)

#: queue root used when --queue-root / the positional root is omitted
DEFAULT_QUEUE_ROOT = ".repro-fabric"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric",
        description="Declarative simulation campaigns: submit, drain "
                    "with any number of worker pools, query the merged "
                    "results database.")
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="expand a manifest into a campaign directory")
    submit.add_argument("manifest", help="YAML/JSON manifest path")
    submit.add_argument("--queue-root", default=DEFAULT_QUEUE_ROOT)

    work = commands.add_parser(
        "work", help="drain a campaign (run any number of these)")
    work.add_argument("queue_root", nargs="?", default=DEFAULT_QUEUE_ROOT)
    work.add_argument("--campaign", default=None,
                      help="campaign id, id prefix, or name (optional "
                           "when the root holds exactly one)")
    work.add_argument("--jobs", type=int, default=1,
                      help="worker processes in this pool (default: 1)")
    work.add_argument("--lease", type=float, default=DEFAULT_LEASE_SECONDS,
                      help="claim lease seconds; a pool that stops "
                           "renewing for this long has its jobs stolen "
                           f"(default: {DEFAULT_LEASE_SECONDS:.0f})")
    work.add_argument("--poll", type=float, default=DEFAULT_POLL_SECONDS,
                      help="idle re-poll interval while other pools "
                           "hold live leases")
    work.add_argument("--max-jobs", type=int, default=None,
                      help="stop after executing this many jobs")
    work.add_argument("--worker", default=None,
                      help="worker id recorded on claims "
                           "(default: host:pid)")
    work.add_argument("--retries", type=int, default=2)
    work.add_argument("--max-attempts", type=int,
                      default=DEFAULT_MAX_ATTEMPTS,
                      help="claim attempts before a job is quarantined "
                           "to the dead-letter directory "
                           f"(default: {DEFAULT_MAX_ATTEMPTS}); "
                           "deterministic failures quarantine on the "
                           "first")
    work.add_argument("--no-wait", action="store_true",
                      help="exit when nothing is claimable instead of "
                           "polling until the campaign drains")
    work.add_argument("--inline", action="store_true",
                      help="run jobs in-process instead of a pool "
                           "(no SIGALRM timeouts; serial reference)")
    work.add_argument("--progress", action="store_true",
                      help="runner progress lines on stderr")
    work.add_argument("--die-after-claims", type=int, default=None,
                      help=argparse.SUPPRESS)  # chaos/selfcheck hook
    work.add_argument("--inject-faults", default=None,
                      metavar="PLAN",
                      help="route this worker's queue IO through a "
                           "seeded fault injector, e.g. "
                           "'seed=7,rate=0.05,faults=enospc+eio' "
                           "(chaos testing; rate=0 = quiescent shim)")

    supervise = commands.add_parser(
        "supervise",
        help="run N worker pools as supervised child processes with "
             "liveness probes, backoff restarts, and a crash-loop "
             "circuit breaker")
    supervise.add_argument("queue_root", nargs="?",
                           default=DEFAULT_QUEUE_ROOT)
    supervise.add_argument("--campaign", default=None)
    supervise.add_argument("--pools", type=int, default=DEFAULT_POOLS,
                           help=f"worker pools (default: {DEFAULT_POOLS})")
    supervise.add_argument("--jobs", type=int, default=1,
                           help="worker processes per pool")
    supervise.add_argument("--lease", type=float,
                           default=DEFAULT_LEASE_SECONDS)
    supervise.add_argument("--max-attempts", type=int,
                           default=DEFAULT_MAX_ATTEMPTS)
    supervise.add_argument("--seed", type=int, default=0,
                           help="restart-jitter seed (reproducible "
                                "schedules)")
    supervise.add_argument("--backoff", type=float,
                           default=DEFAULT_BACKOFF_SECONDS,
                           help="base restart backoff seconds; doubles "
                                "per consecutive restart, plus jitter")
    supervise.add_argument("--max-restarts", type=int,
                           default=DEFAULT_MAX_RESTARTS,
                           help="restarts within --window before a "
                                "pool's circuit breaker trips")
    supervise.add_argument("--window", type=float,
                           default=DEFAULT_RESTART_WINDOW_SECONDS)
    supervise.add_argument("--timeout", type=float, default=600.0,
                           help="overall wall-clock ceiling seconds")
    supervise.add_argument("--inject-faults", default=None,
                           metavar="PLAN",
                           help="forward a fault plan to every child")
    supervise.add_argument("--json", action="store_true",
                           help="print the report as JSON")
    supervise.add_argument("--die-first-spawn-after-claims", type=int,
                           default=None,
                           help=argparse.SUPPRESS)  # chaos hook

    status = commands.add_parser(
        "status", help="campaign progress, workers, and ETA")
    status.add_argument("queue_root", nargs="?",
                        default=DEFAULT_QUEUE_ROOT)
    status.add_argument("--campaign", default=None)
    status.add_argument("--watch", action="store_true",
                        help="refresh until the campaign drains")
    status.add_argument("--interval", type=float, default=2.0)

    query = commands.add_parser(
        "query", help="merge the queue into SQLite and query it")
    query.add_argument("queue_root", nargs="?", default=DEFAULT_QUEUE_ROOT)
    query.add_argument("--campaign", default=None)
    query.add_argument("--db", default=None,
                       help="database path (default: "
                            "<queue-root>/results.sqlite)")
    query.add_argument("--no-merge", action="store_true",
                       help="query the database as-is, without "
                            "re-merging the queue first")
    query.add_argument("--sql", default=None,
                       help="SELECT/WITH statement over campaigns/jobs/"
                            "results/metrics (default: the flat "
                            "per-job table)")
    query.add_argument("--job", default=None,
                       help="re-render one job's stored experiment "
                            "table from the database alone")
    query.add_argument("--csv", default=None, metavar="PATH",
                       help="also write the output as CSV")
    query.add_argument("--fingerprint", action="store_true",
                       help="print the campaign's deterministic "
                            "fingerprint instead of rows")

    plot = commands.add_parser(
        "plot", help="render a figure from the results database")
    plot.add_argument("queue_root", nargs="?", default=DEFAULT_QUEUE_ROOT)
    plot.add_argument("--campaign", default=None)
    plot.add_argument("--db", default=None)
    plot.add_argument("--no-merge", action="store_true")
    plot.add_argument("-x", required=True,
                      help="x-axis column of the flat table")
    plot.add_argument("-y", required=True,
                      help="y-axis column (a metric or param)")
    plot.add_argument("--group-by", default=None,
                      help="column whose values become separate series")
    plot.add_argument("-o", "--out", default="campaign.svg",
                      help="output path (SVG always works; .png needs "
                           "matplotlib and falls back to .svg)")
    plot.add_argument("--title", default=None)

    doctor = commands.add_parser(
        "doctor",
        help="scan a campaign for orphaned claims, damaged files, and "
             "dead-letter inconsistencies")
    doctor.add_argument("queue_root", nargs="?",
                        default=DEFAULT_QUEUE_ROOT)
    doctor.add_argument("--campaign", default=None)
    doctor.add_argument("--repair", action="store_true",
                        help="apply the safe repair for every finding "
                             "that has one (release, delete, "
                             "re-quarantine)")
    doctor.add_argument("--json", action="store_true",
                        help="print the report as JSON")

    requeue = commands.add_parser(
        "requeue",
        help="make a quarantined (dead-letter) job runnable again")
    requeue.add_argument("queue_root", nargs="?",
                         default=DEFAULT_QUEUE_ROOT)
    requeue.add_argument("--campaign", default=None)
    requeue.add_argument("indices", nargs="*", type=int,
                         help="job indices to requeue (default: every "
                              "dead-letter entry)")

    selfcheck = commands.add_parser(
        "selfcheck",
        help="two pools, one killed mid-campaign; assert the merged "
             "database is bit-identical to a serial drain")
    selfcheck.add_argument("--workdir", default=".repro-fabric-selfcheck")
    selfcheck.add_argument("--num-jobs", type=int, default=24)
    selfcheck.add_argument("--cycles", type=int, default=3_000)
    selfcheck.add_argument("--json", action="store_true",
                           help="print the report as JSON")

    fleetcheck = commands.add_parser(
        "fleetcheck",
        help="supervised fleets over a poisoned campaign behind the "
             "fault injector; assert complete-degraded disposition and "
             "fingerprint equality")
    fleetcheck.add_argument("--workdir",
                            default=".repro-fabric-fleetcheck")
    fleetcheck.add_argument("--num-jobs", type=int, default=24)
    fleetcheck.add_argument("--cycles", type=int, default=1_200)
    fleetcheck.add_argument("--seed", type=int, default=7)
    fleetcheck.add_argument("--timeout", type=float, default=600.0)
    fleetcheck.add_argument("--json", action="store_true",
                            help="print the report as JSON")
    return parser


def disposition_exit(disposition: str) -> int:
    """Exit-code contract: dispositions are machine-readable."""
    return {DISPOSITION_COMPLETE: 0,
            DISPOSITION_DEGRADED: 3,
            DISPOSITION_WEDGED: 4}.get(disposition, 0)


# ----------------------------------------------------------------------
# subcommands


def cmd_submit(args) -> int:
    manifest = parse_manifest(args.manifest)
    queue = CampaignQueue.submit(args.queue_root, manifest)
    header = queue.header()
    print(f"campaign {queue.campaign_id} ({header['name']}): "
          f"{header['num_jobs']} jobs under {queue.directory}")
    return 0


def cmd_work(args) -> int:
    queue = find_campaign(args.queue_root, args.campaign)
    shim = None
    if args.inject_faults is not None:
        # The shim wraps *this worker's* view of the queue; other
        # workers (and the submitting process) see the real filesystem.
        shim = FaultyFS(FaultPlan.parse(args.inject_faults),
                        inner=queue.storage)
        queue.storage = shim
    counters = work_campaign(
        queue, worker=args.worker or default_worker_id(),
        jobs=args.jobs, lease_seconds=args.lease,
        poll_seconds=args.poll, wait_for_drain=not args.no_wait,
        max_jobs=args.max_jobs, retries=args.retries,
        max_attempts=args.max_attempts,
        progress=args.progress, pool=not args.inline,
        die_after_claims=args.die_after_claims)
    if shim is not None:
        # Sidecar (written outside the shim): lets the driving process
        # assert that faults actually fired, not merely were survived.
        sidecar = (queue.directory
                   / f"{INJECTION_SIDECAR_PREFIX}{os.getpid()}.json")
        sidecar.write_text(json.dumps(shim.counts(), sort_keys=True,
                                      indent=1), encoding="utf-8")
    print(f"campaign {queue.campaign_id}: executed "
          f"{counters['executed']} job(s) "
          f"({counters['done']} done, {counters['failed']} failed, "
          f"{counters['quarantined']} quarantined, "
          f"{counters['released']} released for retry, "
          f"{counters['stolen']} stolen); "
          f"disposition {counters['disposition']}")
    return disposition_exit(counters["disposition"])


def cmd_supervise(args) -> int:
    queue = find_campaign(args.queue_root, args.campaign)
    first_spawn_extra = ()
    if args.die_first_spawn_after_claims is not None:
        first_spawn_extra = ("--die-after-claims",
                             str(args.die_first_spawn_after_claims))
    report = run_supervisor(
        queue, pools=args.pools, jobs=args.jobs,
        lease_seconds=args.lease, max_attempts=args.max_attempts,
        seed=args.seed, backoff_seconds=args.backoff,
        max_restarts=args.max_restarts, window_seconds=args.window,
        inject_faults=args.inject_faults,
        first_spawn_extra=first_spawn_extra, timeout=args.timeout)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    return disposition_exit(report["disposition"])


def cmd_doctor(args) -> int:
    queue = find_campaign(args.queue_root, args.campaign)
    report = diagnose(queue, repair=args.repair)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        if report["clean"]:
            print(f"campaign {queue.campaign_id}: clean")
        for finding in report["findings"]:
            state = ("repaired" if finding["repaired"]
                     else (finding["repair"] or "not repairable"))
            print(f"{finding['category']}: {finding['path']} -- "
                  f"{finding['detail']} [{state}]")
        if report["findings"]:
            print(f"{len(report['findings'])} finding(s), "
                  f"{report['repaired']} repaired, "
                  f"{report['unrepairable']} not repairable")
    return 0 if report["clean"] else 1


def cmd_requeue(args) -> int:
    queue = find_campaign(args.queue_root, args.campaign)
    indices = args.indices or queue.dead_letter_indices()
    if not indices:
        print(f"campaign {queue.campaign_id}: dead-letter directory "
              f"is empty")
        return 0
    for index in indices:
        diagnosis = queue.requeue(index)
        print(f"requeued job {index} ({diagnosis.job_id}): was "
              f"quarantined for {diagnosis.reason} "
              f"({diagnosis.error_type}: {diagnosis.message})")
    return 0


def cmd_fleetcheck(args) -> int:
    report = run_fleetcheck(args.workdir, num_jobs=args.num_jobs,
                            cycles=args.cycles, seed=args.seed,
                            timeout=args.timeout)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["ok"] else 1


def _print_status(queue: CampaignQueue) -> str:
    snapshot = queue.snapshot()
    eta = CampaignQueue.eta_seconds(snapshot)
    eta_text = "unknown" if eta is None else f"{eta:.0f}s"
    workers = ", ".join(f"{name} ({count})" for name, count
                        in snapshot["workers"].items()) or "none"
    extras = []
    if snapshot["quarantined"]:
        extras.append(f"{snapshot['quarantined']} quarantined "
                      f"({snapshot['dead_letter']} dead-letter)")
    if snapshot["damaged"]:
        extras.append(f"{snapshot['damaged']} damaged")
    if snapshot["corruption"]["total"]:
        extras.append(f"{snapshot['corruption']['total']} corruption "
                      f"note(s)")
    extra_text = ("; " + ", ".join(extras)) if extras else ""
    print(f"campaign {snapshot['campaign_id']}: "
          f"{snapshot['done']}/{snapshot['total']} done, "
          f"{snapshot['failed']} failed, {snapshot['running']} running, "
          f"{snapshot['stale']} stale, {snapshot['pending']} pending; "
          f"eta {eta_text}; workers: {workers}; "
          f"disposition {snapshot['disposition']}{extra_text}")
    return snapshot["disposition"]


def cmd_status(args) -> int:
    # The exit code carries the (worst) disposition, so scripts can ask
    # "done and clean?" without parsing: 0 complete, 3 degraded,
    # 4 wedged (in-progress reports 0 -- not an error, just not done).
    if args.campaign is None and not args.watch:
        queues = list_campaigns(args.queue_root)
        if not queues:
            print(f"no submitted campaigns under {args.queue_root}")
            return 1
        return max(disposition_exit(_print_status(queue))
                   for queue in queues)
    queue = find_campaign(args.queue_root, args.campaign)
    while True:
        disposition = _print_status(queue)
        if disposition != DISPOSITION_IN_PROGRESS or not args.watch:
            return disposition_exit(disposition)
        wallclock.sleep(args.interval)


def _open_db(args) -> ResultsDb:
    db_path = args.db or f"{args.queue_root}/results.sqlite"
    db = ResultsDb(db_path)
    if not args.no_merge:
        queue = find_campaign(args.queue_root, args.campaign)
        db.merge_queue(queue)
    return db


def _campaign_id(args, db: ResultsDb) -> str:
    if args.campaign is None:
        campaigns = db.campaigns()
        if len(campaigns) == 1:
            return campaigns[0][0]
        raise DbError(f"database holds {len(campaigns)} campaigns; "
                      f"pass --campaign")
    return find_campaign(args.queue_root, args.campaign).campaign_id


def cmd_query(args) -> int:
    with _open_db(args) as db:
        if args.fingerprint:
            print(db.fingerprint(_campaign_id(args, db)))
            return 0
        if args.sql:
            headers, rows = db.query(args.sql)
            title = None
        elif args.job:
            campaign_id = _campaign_id(args, db)
            headers, rows, title = db.stored_result_rows(campaign_id,
                                                         args.job)
        else:
            campaign_id = _campaign_id(args, db)
            headers, rows = db.table(campaign_id)
            title = f"campaign {campaign_id}"
        print(format_table(headers, rows, title=title))
        if args.csv:
            write_csv(headers, rows, args.csv)
            print(f"csv written to {args.csv}")
    return 0


def cmd_plot(args) -> int:
    with _open_db(args) as db:
        campaign_id = _campaign_id(args, db)
        headers, rows = db.table(campaign_id)
    series = series_from_table(headers, rows, x=args.x, y=args.y,
                               group_by=args.group_by)
    holes = count_holes(headers, rows, x=args.x, y=args.y)
    title = args.title or (f"campaign {campaign_id}: "
                           f"{args.y} vs {args.x}")
    if holes:
        # Degraded campaigns render with explicit holes, never by
        # silently interpolating over quarantined jobs.
        title += f" ({holes} job(s) missing)"
        print(f"warning: {holes} job(s) have no {args.y} value "
              f"(failed or quarantined); the figure has explicit holes",
              file=sys.stderr)
    out = render(series, title=title,
                 x_label=args.x, y_label=args.y, out_path=args.out)
    print(f"figure written to {out}")
    return 0


def cmd_selfcheck(args) -> int:
    from .selfcheck import run_selfcheck

    report = run_selfcheck(args.workdir, num_jobs=args.num_jobs,
                           cycles=args.cycles)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["ok"] else 1


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "submit": cmd_submit,
        "work": cmd_work,
        "supervise": cmd_supervise,
        "status": cmd_status,
        "query": cmd_query,
        "plot": cmd_plot,
        "doctor": cmd_doctor,
        "requeue": cmd_requeue,
        "selfcheck": cmd_selfcheck,
        "fleetcheck": cmd_fleetcheck,
    }[args.command]
    try:
        return handler(args)
    except (ManifestError, QueueError, DbError, PlotError,
            FaultPlanError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
