"""Worker pools and drain loops over a campaign queue.

``work_campaign`` is the long-lived loop behind ``python -m repro.fabric
work``: claim a batch of jobs, execute them through the existing
:class:`~repro.runner.engine.Runner` (per-job SIGALRM timeouts, bounded
retry, worker-crash recovery, per-job checkpoints under the campaign's
``checkpoints/`` directory), renew the leases while jobs run, and write
terminal results back to the queue.  Several pools drain one campaign
concurrently; a pool that dies stops renewing and its claims are stolen
after lease expiry -- the stolen job's retry then *resumes* from the
victim's checkpoint instead of restarting, exactly the runner's existing
recovery path.

``run_campaign_serial`` is the bit-identical reference: one worker, one
job at a time, in index order.  Because terminal results are a pure
function of each spec and the database merge is keyed by job index, the
serial and any-concurrency drains produce fingerprint-identical
databases (proven by ``python -m repro.fabric selfcheck`` and the CI
``fabric-smoke`` job).

``FabricBatchEvaluator`` routes GA generations through the same
machinery: each generation's fresh genome evaluations are submitted as
one campaign batch, which ambient worker pools may help drain.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

from ..runner import Runner, RunnerConfig, wallclock
from ..runner.engine import JobFailure, JobOutcome
from ..runner.fingerprint import code_fingerprint
from ..runner.jobspec import JobSpec
from .db import encode_value, extract_metrics
from .queue import (DEFAULT_LEASE_SECONDS, DEFAULT_MAX_ATTEMPTS,
                    REASON_DETERMINISTIC, REASON_EXHAUSTED, RESULT_DONE,
                    RESULT_FAILED, CampaignQueue, ClaimedJob, Diagnosis)

#: default seconds between idle polls while other pools hold live leases
DEFAULT_POLL_SECONDS = 0.5


def default_worker_id() -> str:
    """Host-qualified worker identity (claims must be attributable)."""
    try:
        host = os.uname().nodename
    except (AttributeError, OSError):
        host = "host"
    return f"{host}:{os.getpid()}"


# ----------------------------------------------------------------------
# result records


def result_record(index: int, spec: JobSpec,
                  outcome: JobOutcome, worker: str,
                  lease_generation: int) -> Dict[str, Any]:
    """The terminal JSON document for one job.

    Deterministic fields first (identity, status, metrics, value,
    error, code fingerprint) -- these are what the database fingerprint
    covers.  Provenance (worker, attempts, lease generation, duration)
    rides along for ``status``/``query`` but never enters the
    fingerprint: a crash-recovered run legitimately differs there.
    """
    if outcome.ok:
        return {
            "job_index": index, "job_id": spec.job_id,
            "spec_hash": spec.spec_hash(),
            "seed": spec.seed, "scale": spec.scale,
            "status": RESULT_DONE,
            "metrics": extract_metrics(outcome.value),
            "value_json": encode_value(outcome.value),
            "error": None,
            "code_fingerprint": code_fingerprint(),
            "attempts": outcome.attempts,
            "lease_generation": lease_generation,
            "worker": worker,
            "duration": outcome.duration,
        }
    failure = outcome.failure
    return {
        "job_index": index, "job_id": spec.job_id,
        "spec_hash": spec.spec_hash(),
        "seed": spec.seed, "scale": spec.scale,
        "status": RESULT_FAILED,
        "metrics": {},
        "value_json": None,
        "error": f"{failure.kind}: {failure.error_type}: {failure.message}",
        "code_fingerprint": code_fingerprint(),
        "attempts": outcome.attempts,
        "lease_generation": lease_generation,
        "worker": worker,
        "duration": outcome.duration,
    }


# ----------------------------------------------------------------------
# the drain loop


class _LeaseRenewer:
    """Runner heartbeat that renews held leases at ~1/3 lease period."""

    def __init__(self, queue: CampaignQueue, held: Dict[str, ClaimedJob],
                 lease_seconds: float) -> None:
        self.queue = queue
        self.held = held
        self.lease_seconds = lease_seconds
        self._renewed_at: Dict[str, float] = {}

    def __call__(self, job_ids: Sequence[str]) -> None:
        now = wallclock.now()
        due = now - self.lease_seconds / 3.0
        for job_id in job_ids:
            job = self.held.get(job_id)
            if job is None:
                continue
            last = self._renewed_at.get(job_id, -1e18)
            if last > now:
                # The clock went backwards (VM suspend, NTP step, a
                # monkeypatched seam): a future-dated stamp would defer
                # renewal until the clock catches up, while the
                # epoch-based lease keeps aging toward a steal.  Treat
                # skew as "renew now".
                last = -1e18
            if last <= due:
                if self.queue.renew(job, self.lease_seconds):
                    self._renewed_at[job_id] = now


def work_campaign(queue: CampaignQueue,
                  worker: Optional[str] = None,
                  jobs: int = 1,
                  lease_seconds: float = DEFAULT_LEASE_SECONDS,
                  poll_seconds: float = DEFAULT_POLL_SECONDS,
                  wait_for_drain: bool = True,
                  max_jobs: Optional[int] = None,
                  retries: int = 2,
                  max_attempts: Optional[int] = DEFAULT_MAX_ATTEMPTS,
                  progress: bool = False,
                  pool: bool = True,
                  die_after_claims: Optional[int] = None) -> Dict[str, Any]:
    """Drain ``queue`` until it is finished (or nothing is claimable).

    ``jobs`` is this pool's width: up to that many claims are held and
    executed concurrently through one :class:`Runner`.  ``pool=False``
    executes claims inline in this process (the serial reference and
    the GA batch path); ``pool=True`` uses a process pool even for
    ``jobs=1`` so per-job SIGALRM timeouts apply and a dying job cannot
    take the claim bookkeeping down with it.

    ``wait_for_drain=True`` keeps polling while other pools hold live
    leases -- necessary to *steal* from a pool that dies.  ``max_jobs``
    bounds how many jobs this call will execute (load shedding and
    tests).  ``die_after_claims`` is a chaos hook: the process exits
    hard (``os._exit``) once that many claims are held, modelling a
    ``kill -9`` mid-campaign with leases dangling.

    Failure policy (the poison-job contract): a **deterministic**
    failure (runner taxonomy -- StarvationError/ValueError/
    AssertionError ancestry) is quarantined on its *first* failure;
    anything else (timeout, crash) releases the claim for another
    attempt until the durable ledger count reaches ``max_attempts``,
    then quarantines.  Either way the campaign terminates: poison lands
    in the dead-letter directory and everything else drains.

    Returns counters ``{"executed", "done", "failed", "stolen",
    "quarantined", "released"}`` plus the final campaign
    ``"disposition"``.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    worker = worker or default_worker_id()
    executed = done = failed = stolen = quarantined = released = 0
    idle_wedged = 0

    config = RunnerConfig(jobs=jobs, retries=retries, progress=progress,
                          checkpoint_dir=str(queue.checkpoints_dir))
    with Runner(config) as runner:
        while True:
            if max_jobs is not None and executed >= max_jobs:
                break
            claimed: List[ClaimedJob] = []
            while len(claimed) < jobs:
                if max_jobs is not None \
                        and executed + len(claimed) >= max_jobs:
                    break
                job = queue.claim_next(worker, lease_seconds,
                                       max_attempts=max_attempts)
                if job is None:
                    break
                claimed.append(job)
                if job.attempt > 1:
                    stolen += 1
                if die_after_claims is not None \
                        and len(claimed) >= die_after_claims:
                    # Chaos hook: die with leases held, like kill -9.
                    os._exit(137)

            if not claimed:
                if queue.is_drained() or not wait_for_drain:
                    break
                snap = queue.snapshot()
                if snap["running"] == 0 and snap["stale"] == 0:
                    # Nothing claimable, nothing running, nothing to
                    # steal, not drained: no worker anywhere can make
                    # progress.  Require consecutive observations so a
                    # claim mid-transition cannot fake a wedge.
                    idle_wedged += 1
                    if idle_wedged >= 3:
                        break
                else:
                    idle_wedged = 0
                wallclock.sleep(poll_seconds)
                continue
            idle_wedged = 0

            held = {job.spec.job_id: job for job in claimed}
            runner.config.heartbeat = _LeaseRenewer(queue, held,
                                                    lease_seconds)
            sweep = runner.run([job.spec for job in claimed],
                               inline=not pool, use_cache=False,
                               label=f"fabric:{queue.campaign_id[:8]}")
            for job in claimed:
                outcome = sweep[job.spec.job_id]
                if outcome.ok:
                    queue.complete(job, result_record(
                        job.index, job.spec, outcome, worker, job.attempt))
                    executed += 1
                    done += 1
                    continue
                disposition = _dispose_failure(queue, job, outcome,
                                               max_attempts)
                executed += 1
                if disposition == "released":
                    released += 1
                else:
                    failed += 1
                    if disposition == "quarantined":
                        quarantined += 1
    return {"executed": executed, "done": done, "failed": failed,
            "stolen": stolen, "quarantined": quarantined,
            "released": released,
            "disposition": queue.disposition()}


def _dispose_failure(queue: CampaignQueue, job: ClaimedJob,
                     outcome: JobOutcome,
                     max_attempts: Optional[int]) -> str:
    """Route one failed execution: quarantine or release-for-retry.

    Returns ``"quarantined"`` or ``"released"``.  With no attempt
    ceiling (``max_attempts=None``) non-deterministic failures are
    recorded terminally, preserving the pre-quarantine behaviour for
    callers that manage retries themselves.
    """
    failure = outcome.failure
    assert failure is not None
    if failure.deterministic:
        queue.quarantine(job, _diagnosis(queue, job, failure,
                                         REASON_DETERMINISTIC))
        return "quarantined"
    if max_attempts is None:
        queue.complete(job, result_record(job.index, job.spec, outcome,
                                          job.worker, job.attempt))
        return "failed"
    queue.record_failure_event(job, {
        "kind": failure.kind, "error_type": failure.error_type,
        "message": failure.message, "traceback": failure.traceback})
    if job.attempt >= max_attempts:
        queue.quarantine(job, _diagnosis(queue, job, failure,
                                         REASON_EXHAUSTED))
        return "quarantined"
    queue.release(job.index)
    return "released"


def _diagnosis(queue: CampaignQueue, job: ClaimedJob,
               failure: JobFailure, reason: str) -> Diagnosis:
    """Dead-letter diagnosis from a live failure plus the job's ledger
    history (deterministic fields only; see Diagnosis.error_text)."""
    ledger = queue.load_ledger(job.index)
    return Diagnosis(
        job_index=job.index, job_id=job.spec.job_id,
        spec_hash=job.spec.spec_hash(), reason=reason,
        kind=failure.kind, error_type=failure.error_type,
        message=failure.message, traceback=failure.traceback,
        attempts=job.attempt,
        history=tuple(ledger.get("history") or ()))


def run_campaign_serial(queue: CampaignQueue,
                        worker: str = "serial") -> Dict[str, int]:
    """The reference drain: one claim at a time, inline, index order."""
    return work_campaign(queue, worker=worker, jobs=1,
                         wait_for_drain=False, pool=False,
                         lease_seconds=3600.0)


# ----------------------------------------------------------------------
# GA generations as campaign batches


class FabricBatchEvaluator:
    """A GA ``batch_evaluator`` that runs generations through the fabric.

    Each generation's fresh (non-memoised) genomes become one campaign
    batch under ``queue_root``; this driver participates in the drain,
    and any other worker pools pointed at the same root steal work from
    the batch exactly like a manifest campaign.  Scores come back from
    the results in submission order, so the GA trajectory is
    bit-identical to the serial evaluator (pinned by tests).

    The GA announces each generation via :meth:`set_generation`; batch
    campaigns are named ``<label>-gen<N>``, which makes the per-batch
    results (and their convergence) queryable after the fact.
    """

    def __init__(self, evaluator, queue_root, label: str = "ga",
                 pool: bool = False, jobs: int = 1) -> None:
        self.evaluator = evaluator
        self.queue_root = queue_root
        self.label = label
        self.pool = pool
        self.jobs = jobs
        self.generation = 0
        #: campaign ids of the batches run, in order (for queries/tests)
        self.campaign_ids: List[str] = []

    def set_generation(self, generation: int) -> None:
        self.generation = generation

    def __call__(self, genomes: Sequence) -> List[float]:
        specs = [
            JobSpec.create(
                f"{self.label}-gen{self.generation}[{index:03d}]",
                "repro.experiments.common:_score_genome",
                self.evaluator, genome)
            for index, genome in enumerate(genomes)]
        queue = CampaignQueue.submit_specs(
            self.queue_root, f"{self.label}-gen{self.generation}", specs)
        self.campaign_ids.append(queue.campaign_id)
        work_campaign(queue, worker=f"ga:{default_worker_id()}",
                      jobs=self.jobs, pool=self.pool, wait_for_drain=True)
        scores: List[float] = []
        for index in queue.job_indices():
            record = queue.load_result(index)
            if record is None or record["status"] != RESULT_DONE:
                error = (record or {}).get("error", "no result recorded")
                raise RuntimeError(
                    f"GA batch job {index} of generation "
                    f"{self.generation} failed: {error}")
            scores.append(float(record["metrics"]["value"]))
        return scores
