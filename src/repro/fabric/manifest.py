"""Campaign manifests: sweeps declared as data.

A manifest is a small YAML/JSON document that *declares* a sweep --
which callable to run, a parameter grid and/or zipped axes, seeds,
scales, and a per-job timeout/retry policy -- and expands
**deterministically** into content-hashed
:class:`~repro.runner.jobspec.JobSpec` lists with stable campaign and
job identities.  Declaring sweeps as data is what makes them portable
(submit on one machine, drain on several), resumable (the expansion is a
pure function of the manifest, so a re-submit finds the same jobs), and
queryable (the results database records the parameters each job was
expanded with).

Example::

    name: fig12-seeds
    fn: repro.experiments:run_experiment
    fixed:
      name: fig12
    grid:
      scale: [smoke]
      seed: [1, 2, 3]
    policy:
      timeout: 600
      retries: 2

Expansion order is pinned: grid axes are iterated in **sorted key
order** (last key fastest, like an odometer), zip rows after the grid,
in declared row order.  Two parameter conventions are special-cased:
``seed`` and ``scale`` values are copied into the spec's first-class
``seed``/``scale`` fields so the result cache and the database can key
on them without parsing kwargs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..runner.jobspec import JobSpec, content_hash

#: characters of the campaign content hash used as the campaign id
CAMPAIGN_ID_LENGTH = 12

#: manifest keys accepted at the top level (anything else is a typo)
_KNOWN_KEYS = frozenset({"name", "fn", "fixed", "grid", "zip", "policy"})
_KNOWN_POLICY_KEYS = frozenset({"timeout", "retries"})


class ManifestError(ValueError):
    """A campaign manifest is malformed."""


@dataclass(frozen=True)
class Policy:
    """Per-job execution policy applied to every expanded spec."""

    timeout: Optional[float] = None
    retries: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        return {"timeout": self.timeout, "retries": self.retries}


@dataclass(frozen=True)
class Manifest:
    """A validated, normalised campaign declaration.

    ``grid`` maps parameter names to value lists (cartesian product);
    ``zip_axes`` maps parameter names to equal-length lists advanced in
    lockstep (one zipped row per position).  ``fixed`` parameters are
    passed to every job unchanged.
    """

    name: str
    fn: str
    fixed: Tuple[Tuple[str, Any], ...] = ()
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    zip_axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    policy: Policy = field(default_factory=Policy)

    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """The canonical JSON-able form (what the campaign id hashes)."""
        return {
            "name": self.name,
            "fn": self.fn,
            "fixed": {key: value for key, value in self.fixed},
            "grid": {key: list(values) for key, values in self.grid},
            "zip": {key: list(values) for key, values in self.zip_axes},
            "policy": self.policy.as_dict(),
        }

    def campaign_id(self) -> str:
        """Stable content-derived campaign identity.

        Two textually different manifests that normalise to the same
        declaration (reordered keys, JSON vs YAML) share a campaign; any
        change to the declared work produces a new campaign.
        """
        return content_hash(self.as_dict())[:CAMPAIGN_ID_LENGTH]

    def num_jobs(self) -> int:
        total = 1
        for _key, values in self.grid:
            total *= len(values)
        if self.zip_axes:
            total *= len(self.zip_axes[0][1])
        return total

    # ------------------------------------------------------------------

    def expand(self) -> List[JobSpec]:
        """Deterministically expand into one :class:`JobSpec` per job.

        Job ids are ``<name>:<index>`` with a fixed-width zero-padded
        index, so filesystem listings, database ordering, and submission
        order all agree.
        """
        points = self._parameter_points()
        width = max(5, len(str(max(len(points) - 1, 0))))
        specs = []
        for index, params in enumerate(points):
            job_id = f"{self.name}:{index:0{width}d}"
            seed = params.get("seed")
            scale = params.get("scale")
            # Built directly (not via JobSpec.create) because "seed" and
            # "scale" legitimately appear both as call kwargs and as the
            # spec's first-class cache-key fields.
            specs.append(JobSpec(
                job_id=job_id, fn=self.fn,
                kwargs=tuple(sorted(params.items())),
                seed=seed if isinstance(seed, int) else None,
                scale=scale if isinstance(scale, str) else None,
                timeout=self.policy.timeout,
                retries=self.policy.retries))
        return specs

    def _parameter_points(self) -> List[Dict[str, Any]]:
        """Every job's parameter dict, in pinned expansion order."""
        grid_points: List[Dict[str, Any]] = [{}]
        for key, values in self.grid:  # already sorted by key
            grid_points = [dict(point, **{key: value})
                           for point in grid_points for value in values]
        zip_rows: List[Dict[str, Any]] = [{}]
        if self.zip_axes:
            length = len(self.zip_axes[0][1])
            zip_rows = [{key: values[position]
                         for key, values in self.zip_axes}
                        for position in range(length)]
        fixed = dict(self.fixed)
        return [dict(fixed, **point, **row)
                for point in grid_points for row in zip_rows]


# ----------------------------------------------------------------------
# parsing / validation


def parse_manifest(document: Union[Dict[str, Any], str, Path]) -> Manifest:
    """Build a validated :class:`Manifest` from a dict or a file path.

    ``.yaml``/``.yml`` files need PyYAML; ``.json`` (and dicts) work
    everywhere.  Every structural error is reported as a
    :class:`ManifestError` naming the offending key.
    """
    if isinstance(document, (str, Path)):
        document = _load_document(Path(document))
    if not isinstance(document, dict):
        raise ManifestError(f"manifest must be a mapping, "
                            f"got {type(document).__name__}")
    unknown = sorted(set(document) - _KNOWN_KEYS)
    if unknown:
        raise ManifestError(f"unknown manifest key(s) {unknown}; "
                            f"known: {sorted(_KNOWN_KEYS)}")

    name = document.get("name")
    if not isinstance(name, str) or not name:
        raise ManifestError("manifest needs a non-empty string 'name'")
    if any(ch in name for ch in "/\\: \t\n"):
        raise ManifestError(f"manifest name {name!r} must not contain "
                            f"path separators, colons, or whitespace")
    fn = document.get("fn")
    if not isinstance(fn, str) or ":" not in fn:
        raise ManifestError("manifest needs fn: 'module:qualname' "
                            f"(got {fn!r})")

    fixed = _require_mapping(document.get("fixed", {}), "fixed")
    grid_map = _require_mapping(document.get("grid", {}), "grid")
    zip_map = _require_mapping(document.get("zip", {}), "zip")

    grid = []
    for key in sorted(grid_map):
        values = grid_map[key]
        if not isinstance(values, (list, tuple)) or not values:
            raise ManifestError(f"grid axis {key!r} must be a non-empty "
                                f"list (got {values!r})")
        grid.append((key, tuple(values)))

    zip_axes = []
    lengths = set()
    for key, values in zip_map.items():  # declared order is meaningful
        if not isinstance(values, (list, tuple)) or not values:
            raise ManifestError(f"zip axis {key!r} must be a non-empty "
                                f"list (got {values!r})")
        lengths.add(len(values))
        zip_axes.append((key, tuple(values)))
    if len(lengths) > 1:
        raise ManifestError(f"zip axes must share one length, got "
                            f"{sorted(lengths)}")

    overlap = ({key for key, _ in grid} & {key for key, _ in zip_axes}) \
        | (set(fixed) & ({key for key, _ in grid}
                         | {key for key, _ in zip_axes}))
    if overlap:
        raise ManifestError(f"parameter(s) {sorted(overlap)} declared in "
                            f"more than one of fixed/grid/zip")

    policy_map = _require_mapping(document.get("policy", {}), "policy")
    unknown = sorted(set(policy_map) - _KNOWN_POLICY_KEYS)
    if unknown:
        raise ManifestError(f"unknown policy key(s) {unknown}; "
                            f"known: {sorted(_KNOWN_POLICY_KEYS)}")
    timeout = policy_map.get("timeout")
    if timeout is not None and (not isinstance(timeout, (int, float))
                                or timeout <= 0):
        raise ManifestError(f"policy.timeout must be a positive number, "
                            f"got {timeout!r}")
    retries = policy_map.get("retries")
    if retries is not None and (not isinstance(retries, int) or retries < 0):
        raise ManifestError(f"policy.retries must be a non-negative "
                            f"integer, got {retries!r}")

    return Manifest(
        name=name, fn=fn,
        fixed=tuple(sorted(fixed.items())),
        grid=tuple(grid),
        zip_axes=tuple(zip_axes),
        policy=Policy(timeout=float(timeout) if timeout is not None
                      else None,
                      retries=retries))


def _require_mapping(value: Any, key: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise ManifestError(f"manifest {key!r} must be a mapping, "
                            f"got {type(value).__name__}")
    for parameter in value:
        if not isinstance(parameter, str) or not parameter.isidentifier():
            raise ManifestError(f"{key} parameter {parameter!r} is not a "
                                f"valid keyword argument name")
    return value


def _load_document(path: Path) -> Dict[str, Any]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise ManifestError(
                f"{path} is YAML but PyYAML is not installed; "
                f"convert the manifest to JSON") from None
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ManifestError(f"invalid YAML in {path}: {exc}") from exc
    try:
        return json.loads(text)
    except ValueError as exc:
        raise ManifestError(f"invalid JSON in {path}: {exc}") from exc


def figure_manifest(experiments: Sequence[str], scale: str = "smoke",
                    seeds: Sequence[int] = (1,),
                    timeout: Optional[float] = None,
                    retries: Optional[int] = None,
                    name: Optional[str] = None) -> Manifest:
    """A manifest that routes registered experiment figures through the
    fabric (the ``python -m repro.experiments --campaign`` entry point
    and the docs' walkthrough both build their manifests here)."""
    if not experiments:
        raise ManifestError("need at least one experiment id")
    document = {
        "name": name or "figures",
        "fn": "repro.experiments:run_experiment",
        "fixed": {"scale": scale},
        "grid": {"name": sorted(experiments), "seed": [int(s) for s in seeds]},
        "policy": {"timeout": timeout, "retries": retries},
    }
    document["policy"] = {key: value
                          for key, value in document["policy"].items()
                          if value is not None}
    return parse_manifest(document)
