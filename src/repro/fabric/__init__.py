"""``repro.fabric`` -- declarative simulation campaigns as a service.

The experiment harness runs one sweep in one process; the paper's full
evidence base (figure grids x seeds x scales, plus GA budgets) is more
work than one process lifetime should own.  The fabric splits that into
three durable, restartable pieces coordinated only through the
filesystem:

* :mod:`~repro.fabric.manifest` -- YAML/JSON campaign declarations that
  expand deterministically into content-hashed
  :class:`~repro.runner.jobspec.JobSpec` lists with stable campaign and
  job identities.
* :mod:`~repro.fabric.queue` -- a filesystem work queue with atomic
  claims, lease timeouts, and work stealing, so any number of worker
  pools (``python -m repro.fabric work``) drain one campaign
  concurrently and a ``kill -9``'d pool's jobs are recovered -- resumed
  from their checkpoints -- by the survivors.
* :mod:`~repro.fabric.db` -- a SQLite results database rebuilt from the
  queue in sorted job order, making the merged database a pure function
  of the result set: any worker topology is bit-identical to a serial
  drain, and :meth:`~repro.fabric.db.ResultsDb.fingerprint` proves it.

Hardening (this layer is what lets campaigns survive sick machines):

* :mod:`~repro.fabric.storage` -- the single seam through which all
  queue/DB filesystem traffic flows, so a fault injector can wrap it.
* :mod:`~repro.fabric.harden` -- :class:`~repro.fabric.harden.FaultyFS`
  (seeded, deterministic fault injection: torn renames, short writes,
  ENOSPC, EIO, stale reads) and the ``fleetcheck`` chaos scenario.
* poison-job quarantine -- deterministic failures dead-letter on first
  sight, crashes retry up to a budget; ``requeue`` is the escape hatch.
* :mod:`~repro.fabric.supervise` -- N restarted-with-backoff worker
  pools behind liveness probes and a crash-loop circuit breaker.
* :mod:`~repro.fabric.doctor` -- campaign-directory triage and repair.

``python -m repro.fabric`` (submit / work / supervise / status / query /
plot / doctor / requeue / selfcheck / fleetcheck) is the operator
surface; :mod:`~repro.fabric.service` holds the drain loop and the GA
batch adapter those commands share.  Exit codes follow the campaign
*disposition*: 0 ``complete``, 3 ``complete-degraded``, 4 ``wedged``.
"""

from .db import DbError, ResultsDb, extract_metrics, write_csv
from .doctor import DoctorFinding, diagnose
from .harden import (FAULT_CLASSES, FaultPlan, FaultPlanError, FaultyFS,
                     run_fleetcheck)
from .manifest import (Manifest, ManifestError, Policy, figure_manifest,
                       parse_manifest)
from .plot import (PlotError, count_holes, render, render_svg,
                   series_from_table)
from .queue import (DEFAULT_LEASE_SECONDS, DEFAULT_MAX_ATTEMPTS,
                    DISPOSITION_COMPLETE, DISPOSITION_DEGRADED,
                    DISPOSITION_IN_PROGRESS, DISPOSITION_WEDGED,
                    RESULT_DONE, RESULT_FAILED, CampaignQueue,
                    ClaimedJob, Diagnosis, QueueError, find_campaign,
                    list_campaigns)
from .service import (FabricBatchEvaluator, default_worker_id,
                      run_campaign_serial, work_campaign)
from .storage import RealStorage, Storage
from .supervise import run_supervisor

__all__ = [
    "CampaignQueue",
    "ClaimedJob",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "DISPOSITION_COMPLETE",
    "DISPOSITION_DEGRADED",
    "DISPOSITION_IN_PROGRESS",
    "DISPOSITION_WEDGED",
    "DbError",
    "Diagnosis",
    "DoctorFinding",
    "FAULT_CLASSES",
    "FabricBatchEvaluator",
    "FaultPlan",
    "FaultPlanError",
    "FaultyFS",
    "Manifest",
    "ManifestError",
    "Policy",
    "PlotError",
    "QueueError",
    "RESULT_DONE",
    "RESULT_FAILED",
    "RealStorage",
    "ResultsDb",
    "Storage",
    "count_holes",
    "default_worker_id",
    "diagnose",
    "extract_metrics",
    "figure_manifest",
    "find_campaign",
    "list_campaigns",
    "parse_manifest",
    "render",
    "render_svg",
    "run_campaign_serial",
    "run_fleetcheck",
    "run_supervisor",
    "series_from_table",
    "work_campaign",
    "write_csv",
]
