"""``repro.fabric`` -- declarative simulation campaigns as a service.

The experiment harness runs one sweep in one process; the paper's full
evidence base (figure grids x seeds x scales, plus GA budgets) is more
work than one process lifetime should own.  The fabric splits that into
three durable, restartable pieces coordinated only through the
filesystem:

* :mod:`~repro.fabric.manifest` -- YAML/JSON campaign declarations that
  expand deterministically into content-hashed
  :class:`~repro.runner.jobspec.JobSpec` lists with stable campaign and
  job identities.
* :mod:`~repro.fabric.queue` -- a filesystem work queue with atomic
  claims, lease timeouts, and work stealing, so any number of worker
  pools (``python -m repro.fabric work``) drain one campaign
  concurrently and a ``kill -9``'d pool's jobs are recovered -- resumed
  from their checkpoints -- by the survivors.
* :mod:`~repro.fabric.db` -- a SQLite results database rebuilt from the
  queue in sorted job order, making the merged database a pure function
  of the result set: any worker topology is bit-identical to a serial
  drain, and :meth:`~repro.fabric.db.ResultsDb.fingerprint` proves it.

``python -m repro.fabric`` (submit / work / status / query / plot /
selfcheck) is the operator surface; :mod:`~repro.fabric.service` holds
the drain loop and the GA batch adapter those commands share.
"""

from .db import DbError, ResultsDb, extract_metrics, write_csv
from .manifest import (Manifest, ManifestError, Policy, figure_manifest,
                       parse_manifest)
from .plot import PlotError, render, render_svg, series_from_table
from .queue import (DEFAULT_LEASE_SECONDS, RESULT_DONE, RESULT_FAILED,
                    CampaignQueue, ClaimedJob, QueueError, find_campaign,
                    list_campaigns)
from .service import (FabricBatchEvaluator, default_worker_id,
                      run_campaign_serial, work_campaign)

__all__ = [
    "CampaignQueue",
    "ClaimedJob",
    "DEFAULT_LEASE_SECONDS",
    "DbError",
    "FabricBatchEvaluator",
    "Manifest",
    "ManifestError",
    "Policy",
    "PlotError",
    "QueueError",
    "RESULT_DONE",
    "RESULT_FAILED",
    "ResultsDb",
    "default_worker_id",
    "extract_metrics",
    "figure_manifest",
    "find_campaign",
    "list_campaigns",
    "parse_manifest",
    "render",
    "render_svg",
    "run_campaign_serial",
    "series_from_table",
    "work_campaign",
    "write_csv",
]
