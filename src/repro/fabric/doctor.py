"""``fabric doctor``: campaign directory triage and repair.

The queue's protocol is self-healing for the failures it anticipates
(expired leases are stolen, damaged claims are treated as stealable,
double-writes converge).  What it cannot heal alone is *stuck* state: a
claim orphaned next to a finished result, a result file a sick
filesystem truncated, a dead-letter entry whose quarantine was
interrupted between its two writes, tombstone debris from torn renames.
``doctor`` scans one campaign directory, classifies every anomaly into
a :class:`DoctorFinding`, and -- with ``--repair`` -- applies the
narrowest safe fix:

=======================  ==============================================
finding                  repair
=======================  ==============================================
orphaned-claim           release (the result is the commit marker)
damaged-claim            release (holder cannot prove liveness)
damaged-result           delete (the job is deterministic; it re-runs)
dead-letter-no-result    re-quarantine (rewrite the terminal result
                         from the stored diagnosis)
dead-letter-stale        delete the dead entry (the job later
                         succeeded, e.g. after ``requeue``)
damaged-dead-letter      delete (unreadable diagnosis; the failed
                         result still stands)
damaged-ledger           delete (resets the attempt count -- safe:
                         the ceiling re-applies from zero)
debris                   delete (tmp/tombstone files are never
                         load-bearing)
damaged-job              none -- reported only; the spec is the one
                         artifact doctor cannot reconstruct
                         (resubmit the manifest)
damaged-header           none -- resubmit the manifest
=======================  ==============================================

Repairs only ever *remove* stuck state or rewrite it from durable
records; doctor never invents results, so a repaired campaign still
merges to a pure function of its (re-)executed jobs.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path
from typing import Any, Dict, List, Optional

from .queue import (RESULT_DONE, CampaignQueue, ClaimedJob, Diagnosis,
                    QueueError)

#: canonical per-index file name (everything else in a state dir is debris)
_INDEX_FILE = re.compile(r"^\d{6}\.json$")


@dataclasses.dataclass
class DoctorFinding:
    """One anomaly found in a campaign directory."""

    category: str
    path: str
    detail: str
    index: Optional[int] = None
    repair: Optional[str] = None   # None = not repairable by doctor
    repaired: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def _debris(queue: CampaignQueue,
            directory: Path) -> List[DoctorFinding]:
    try:
        names = queue.storage.listdir(directory)
    except OSError:
        return []
    return [DoctorFinding(category="debris",
                          path=str(directory / name),
                          detail="tmp/tombstone file", repair="delete")
            for name in names if not _INDEX_FILE.match(name)]


def diagnose(queue: CampaignQueue,
             repair: bool = False) -> Dict[str, Any]:
    """Scan one campaign; optionally repair.  Returns the report dict
    (``clean``, ``findings``, ``repaired``, ``by_category``)."""
    findings: List[DoctorFinding] = []

    _header, header_state = queue._load_classified(
        queue.directory / "manifest.json", "header")
    if header_state != "ok":
        findings.append(DoctorFinding(
            category="damaged-header",
            path=str(queue.directory / "manifest.json"),
            detail=f"campaign header {header_state}; resubmit the "
                   f"manifest"))

    try:
        indices = queue.job_indices()
    except QueueError as exc:
        findings.append(DoctorFinding(
            category="damaged-header", path=str(queue.jobs_dir),
            detail=str(exc)))
        indices = []

    dead = set(queue.dead_letter_indices())
    for index in indices:
        job_path = queue.jobs_dir / f"{index:06d}.json"
        try:
            queue.load_spec(index)
        except QueueError as exc:
            findings.append(DoctorFinding(
                category="damaged-job", path=str(job_path),
                detail=str(exc), index=index))

        result, result_state = queue._load_classified(
            queue.result_path(index), "result")
        if result_state == "damaged":
            findings.append(DoctorFinding(
                category="damaged-result",
                path=str(queue.result_path(index)),
                detail="result exists but cannot be parsed",
                index=index, repair="delete"))

        claim_path = queue._claim_path(index)
        _claim, claim_state = queue._load_classified(claim_path, "claim")
        if claim_state == "damaged":
            findings.append(DoctorFinding(
                category="damaged-claim", path=str(claim_path),
                detail="claim exists but cannot be parsed",
                index=index, repair="release"))
        elif claim_state == "ok" and result_state == "ok":
            findings.append(DoctorFinding(
                category="orphaned-claim", path=str(claim_path),
                detail="claim held on a job that already has a result",
                index=index, repair="release"))

        _ledger, ledger_state = queue._load_classified(
            queue._ledger_path(index), "ledger")
        if ledger_state == "damaged":
            findings.append(DoctorFinding(
                category="damaged-ledger",
                path=str(queue._ledger_path(index)),
                detail="attempt ledger cannot be parsed",
                index=index, repair="delete"))

        if index in dead:
            diagnosis = queue.load_diagnosis(index)
            if diagnosis is None:
                findings.append(DoctorFinding(
                    category="damaged-dead-letter",
                    path=str(queue.dead_path(index)),
                    detail="dead-letter entry cannot be parsed",
                    index=index, repair="delete"))
            elif result_state != "ok":
                findings.append(DoctorFinding(
                    category="dead-letter-no-result",
                    path=str(queue.dead_path(index)),
                    detail="quarantine was interrupted before its "
                           "terminal result landed",
                    index=index, repair="re-quarantine"))
            elif result is not None \
                    and result.get("status") == RESULT_DONE:
                findings.append(DoctorFinding(
                    category="dead-letter-stale",
                    path=str(queue.dead_path(index)),
                    detail="job has a successful result; the dead "
                           "letter is historical",
                    index=index, repair="delete"))

    for directory in (queue.jobs_dir, queue.claims_dir, queue.results_dir,
                      queue.ledger_dir, queue.dead_dir):
        findings.extend(_debris(queue, directory))

    repaired = 0
    if repair:
        for finding in findings:
            if _apply_repair(queue, finding):
                repaired += 1

    by_category: Dict[str, int] = {}
    for finding in findings:
        by_category[finding.category] = \
            by_category.get(finding.category, 0) + 1
    return {
        "campaign_id": queue.campaign_id,
        "clean": not findings,
        "findings": [finding.as_dict() for finding in findings],
        "by_category": dict(sorted(by_category.items())),
        "repaired": repaired,
        "unrepairable": sum(1 for finding in findings
                            if finding.repair is None),
    }


def _apply_repair(queue: CampaignQueue, finding: DoctorFinding) -> bool:
    """Apply one finding's repair; returns True when something was
    fixed.  Failures are left un-repaired (still listed) rather than
    raised -- doctor must survive the same sick filesystem it triages.
    """
    if finding.repair is None:
        return False
    try:
        if finding.repair == "delete":
            queue.storage.unlink(finding.path)
        elif finding.repair == "release":
            assert finding.index is not None
            queue.release(finding.index)
        elif finding.repair == "re-quarantine":
            assert finding.index is not None
            diagnosis = queue.load_diagnosis(finding.index)
            if diagnosis is None:
                return False
            spec = queue.load_spec(finding.index)
            job = ClaimedJob(index=finding.index, spec=spec,
                             attempt=diagnosis.attempts,
                             claim_path=queue._claim_path(finding.index),
                             worker="doctor")
            queue.quarantine(job, diagnosis)
        else:
            return False
    except (OSError, QueueError):
        return False
    finding.repaired = True
    return True


__all__ = ["DoctorFinding", "diagnose"]
