"""The durable, filesystem-backed campaign work queue.

One campaign is one directory tree under the queue root::

    <root>/<campaign_id>/
        manifest.json          # campaign header (written last = commit)
        jobs/<index>.json      # one serialised JobSpec per job
        claims/<index>.json    # existence = claimed; holds worker + lease
        results/<index>.json   # existence = terminal (done or failed)
        ledger/<index>.json    # durable attempt count + failure history
        dead/<index>.json      # quarantine diagnosis (poison jobs)
        checkpoints/           # per-job simulation checkpoints (runner)

Everything is plain files with **atomic** transitions, so any number of
worker pools -- separate processes today, separate hosts on a shared
filesystem tomorrow -- can drain one campaign concurrently with no
daemon and no locks held across a job:

* **claim** -- ``O_CREAT | O_EXCL`` on the claim file; exactly one
  worker wins, everyone else moves on.
* **lease** -- the claim records an epoch-seconds expiry and the worker
  renews it (atomic rewrite) while the job runs; a worker that dies --
  ``kill -9``, OOM, power loss -- simply stops renewing.
* **steal** -- a worker that finds an *expired* claim renames it away
  (``os.rename`` succeeds for exactly one stealer) and claims the job
  itself, bumping the lease generation.  The runner's checkpoint
  plumbing then resumes the victim's partial simulation instead of
  restarting it.
* **complete** -- the result file is written atomically *before* the
  claim is released, so a job is never observably unclaimed-and-undone
  once finished.

Hardening (PR 10) adds three guarantees on top:

* **Every filesystem byte goes through a storage seam**
  (:mod:`repro.fabric.storage`), so the fault injector
  (:class:`repro.fabric.harden.FaultyFS`) can deterministically model a
  sick filesystem; commit-critical writes (results, dead letters) are
  *verified* -- written, read back, compared, retried.
* **Missing is not damaged.**  A vanished claim is a normal
  mid-transition observation; an unparsable one is corruption, counted
  in a structured :class:`CorruptionLog` surfaced by :meth:`snapshot`
  and treated as stealable (the lease holder cannot prove liveness
  through a damaged file).
* **Poison jobs terminate.**  Attempt counts live in a durable per-job
  ledger (claim files are deleted on release, so they cannot carry the
  count); once ``max_attempts`` is exhausted -- or the failure is
  provably deterministic -- the job is **quarantined**: a failed result
  (so the campaign still drains) plus a picklable :class:`Diagnosis` in
  the dead-letter directory, with ``fabric requeue`` as the escape
  hatch after a fix.

Determinism: results are one file per job, keyed by job index.  The
results database is rebuilt from those files in sorted index order, so
the merged database is a pure function of the *set* of results -- any
worker topology (1 pool or 10, with or without steals) produces a
bit-identical database to a serial drain.  The rare double-execution a
steal race can produce is harmless for the same reason: jobs are
deterministic, so the second result file is byte-identical to the first.
Quarantine records are built exclusively from deterministic failure
fields (never worker names or timestamps), preserving that property for
degraded campaigns.

Wall-clock access (lease deadlines) goes through
:mod:`repro.runner.wallclock` only, and never flows into a result.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..runner import wallclock
from ..runner.fingerprint import code_fingerprint
from ..runner.jobspec import JobSpec
from .manifest import Manifest
from .storage import REAL_STORAGE, Storage

#: seconds a claim stays valid without renewal (workers renew at ~1/3)
DEFAULT_LEASE_SECONDS = 30.0

#: result statuses
RESULT_DONE = "done"
RESULT_FAILED = "failed"

#: default ceiling on claim attempts before a job is quarantined
DEFAULT_MAX_ATTEMPTS = 4

#: campaign dispositions (machine-readable terminal states)
DISPOSITION_COMPLETE = "complete"
DISPOSITION_DEGRADED = "complete-degraded"
DISPOSITION_WEDGED = "wedged"
DISPOSITION_IN_PROGRESS = "in-progress"

#: quarantine reasons
REASON_DETERMINISTIC = "deterministic-error"
REASON_EXHAUSTED = "attempts-exhausted"


class QueueError(RuntimeError):
    """A campaign directory is missing, damaged, or inconsistent."""


# ----------------------------------------------------------------------
# JobSpec <-> JSON (args/kwargs fall back to pickle for non-JSON values)


def encode_spec(spec: JobSpec, index: int) -> Dict[str, Any]:
    """The JSON document stored for one job."""
    return {
        "job_index": index,
        "job_id": spec.job_id,
        "fn": spec.fn,
        "args": _encode_value(list(spec.args)),
        "kwargs": _encode_value([[key, value] for key, value in spec.kwargs]),
        "seed": spec.seed,
        "scale": spec.scale,
        "timeout": spec.timeout,
        "retries": spec.retries,
        "spec_hash": spec.spec_hash(),
    }


def decode_spec(document: Dict[str, Any]) -> Tuple[int, JobSpec]:
    args = _decode_value(document["args"])
    kwargs = _decode_value(document["kwargs"])
    spec = JobSpec(
        job_id=document["job_id"], fn=document["fn"],
        args=tuple(args),
        kwargs=tuple((key, value) for key, value in kwargs),
        seed=document["seed"], scale=document["scale"],
        timeout=document["timeout"], retries=document["retries"])
    stored = document.get("spec_hash")
    if stored is not None and spec.spec_hash() != stored:
        raise QueueError(
            f"job {spec.job_id!r} decoded to spec hash "
            f"{spec.spec_hash()[:12]} but was submitted as {stored[:12]}; "
            f"the queue entry is damaged")
    return document["job_index"], spec


def _encode_value(value: Any) -> Dict[str, Any]:
    """JSON when possible (readable, greppable), pickle+base64 otherwise
    (GA batches carry evaluator objects that JSON cannot express)."""
    try:
        encoded = json.dumps(value)
        if json.loads(encoded) == value:
            return {"format": "json", "data": encoded}
    except (TypeError, ValueError):
        pass
    body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return {"format": "pickle",
            "data": base64.b64encode(body).decode("ascii")}


def _decode_value(envelope: Dict[str, Any]) -> Any:
    if envelope["format"] == "json":
        return json.loads(envelope["data"])
    if envelope["format"] == "pickle":
        return pickle.loads(base64.b64decode(envelope["data"]))
    raise QueueError(f"unknown payload format {envelope['format']!r}")


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Parse a JSON file, treating vanished/partial files as absent.

    Kept for callers that do not care about the missing/damaged
    distinction; the queue itself classifies via ``_load_classified``.
    """
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# corruption accounting


class CorruptionLog:
    """Structured counter of damaged queue files observed by this
    process.

    "Damaged" means a file that *exists* but cannot be read or parsed --
    as opposed to "missing", which is a normal mid-transition
    observation (claims are renamed and deleted concurrently).  The log
    is in-memory per :class:`CampaignQueue` instance: ``snapshot()``
    scans every file, so a fresh ``fabric status`` reports exactly the
    damage visible at that moment.
    """

    MAX_EXAMPLES = 8

    def __init__(self) -> None:
        self.by_category: Dict[str, int] = {}
        self.examples: List[str] = []

    def note(self, category: str, path: Union[str, Path],
             detail: str) -> None:
        self.by_category[category] = self.by_category.get(category, 0) + 1
        if len(self.examples) < self.MAX_EXAMPLES:
            self.examples.append(f"{category}:{Path(path).name}: {detail}")

    @property
    def total(self) -> int:
        return sum(self.by_category.values())

    def as_dict(self) -> Dict[str, Any]:
        return {"total": self.total,
                "by_category": dict(sorted(self.by_category.items())),
                "examples": list(self.examples)}


# ----------------------------------------------------------------------
# quarantine diagnosis


@dataclasses.dataclass(frozen=True)
class Diagnosis:
    """Why a job was quarantined -- the dead-letter record.

    Plain picklable data (strings, ints, tuples of dicts): post-mortem
    tooling can load it without importing fabric internals.  The
    ``history`` is the ledger's failure events, oldest first.
    """

    job_index: int
    job_id: str
    spec_hash: str
    reason: str          # REASON_DETERMINISTIC | REASON_EXHAUSTED
    kind: str            # runner taxonomy: "error" | "timeout" | "crash"
    error_type: str
    message: str
    traceback: str
    attempts: int
    history: Tuple[Dict[str, Any], ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        document = dataclasses.asdict(self)
        document["history"] = list(self.history)
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "Diagnosis":
        fields = dict(document)
        fields["history"] = tuple(fields.get("history") or ())
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in fields.items()
                      if key in known})

    def error_text(self) -> str:
        """The deterministic ``error`` column for the quarantine result.

        Built only from spec-determined facts -- never worker names,
        attempt counts, or timestamps -- so any drain topology writes
        the identical column for the same poison job.  Deterministic
        errors carry their (spec-determined) type and message;
        exhausted retries deliberately do *not* embed the last failure,
        because which crash/timeout message a flaky job died with last
        is machine-state luck -- the full story lives in the
        (unfingerprinted) dead-letter diagnosis.
        """
        if self.reason == REASON_EXHAUSTED:
            return (f"quarantined[{self.reason}]: retry budget exhausted "
                    f"(non-deterministic failures)")
        return (f"quarantined[{self.reason}]: "
                f"{self.kind}: {self.error_type}: {self.message}")


def quarantine_record(index: int, spec: JobSpec,
                      diagnosis: Diagnosis) -> Dict[str, Any]:
    """The terminal (failed) result written for a quarantined job.

    Mirrors :func:`repro.fabric.service.result_record`'s failed shape;
    deterministic fields depend only on the spec and the failure
    taxonomy, so any drain topology writes a byte-identical record.
    """
    return {
        "job_index": index, "job_id": spec.job_id,
        "spec_hash": spec.spec_hash(),
        "seed": spec.seed, "scale": spec.scale,
        "status": RESULT_FAILED,
        "metrics": {},
        "value_json": None,
        "error": diagnosis.error_text(),
        "code_fingerprint": code_fingerprint(),
        "attempts": diagnosis.attempts,
        "lease_generation": diagnosis.attempts,
        "worker": "quarantine",
        "duration": 0.0,
    }


# ----------------------------------------------------------------------
# claims


class ClaimedJob:
    """A job this worker currently holds the lease on."""

    __slots__ = ("index", "spec", "attempt", "claim_path", "worker")

    def __init__(self, index: int, spec: JobSpec, attempt: int,
                 claim_path: Path, worker: str = "?") -> None:
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.claim_path = claim_path
        self.worker = worker


class CampaignQueue:
    """One campaign's directory tree; see the module docstring."""

    def __init__(self, root: Union[str, Path], campaign_id: str,
                 storage: Optional[Storage] = None) -> None:
        self.root = Path(root)
        self.campaign_id = campaign_id
        self.storage = storage or REAL_STORAGE
        self.directory = self.root / campaign_id
        self.jobs_dir = self.directory / "jobs"
        self.claims_dir = self.directory / "claims"
        self.results_dir = self.directory / "results"
        self.ledger_dir = self.directory / "ledger"
        self.dead_dir = self.directory / "dead"
        self.checkpoints_dir = self.directory / "checkpoints"
        self.corruption = CorruptionLog()

    # ------------------------------------------------------------------
    # classified IO

    def _load_classified(self, path: Path,
                         category: str) -> Tuple[Optional[Dict[str, Any]],
                                                 str]:
        """Read one queue JSON file, distinguishing missing from
        damaged.  Returns ``(document, state)`` with state one of
        ``"ok"``, ``"missing"``, ``"damaged"``; damage is recorded in
        :attr:`corruption`."""
        try:
            text = self.storage.read_text(path)
        except FileNotFoundError:
            return None, "missing"
        except OSError as exc:
            self.corruption.note(category, path, f"unreadable: {exc}")
            return None, "damaged"
        try:
            document = json.loads(text)
        except ValueError as exc:
            self.corruption.note(category, path, f"unparsable: {exc}")
            return None, "damaged"
        if not isinstance(document, dict):
            self.corruption.note(category, path,
                                 f"not an object: {type(document).__name__}")
            return None, "damaged"
        return document, "ok"

    def _write_verified(self, path: Path, document: Dict[str, Any],
                        category: str, attempts: int = 5) -> None:
        """Write a commit-critical file and prove it landed.

        Atomic replace alone cannot catch a short write or a lying
        filesystem; commit markers (results, dead letters, headers) are
        therefore read back and compared, with bounded retries.  All
        retries exhausted is corruption the caller must not paper over.
        """
        text = json.dumps(document, sort_keys=True, indent=1)
        detail = "unknown"
        for _ in range(attempts):
            try:
                self.storage.write_atomic(path, text)
                if self.storage.read_text(path) == text:
                    return
                detail = "read-back mismatch (short or stale write)"
            except OSError as exc:
                detail = str(exc)
        self.corruption.note(category, path,
                             f"verified write failed: {detail}")
        raise QueueError(f"could not durably write {path} after "
                         f"{attempts} attempt(s): {detail}")

    # ------------------------------------------------------------------
    # submission

    @classmethod
    def submit(cls, root: Union[str, Path], manifest: Manifest,
               storage: Optional[Storage] = None) -> "CampaignQueue":
        """Expand ``manifest`` into a campaign directory.

        Idempotent: the campaign id is content-derived, so re-submitting
        the same manifest finds the existing campaign (and its results)
        instead of duplicating work.  ``manifest.json`` is written last,
        as the commit marker -- a half-submitted campaign (killed
        mid-write) has no header and is re-submitted from scratch.
        """
        queue = cls(root, manifest.campaign_id(), storage=storage)
        if queue.is_submitted():
            return queue
        specs = manifest.expand()
        header = {
            "campaign_id": queue.campaign_id,
            "name": manifest.name,
            "num_jobs": len(specs),
            "manifest": manifest.as_dict(),
        }
        queue._populate(specs, header)
        return queue

    @classmethod
    def submit_specs(cls, root: Union[str, Path], name: str,
                     specs: List[JobSpec],
                     storage: Optional[Storage] = None) -> "CampaignQueue":
        """Submit pre-built specs (the GA batch path) as a campaign.

        The campaign id derives from the spec hashes, so identical
        batches dedupe exactly like manifest campaigns.
        """
        from ..runner.jobspec import content_hash

        if not specs:
            raise QueueError("cannot submit an empty campaign")
        campaign_id = content_hash(
            {"name": name,
             "specs": [spec.spec_hash() for spec in specs]})[:12]
        queue = cls(root, campaign_id, storage=storage)
        if queue.is_submitted():
            return queue
        header = {"campaign_id": campaign_id, "name": name,
                  "num_jobs": len(specs), "manifest": None}
        queue._populate(specs, header)
        return queue

    def _populate(self, specs: List[JobSpec],
                  header: Dict[str, Any]) -> None:
        for directory in (self.jobs_dir, self.claims_dir, self.results_dir,
                          self.ledger_dir, self.dead_dir,
                          self.checkpoints_dir):
            self.storage.mkdir(directory)
        for index, spec in enumerate(specs):
            self._write_verified(self.jobs_dir / f"{index:06d}.json",
                                 encode_spec(spec, index), "job")
        self._write_verified(self.directory / "manifest.json", header,
                             "header")

    def is_submitted(self) -> bool:
        return self.storage.exists(self.directory / "manifest.json")

    def header(self) -> Dict[str, Any]:
        document, _state = self._load_classified(
            self.directory / "manifest.json", "header")
        if document is None:
            raise QueueError(f"{self.directory} holds no submitted "
                             f"campaign (missing/unreadable manifest.json)")
        return document

    # ------------------------------------------------------------------
    # enumeration

    def job_indices(self) -> List[int]:
        try:
            names = self.storage.listdir(self.jobs_dir)
        except OSError as exc:
            raise QueueError(f"cannot list jobs in {self.jobs_dir}: {exc}"
                             ) from exc
        return sorted(int(name[:-5]) for name in names
                      if name.endswith(".json") and name[:-5].isdigit())

    def load_spec(self, index: int) -> JobSpec:
        document, state = self._load_classified(
            self.jobs_dir / f"{index:06d}.json", "job")
        if document is None:
            raise QueueError(f"job {index} {state} in {self.jobs_dir}")
        _index, spec = decode_spec(document)
        return spec

    def result_path(self, index: int) -> Path:
        return self.results_dir / f"{index:06d}.json"

    def has_result(self, index: int) -> bool:
        return self.storage.exists(self.result_path(index))

    def load_result(self, index: int) -> Optional[Dict[str, Any]]:
        document, _state = self._load_classified(self.result_path(index),
                                                 "result")
        return document

    # ------------------------------------------------------------------
    # attempt ledger

    def _ledger_path(self, index: int) -> Path:
        return self.ledger_dir / f"{index:06d}.json"

    def load_ledger(self, index: int) -> Dict[str, Any]:
        """The durable attempt record: ``{"attempts": N, "history":
        [events]}`` (zeros when the job has never been claimed)."""
        document, _state = self._load_classified(self._ledger_path(index),
                                                 "ledger")
        if document is None:
            return {"attempts": 0, "history": []}
        document.setdefault("attempts", 0)
        document.setdefault("history", [])
        return document

    def _store_ledger(self, index: int, ledger: Dict[str, Any]) -> None:
        """Best-effort ledger write: the ledger is advisory bookkeeping
        (it bounds retries); losing one write must not fail the claim
        that triggered it."""
        self.storage.mkdir(self.ledger_dir)
        try:
            self._write_verified(self._ledger_path(index), ledger,
                                 "ledger", attempts=3)
        except QueueError:
            # Already counted by _write_verified's corruption note.
            return  # simlint: disable=SIM008

    def record_failure_event(self, job: ClaimedJob,
                             event: Dict[str, Any]) -> None:
        """Append one failure event to the job's ledger history (called
        by the service before releasing a claim for retry)."""
        ledger = self.load_ledger(job.index)
        ledger["attempts"] = max(int(ledger.get("attempts", 0)),
                                 job.attempt)
        ledger["history"] = list(ledger.get("history", []))
        ledger["history"].append(dict(event, attempt=job.attempt))
        self._store_ledger(job.index, ledger)

    # ------------------------------------------------------------------
    # the claim/lease/steal protocol

    def _claim_path(self, index: int) -> Path:
        return self.claims_dir / f"{index:06d}.json"

    def claim_next(self, worker: str,
                   lease_seconds: float = DEFAULT_LEASE_SECONDS,
                   max_attempts: Optional[int] = None
                   ) -> Optional[ClaimedJob]:
        """Claim the lowest-index job that is neither done nor validly
        claimed; returns None when no job is currently claimable (which
        does *not* mean the campaign is finished -- other workers may
        hold live leases).

        ``max_attempts`` is the poison-job ceiling: a job whose durable
        attempt count already reached it is quarantined instead of
        claimed, so a deterministic crasher cannot be stolen and re-run
        forever.
        """
        for index in self.job_indices():
            if self.has_result(index):
                continue
            claimed = self._try_claim(index, worker, lease_seconds,
                                      max_attempts)
            if claimed is not None:
                return claimed
        return None

    def _try_claim(self, index: int, worker: str, lease_seconds: float,
                   max_attempts: Optional[int] = None
                   ) -> Optional[ClaimedJob]:
        claim_path = self._claim_path(index)
        claim, state = self._load_classified(claim_path, "claim")
        chain_attempt = 0
        if state == "ok":
            expires_at = claim.get("expires_at")
            if isinstance(expires_at, (int, float)) \
                    and expires_at > wallclock.epoch():
                return None
            chain_attempt = int(claim.get("attempt", 0))
        if state in ("ok", "damaged"):
            # Expired -- or damaged, which cannot prove liveness either
            # way: steal.  rename succeeds for exactly one stealer; the
            # loser's error means someone beat us to it (or the original
            # worker completed at the wire).
            stale = claim_path.with_name(
                f".{claim_path.name}.stale.{worker}.{os.getpid()}")
            try:
                self.storage.rename(claim_path, stale)
            except OSError:
                return None
            try:
                self.storage.unlink(stale)
            except OSError:
                # A leftover tombstone is cosmetic, never load-bearing.
                pass  # simlint: disable=SIM008
        # The claim chain dies with the claim file; the ledger survives
        # releases, so a poison job's count only ever goes up.
        ledger = self.load_ledger(index)
        attempt = max(chain_attempt, int(ledger.get("attempts", 0))) + 1
        body = json.dumps(
            {"worker": worker, "attempt": attempt,
             "expires_at": wallclock.epoch() + lease_seconds,
             "lease_seconds": lease_seconds},
            sort_keys=True)
        try:
            self.storage.create_exclusive(claim_path, body)
        except FileExistsError:
            return None  # lost the race to another claimer
        except OSError:
            return None  # transient storage fault; retry on a later pass
        if self.has_result(index):
            # The previous holder completed between our expiry check and
            # our claim; undo and move on.
            self.release(index)
            return None
        try:
            spec = self.load_spec(index)
        except QueueError:
            # Damaged job file: unrunnable until `fabric doctor --repair`
            # (or resubmission) restores it.  Noted by load_spec.
            self.release(index)
            return None
        if max_attempts is not None and attempt > max_attempts:
            self._quarantine_exhausted(index, spec, ledger, max_attempts)
            return None
        ledger["attempts"] = attempt
        self._store_ledger(index, ledger)
        return ClaimedJob(index=index, spec=spec, attempt=attempt,
                          claim_path=claim_path, worker=worker)

    def renew(self, job: ClaimedJob,
              lease_seconds: float = DEFAULT_LEASE_SECONDS) -> bool:
        """Extend the lease on a held claim (atomic rewrite).

        Returns False -- without writing -- when the claim is no longer
        ours: released (renewing would resurrect a dead claim and wedge
        the job until it expires again) or stolen by another worker
        (their lease, their renewal).  A damaged claim file is rewritten:
        we verifiably hold the lease, and our identity heals it.
        """
        current, state = self._load_classified(job.claim_path, "claim")
        if state == "missing":
            return False
        if state == "ok" \
                and str(current.get("worker", "?")) != job.worker:
            return False
        body = json.dumps(
            {"worker": job.worker, "attempt": job.attempt,
             "expires_at": wallclock.epoch() + lease_seconds,
             "lease_seconds": lease_seconds},
            sort_keys=True)
        try:
            self.storage.write_atomic(job.claim_path, body)
        except OSError:
            # A failed renewal is survivable (the next heartbeat
            # retries); the lease may expire early and be stolen, which
            # the steal protocol already handles.
            return False
        return True

    def release(self, index: int) -> None:
        """Drop a claim without recording a result (graceful shutdown)."""
        try:
            self.storage.unlink(self._claim_path(index))
        except FileNotFoundError:
            # Already stolen or never created; nothing held either way.
            return
        except OSError as exc:
            # The claim exists but cannot be removed: it will look held
            # until its lease expires, then be stolen.  Count it.
            self.corruption.note("claim", self._claim_path(index),
                                 f"release failed: {exc}")
            return

    # ------------------------------------------------------------------
    # results

    def complete(self, job: ClaimedJob, record: Dict[str, Any]) -> None:
        """Persist a terminal result, then release the claim.

        Idempotent: if a steal race double-ran the job, the second
        writer atomically replaces the first with a byte-identical file
        (deterministic jobs), so observers never see a conflict.  The
        result is the campaign's commit marker, so it is written
        *verified* -- a short write here would silently lose the job.
        """
        self._write_verified(self.result_path(job.index), record, "result")
        self.release(job.index)

    def is_drained(self) -> bool:
        """Every job has a terminal result."""
        return all(self.has_result(index) for index in self.job_indices())

    # ------------------------------------------------------------------
    # quarantine / dead letters

    def dead_path(self, index: int) -> Path:
        return self.dead_dir / f"{index:06d}.json"

    def dead_letter_indices(self) -> List[int]:
        try:
            names = self.storage.listdir(self.dead_dir)
        except OSError:
            return []
        return sorted(int(name[:-5]) for name in names
                      if name.endswith(".json") and name[:-5].isdigit())

    def load_diagnosis(self, index: int) -> Optional[Diagnosis]:
        document, _state = self._load_classified(self.dead_path(index),
                                                 "dead-letter")
        if document is None:
            return None
        try:
            return Diagnosis.from_dict(document)
        except TypeError as exc:
            self.corruption.note("dead-letter", self.dead_path(index),
                                 f"bad diagnosis: {exc}")
            return None

    def quarantine(self, job: ClaimedJob, diagnosis: Diagnosis) -> None:
        """Move a poison job to the dead-letter directory.

        Writes the diagnosis first, then the failed result (the commit
        marker: the campaign counts the job terminal from that moment),
        then releases the claim.  A crash between the two leaves a
        claimed-but-undone job that is simply quarantined again on the
        next claim attempt -- never lost, never retried forever.
        """
        self.storage.mkdir(self.dead_dir)
        self._write_verified(self.dead_path(job.index), diagnosis.as_dict(),
                             "dead-letter")
        self._write_verified(self.result_path(job.index),
                             quarantine_record(job.index, job.spec,
                                               diagnosis), "result")
        self.release(job.index)

    def _quarantine_exhausted(self, index: int, spec: JobSpec,
                              ledger: Dict[str, Any],
                              max_attempts: int) -> None:
        """Claim-time quarantine: the durable attempt count is spent.

        Covers the worker-died-every-time case where no live failure
        object exists; the diagnosis reconstructs from the last ledger
        event (or an explicit placeholder when the worker never survived
        long enough to record one).
        """
        history = tuple(ledger.get("history") or ())
        last: Dict[str, Any] = dict(history[-1]) if history else {}
        diagnosis = Diagnosis(
            job_index=index, job_id=spec.job_id,
            spec_hash=spec.spec_hash(),
            reason=REASON_EXHAUSTED,
            kind=str(last.get("kind", "crash")),
            error_type=str(last.get("error_type", "WorkerLost")),
            message=str(last.get("message",
                                 "no failure recorded before the worker "
                                 "died")),
            traceback=str(last.get("traceback", "")),
            attempts=max_attempts,
            history=history)
        job = ClaimedJob(index=index, spec=spec, attempt=max_attempts,
                         claim_path=self._claim_path(index),
                         worker="quarantine")
        self.quarantine(job, diagnosis)

    def requeue(self, index: int) -> Diagnosis:
        """The dead-letter escape hatch: make a quarantined job runnable
        again (after a code fix), clearing its result, ledger, and dead
        letter.  Refuses to clear a successful result.  Returns the
        diagnosis that was cleared."""
        diagnosis = self.load_diagnosis(index)
        if diagnosis is None:
            raise QueueError(f"job {index} has no dead-letter entry in "
                             f"{self.dead_dir}")
        record = self.load_result(index)
        if record is not None and record.get("status") == RESULT_DONE:
            raise QueueError(f"job {index} has a successful result; "
                             f"refusing to requeue over it")
        for path in (self.dead_path(index), self.result_path(index),
                     self._ledger_path(index), self._claim_path(index)):
            try:
                self.storage.unlink(path)
            except OSError:
                # Missing is fine (requeue is idempotent); anything else
                # surfaces on the next claim attempt.
                pass  # simlint: disable=SIM008
        return diagnosis

    # ------------------------------------------------------------------
    # status

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time campaign progress for ``fabric status``.

        Beyond the live counts, reports the degraded-mode bookkeeping:
        ``damaged`` (result files that exist but cannot be parsed --
        holes until repaired), ``quarantined``/``dead_letter`` (poison
        jobs), ``unrunnable`` (pending jobs whose spec is damaged), the
        structured ``corruption`` log, and the campaign
        ``disposition``.
        """
        now = wallclock.epoch()
        done = failed = running = stale = pending = 0
        damaged = quarantined = unrunnable = 0
        durations: List[float] = []
        workers: Dict[str, int] = {}
        for index in self.job_indices():
            record, result_state = self._load_classified(
                self.result_path(index), "result")
            if result_state == "damaged":
                damaged += 1
                continue
            if record is not None:
                if record.get("status") == RESULT_DONE:
                    done += 1
                    duration = record.get("duration")
                    if isinstance(duration, (int, float)) and duration > 0:
                        durations.append(float(duration))
                else:
                    failed += 1
                    if str(record.get("error", "")
                           ).startswith("quarantined["):
                        quarantined += 1
                continue
            claim, claim_state = self._load_classified(
                self._claim_path(index), "claim")
            expires_at = (claim or {}).get("expires_at")
            if claim_state == "missing":
                pending += 1
                if not self._spec_loads(index):
                    unrunnable += 1
            elif claim_state == "ok" \
                    and isinstance(expires_at, (int, float)) \
                    and expires_at > now:
                running += 1
                name = str(claim.get("worker", "?"))
                workers[name] = workers.get(name, 0) + 1
            else:
                # Expired, damaged, or expiry-less: stealable.
                stale += 1
        snapshot = {
            "campaign_id": self.campaign_id,
            "total": (done + failed + running + stale + pending + damaged),
            "done": done, "failed": failed, "running": running,
            "stale": stale, "pending": pending,
            "damaged": damaged, "quarantined": quarantined,
            "unrunnable": unrunnable,
            "dead_letter": len(self.dead_letter_indices()),
            "workers": {name: workers[name] for name in sorted(workers)},
            "mean_duration": (sum(durations) / len(durations)
                              if durations else None),
            "corruption": self.corruption.as_dict(),
        }
        snapshot["disposition"] = self.disposition(snapshot)
        return snapshot

    def _spec_loads(self, index: int) -> bool:
        try:
            self.load_spec(index)
        except QueueError:
            return False
        return True

    def disposition(self,
                    snapshot: Optional[Dict[str, Any]] = None) -> str:
        """The campaign's machine-readable state.

        * ``complete`` -- every job succeeded.
        * ``complete-degraded`` -- every job is terminal, but some
          failed, were quarantined, or left damaged results: figures
          render with explicit holes, and callers exit 3.
        * ``wedged`` -- outstanding jobs exist that no worker can ever
          claim (damaged specs) and nothing is running: the campaign
          will not terminate without repair; callers exit 4.
        * ``in-progress`` -- anything else.
        """
        if snapshot is None:
            snapshot = self.snapshot()
        outstanding = (snapshot["pending"] + snapshot["running"]
                       + snapshot["stale"])
        if outstanding == 0:
            if snapshot["failed"] == 0 and snapshot.get("damaged", 0) == 0:
                return DISPOSITION_COMPLETE
            return DISPOSITION_DEGRADED
        if snapshot["running"] == 0 and snapshot["stale"] == 0 \
                and snapshot.get("unrunnable", 0) >= snapshot["pending"]:
            return DISPOSITION_WEDGED
        return DISPOSITION_IN_PROGRESS

    @staticmethod
    def eta_seconds(snapshot: Dict[str, Any]) -> Optional[float]:
        """Cross-pool ETA from a :meth:`snapshot`: mean seconds per
        completed job, scaled by outstanding jobs over live workers.
        Mirrors the runner's single-pool estimate, with the same guards
        (no completions or a zero rate -> unknown, not zero)."""
        outstanding = (snapshot["pending"] + snapshot["running"]
                       + snapshot["stale"])
        if outstanding <= 0:
            return 0.0
        mean = snapshot.get("mean_duration")
        if not mean or mean <= 0:
            return None
        active = max(1, sum(snapshot["workers"].values()))
        return mean * outstanding / active


def list_campaigns(root: Union[str, Path]) -> List[CampaignQueue]:
    """Every submitted campaign under a queue root, sorted by id."""
    root = Path(root)
    queues = []
    if not root.is_dir():
        return queues
    for name in sorted(os.listdir(root)):
        queue = CampaignQueue(root, name)
        if queue.is_submitted():
            queues.append(queue)
    return queues


def find_campaign(root: Union[str, Path],
                  reference: Optional[str]) -> CampaignQueue:
    """Resolve a campaign by id, id prefix, or name; ``None`` resolves
    only when the root holds exactly one campaign."""
    queues = list_campaigns(root)
    if not queues:
        raise QueueError(f"no submitted campaigns under {root}")
    if reference is None:
        if len(queues) == 1:
            return queues[0]
        ids = [queue.campaign_id for queue in queues]
        raise QueueError(f"{root} holds {len(queues)} campaigns {ids}; "
                         f"pass --campaign to pick one")
    matches = [queue for queue in queues
               if queue.campaign_id == reference
               or queue.campaign_id.startswith(reference)
               or queue.header().get("name") == reference]
    if not matches:
        raise QueueError(f"no campaign matching {reference!r} under {root}")
    if len(matches) > 1:
        ids = [queue.campaign_id for queue in matches]
        raise QueueError(f"{reference!r} is ambiguous: {ids}")
    return matches[0]
