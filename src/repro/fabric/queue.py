"""The durable, filesystem-backed campaign work queue.

One campaign is one directory tree under the queue root::

    <root>/<campaign_id>/
        manifest.json          # campaign header (written last = commit)
        jobs/<index>.json      # one serialised JobSpec per job
        claims/<index>.json    # existence = claimed; holds worker + lease
        results/<index>.json   # existence = terminal (done or failed)
        checkpoints/           # per-job simulation checkpoints (runner)

Everything is plain files with **atomic** transitions, so any number of
worker pools -- separate processes today, separate hosts on a shared
filesystem tomorrow -- can drain one campaign concurrently with no
daemon and no locks held across a job:

* **claim** -- ``O_CREAT | O_EXCL`` on the claim file; exactly one
  worker wins, everyone else moves on.
* **lease** -- the claim records an epoch-seconds expiry and the worker
  renews it (atomic rewrite) while the job runs; a worker that dies --
  ``kill -9``, OOM, power loss -- simply stops renewing.
* **steal** -- a worker that finds an *expired* claim renames it away
  (``os.rename`` succeeds for exactly one stealer) and claims the job
  itself, bumping the lease generation.  The runner's checkpoint
  plumbing then resumes the victim's partial simulation instead of
  restarting it.
* **complete** -- the result file is written atomically *before* the
  claim is released, so a job is never observably unclaimed-and-undone
  once finished.

Determinism: results are one file per job, keyed by job index.  The
results database is rebuilt from those files in sorted index order, so
the merged database is a pure function of the *set* of results -- any
worker topology (1 pool or 10, with or without steals) produces a
bit-identical database to a serial drain.  The rare double-execution a
steal race can produce is harmless for the same reason: jobs are
deterministic, so the second result file is byte-identical to the first.

Wall-clock access (lease deadlines) goes through
:mod:`repro.runner.wallclock` only, and never flows into a result.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..runner import wallclock
from ..runner.jobspec import JobSpec
from .manifest import Manifest

#: seconds a claim stays valid without renewal (workers renew at ~1/3)
DEFAULT_LEASE_SECONDS = 30.0

#: result statuses
RESULT_DONE = "done"
RESULT_FAILED = "failed"


class QueueError(RuntimeError):
    """A campaign directory is missing, damaged, or inconsistent."""


# ----------------------------------------------------------------------
# JobSpec <-> JSON (args/kwargs fall back to pickle for non-JSON values)


def encode_spec(spec: JobSpec, index: int) -> Dict[str, Any]:
    """The JSON document stored for one job."""
    return {
        "job_index": index,
        "job_id": spec.job_id,
        "fn": spec.fn,
        "args": _encode_value(list(spec.args)),
        "kwargs": _encode_value([[key, value] for key, value in spec.kwargs]),
        "seed": spec.seed,
        "scale": spec.scale,
        "timeout": spec.timeout,
        "retries": spec.retries,
        "spec_hash": spec.spec_hash(),
    }


def decode_spec(document: Dict[str, Any]) -> Tuple[int, JobSpec]:
    args = _decode_value(document["args"])
    kwargs = _decode_value(document["kwargs"])
    spec = JobSpec(
        job_id=document["job_id"], fn=document["fn"],
        args=tuple(args),
        kwargs=tuple((key, value) for key, value in kwargs),
        seed=document["seed"], scale=document["scale"],
        timeout=document["timeout"], retries=document["retries"])
    stored = document.get("spec_hash")
    if stored is not None and spec.spec_hash() != stored:
        raise QueueError(
            f"job {spec.job_id!r} decoded to spec hash "
            f"{spec.spec_hash()[:12]} but was submitted as {stored[:12]}; "
            f"the queue entry is damaged")
    return document["job_index"], spec


def _encode_value(value: Any) -> Dict[str, Any]:
    """JSON when possible (readable, greppable), pickle+base64 otherwise
    (GA batches carry evaluator objects that JSON cannot express)."""
    try:
        encoded = json.dumps(value)
        if json.loads(encoded) == value:
            return {"format": "json", "data": encoded}
    except (TypeError, ValueError):
        pass
    body = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return {"format": "pickle",
            "data": base64.b64encode(body).decode("ascii")}


def _decode_value(envelope: Dict[str, Any]) -> Any:
    if envelope["format"] == "json":
        return json.loads(envelope["data"])
    if envelope["format"] == "pickle":
        return pickle.loads(base64.b64decode(envelope["data"]))
    raise QueueError(f"unknown payload format {envelope['format']!r}")


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Parse a JSON file, treating vanished/partial files as absent.

    Claim files are replaced and renamed concurrently by other workers;
    observing a mid-transition file is normal, not an error.
    """
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# claims


class ClaimedJob:
    """A job this worker currently holds the lease on."""

    __slots__ = ("index", "spec", "attempt", "claim_path")

    def __init__(self, index: int, spec: JobSpec, attempt: int,
                 claim_path: Path) -> None:
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.claim_path = claim_path


class CampaignQueue:
    """One campaign's directory tree; see the module docstring."""

    def __init__(self, root: Union[str, Path], campaign_id: str) -> None:
        self.root = Path(root)
        self.campaign_id = campaign_id
        self.directory = self.root / campaign_id
        self.jobs_dir = self.directory / "jobs"
        self.claims_dir = self.directory / "claims"
        self.results_dir = self.directory / "results"
        self.checkpoints_dir = self.directory / "checkpoints"

    # ------------------------------------------------------------------
    # submission

    @classmethod
    def submit(cls, root: Union[str, Path],
               manifest: Manifest) -> "CampaignQueue":
        """Expand ``manifest`` into a campaign directory.

        Idempotent: the campaign id is content-derived, so re-submitting
        the same manifest finds the existing campaign (and its results)
        instead of duplicating work.  ``manifest.json`` is written last,
        as the commit marker -- a half-submitted campaign (killed
        mid-write) has no header and is re-submitted from scratch.
        """
        queue = cls(root, manifest.campaign_id())
        if queue.is_submitted():
            return queue
        specs = manifest.expand()
        for directory in (queue.jobs_dir, queue.claims_dir,
                          queue.results_dir, queue.checkpoints_dir):
            directory.mkdir(parents=True, exist_ok=True)
        for index, spec in enumerate(specs):
            _write_atomic(queue.jobs_dir / f"{index:06d}.json",
                          json.dumps(encode_spec(spec, index),
                                     sort_keys=True, indent=1))
        header = {
            "campaign_id": queue.campaign_id,
            "name": manifest.name,
            "num_jobs": len(specs),
            "manifest": manifest.as_dict(),
        }
        _write_atomic(queue.directory / "manifest.json",
                      json.dumps(header, sort_keys=True, indent=1))
        return queue

    @classmethod
    def submit_specs(cls, root: Union[str, Path], name: str,
                     specs: List[JobSpec]) -> "CampaignQueue":
        """Submit pre-built specs (the GA batch path) as a campaign.

        The campaign id derives from the spec hashes, so identical
        batches dedupe exactly like manifest campaigns.
        """
        from ..runner.jobspec import content_hash

        if not specs:
            raise QueueError("cannot submit an empty campaign")
        campaign_id = content_hash(
            {"name": name,
             "specs": [spec.spec_hash() for spec in specs]})[:12]
        queue = cls(root, campaign_id)
        if queue.is_submitted():
            return queue
        for directory in (queue.jobs_dir, queue.claims_dir,
                          queue.results_dir, queue.checkpoints_dir):
            directory.mkdir(parents=True, exist_ok=True)
        for index, spec in enumerate(specs):
            _write_atomic(queue.jobs_dir / f"{index:06d}.json",
                          json.dumps(encode_spec(spec, index),
                                     sort_keys=True, indent=1))
        header = {"campaign_id": campaign_id, "name": name,
                  "num_jobs": len(specs), "manifest": None}
        _write_atomic(queue.directory / "manifest.json",
                      json.dumps(header, sort_keys=True, indent=1))
        return queue

    def is_submitted(self) -> bool:
        return (self.directory / "manifest.json").exists()

    def header(self) -> Dict[str, Any]:
        document = _read_json(self.directory / "manifest.json")
        if document is None:
            raise QueueError(f"{self.directory} holds no submitted "
                             f"campaign (missing/unreadable manifest.json)")
        return document

    # ------------------------------------------------------------------
    # enumeration

    def job_indices(self) -> List[int]:
        try:
            names = os.listdir(self.jobs_dir)
        except OSError as exc:
            raise QueueError(f"cannot list jobs in {self.jobs_dir}: {exc}"
                             ) from exc
        return sorted(int(name[:-5]) for name in names
                      if name.endswith(".json"))

    def load_spec(self, index: int) -> JobSpec:
        document = _read_json(self.jobs_dir / f"{index:06d}.json")
        if document is None:
            raise QueueError(f"job {index} missing from {self.jobs_dir}")
        _index, spec = decode_spec(document)
        return spec

    def result_path(self, index: int) -> Path:
        return self.results_dir / f"{index:06d}.json"

    def has_result(self, index: int) -> bool:
        return self.result_path(index).exists()

    def load_result(self, index: int) -> Optional[Dict[str, Any]]:
        return _read_json(self.result_path(index))

    # ------------------------------------------------------------------
    # the claim/lease/steal protocol

    def _claim_path(self, index: int) -> Path:
        return self.claims_dir / f"{index:06d}.json"

    def claim_next(self, worker: str,
                   lease_seconds: float = DEFAULT_LEASE_SECONDS
                   ) -> Optional[ClaimedJob]:
        """Claim the lowest-index job that is neither done nor validly
        claimed; returns None when no job is currently claimable (which
        does *not* mean the campaign is finished -- other workers may
        hold live leases)."""
        for index in self.job_indices():
            if self.has_result(index):
                continue
            claimed = self._try_claim(index, worker, lease_seconds)
            if claimed is not None:
                return claimed
        return None

    def _try_claim(self, index: int, worker: str,
                   lease_seconds: float) -> Optional[ClaimedJob]:
        claim_path = self._claim_path(index)
        attempt = 1
        if claim_path.exists():
            claim = _read_json(claim_path)
            if claim is None:
                # Mid-transition (being renewed or stolen right now);
                # somebody else is on it.
                return None
            if claim["expires_at"] > wallclock.epoch():
                return None
            # Expired: steal.  os.rename succeeds for exactly one
            # stealer; the loser's FileNotFoundError means someone beat
            # us to it (or the original worker completed at the wire).
            stale = claim_path.with_name(
                f".{claim_path.name}.stale.{worker}.{os.getpid()}")
            try:
                os.rename(claim_path, stale)
            except OSError:
                return None
            try:
                os.unlink(stale)
            except OSError:
                # A leftover tombstone is cosmetic, never load-bearing.
                pass  # simlint: disable=SIM008
            attempt = int(claim.get("attempt", 0)) + 1
        body = json.dumps(
            {"worker": worker, "attempt": attempt,
             "expires_at": wallclock.epoch() + lease_seconds,
             "lease_seconds": lease_seconds},
            sort_keys=True)
        try:
            handle = os.open(claim_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None  # lost the race to another claimer
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(body)
        if self.has_result(index):
            # The previous holder completed between our expiry check and
            # our claim; undo and move on.
            self.release(index)
            return None
        return ClaimedJob(index=index, spec=self.load_spec(index),
                          attempt=attempt, claim_path=claim_path)

    def renew(self, job: ClaimedJob,
              lease_seconds: float = DEFAULT_LEASE_SECONDS) -> None:
        """Extend the lease on a held claim (atomic rewrite)."""
        body = json.dumps(
            {"worker": _read_worker(job.claim_path), "attempt": job.attempt,
             "expires_at": wallclock.epoch() + lease_seconds,
             "lease_seconds": lease_seconds},
            sort_keys=True)
        _write_atomic(job.claim_path, body)

    def release(self, index: int) -> None:
        """Drop a claim without recording a result (graceful shutdown)."""
        try:
            os.unlink(self._claim_path(index))
        except OSError:
            # Already stolen or never created; nothing held either way.
            return

    # ------------------------------------------------------------------
    # results

    def complete(self, job: ClaimedJob, record: Dict[str, Any]) -> None:
        """Persist a terminal result, then release the claim.

        Idempotent: if a steal race double-ran the job, the second
        writer atomically replaces the first with a byte-identical file
        (deterministic jobs), so observers never see a conflict.
        """
        _write_atomic(self.result_path(job.index),
                      json.dumps(record, sort_keys=True, indent=1))
        self.release(job.index)

    def is_drained(self) -> bool:
        """Every job has a terminal result."""
        return all(self.has_result(index) for index in self.job_indices())

    # ------------------------------------------------------------------
    # status

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time campaign progress for ``fabric status``."""
        now = wallclock.epoch()
        done = failed = running = stale = pending = 0
        durations: List[float] = []
        workers: Dict[str, int] = {}
        for index in self.job_indices():
            record = self.load_result(index)
            if record is not None:
                if record.get("status") == RESULT_DONE:
                    done += 1
                    duration = record.get("duration")
                    if isinstance(duration, (int, float)) and duration > 0:
                        durations.append(float(duration))
                else:
                    failed += 1
                continue
            claim = _read_json(self._claim_path(index))
            if claim is None:
                pending += 1
            elif claim["expires_at"] > now:
                running += 1
                name = str(claim.get("worker", "?"))
                workers[name] = workers.get(name, 0) + 1
            else:
                stale += 1
        return {
            "campaign_id": self.campaign_id,
            "total": done + failed + running + stale + pending,
            "done": done, "failed": failed, "running": running,
            "stale": stale, "pending": pending,
            "workers": {name: workers[name] for name in sorted(workers)},
            "mean_duration": (sum(durations) / len(durations)
                              if durations else None),
        }

    @staticmethod
    def eta_seconds(snapshot: Dict[str, Any]) -> Optional[float]:
        """Cross-pool ETA from a :meth:`snapshot`: mean seconds per
        completed job, scaled by outstanding jobs over live workers.
        Mirrors the runner's single-pool estimate, with the same guards
        (no completions or a zero rate -> unknown, not zero)."""
        outstanding = (snapshot["pending"] + snapshot["running"]
                       + snapshot["stale"])
        if outstanding <= 0:
            return 0.0
        mean = snapshot.get("mean_duration")
        if not mean or mean <= 0:
            return None
        active = max(1, sum(snapshot["workers"].values()))
        return mean * outstanding / active


def _read_worker(claim_path: Path) -> str:
    claim = _read_json(claim_path)
    return str(claim.get("worker", "?")) if claim else "?"


def list_campaigns(root: Union[str, Path]) -> List[CampaignQueue]:
    """Every submitted campaign under a queue root, sorted by id."""
    root = Path(root)
    queues = []
    if not root.is_dir():
        return queues
    for name in sorted(os.listdir(root)):
        queue = CampaignQueue(root, name)
        if queue.is_submitted():
            queues.append(queue)
    return queues


def find_campaign(root: Union[str, Path],
                  reference: Optional[str]) -> CampaignQueue:
    """Resolve a campaign by id, id prefix, or name; ``None`` resolves
    only when the root holds exactly one campaign."""
    queues = list_campaigns(root)
    if not queues:
        raise QueueError(f"no submitted campaigns under {root}")
    if reference is None:
        if len(queues) == 1:
            return queues[0]
        ids = [queue.campaign_id for queue in queues]
        raise QueueError(f"{root} holds {len(queues)} campaigns {ids}; "
                         f"pass --campaign to pick one")
    matches = [queue for queue in queues
               if queue.campaign_id == reference
               or queue.campaign_id.startswith(reference)
               or queue.header().get("name") == reference]
    if not matches:
        raise QueueError(f"no campaign matching {reference!r} under {root}")
    if len(matches) > 1:
        ids = [queue.campaign_id for queue in matches]
        raise QueueError(f"{reference!r} is ambiguous: {ids}")
    return matches[0]
