"""The fabric's single filesystem seam.

Every byte the campaign queue reads or writes goes through a
:class:`Storage` instance.  The production implementation
(:class:`RealStorage`) is a thin veneer over ``os``/``pathlib`` that
preserves the queue's two load-bearing primitives -- atomic replace for
rewrites and ``O_CREAT | O_EXCL`` for claims -- and exists so the fault
injector (:class:`repro.fabric.harden.FaultyFS`) can interpose
*deterministically* on exactly the operations a sick filesystem would
corrupt: torn renames, short writes, ``ENOSPC``, ``EIO``, stale reads.

Keeping the seam explicit (an object threaded through
:class:`~repro.fabric.queue.CampaignQueue`) rather than monkeypatching
``os`` means the shim composes with subprocess worker pools: a worker
started with ``--inject-faults`` builds its own seeded shim and the
parent never has to reach across the process boundary.

Nothing here touches simulation state; all of it is driver-side
plumbing, so wall-clock and OS access are legitimate.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Union

PathLike = Union[str, Path]


class Storage:
    """Abstract filesystem operations the fabric queue relies on.

    Implementations must preserve these contracts:

    * :meth:`write_atomic` -- readers never observe a half-written file
      at the destination path (modulo injected faults).
    * :meth:`create_exclusive` -- exactly one concurrent caller wins;
      losers get :class:`FileExistsError`.
    * :meth:`rename` -- succeeds for exactly one concurrent caller on
      the same source (POSIX ``rename`` semantics).
    """

    def read_text(self, path: PathLike) -> str:
        raise NotImplementedError

    def write_atomic(self, path: PathLike, text: str) -> None:
        raise NotImplementedError

    def create_exclusive(self, path: PathLike, text: str) -> None:
        raise NotImplementedError

    def rename(self, source: PathLike, destination: PathLike) -> None:
        raise NotImplementedError

    def unlink(self, path: PathLike) -> None:
        raise NotImplementedError

    def listdir(self, path: PathLike) -> List[str]:
        raise NotImplementedError

    def exists(self, path: PathLike) -> bool:
        raise NotImplementedError

    def mkdir(self, path: PathLike) -> None:
        raise NotImplementedError


class RealStorage(Storage):
    """The production storage: plain POSIX filesystem operations."""

    def read_text(self, path: PathLike) -> str:
        return Path(path).read_text(encoding="utf-8")

    def write_atomic(self, path: PathLike, text: str) -> None:
        path = Path(path)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def create_exclusive(self, path: PathLike, text: str) -> None:
        handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)

    def rename(self, source: PathLike, destination: PathLike) -> None:
        os.rename(source, destination)

    def unlink(self, path: PathLike) -> None:
        os.unlink(path)

    def listdir(self, path: PathLike) -> List[str]:
        return os.listdir(path)

    def exists(self, path: PathLike) -> bool:
        return os.path.exists(path)

    def mkdir(self, path: PathLike) -> None:
        os.makedirs(path, exist_ok=True)


#: shared production instance (stateless, safe to share)
REAL_STORAGE = RealStorage()
