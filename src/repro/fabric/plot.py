"""Figure export from the results database, with no plotting deps.

The container this reproduction targets has no matplotlib, so figures
are emitted as hand-rolled SVG: line-per-series charts with axes, ticks,
and a legend -- enough to re-render an experiment figure (for MITTS,
e.g. slowdown-vs-offered-bandwidth curves) from the database alone.
When matplotlib *is* importable, ``render`` upgrades to a PNG through
it; the SVG path is the contract and the one CI exercises.

Everything here is presentation: inputs come from
:meth:`repro.fabric.db.ResultsDb.table` (or a stored experiment
result), outputs are files, and nothing flows back into results.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: (x, y) samples per named series, already sorted by the caller
Series = Dict[str, List[Tuple[float, float]]]

_WIDTH, _HEIGHT = 640, 420
_MARGIN_LEFT, _MARGIN_RIGHT = 64, 16
_MARGIN_TOP, _MARGIN_BOTTOM = 40, 48
_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd",
            "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f")


class PlotError(ValueError):
    """The requested figure cannot be built from the given table."""


# ----------------------------------------------------------------------
# table -> series


def series_from_table(headers: Sequence[str],
                      rows: Sequence[Sequence[Any]],
                      x: str, y: str,
                      group_by: Optional[str] = None) -> Series:
    """Group a flat table into plottable series.

    ``x`` and ``y`` name numeric columns; ``group_by`` (optional) names
    the column whose distinct values become separate series.  Rows with
    a missing x or y (pending jobs, failed jobs) are skipped -- a
    partially drained campaign still plots.
    """
    for name in filter(None, (x, y, group_by)):
        if name not in headers:
            raise PlotError(f"no column {name!r}; available: "
                            f"{', '.join(headers)}")
    x_at = headers.index(x)
    y_at = headers.index(y)
    group_at = headers.index(group_by) if group_by else None

    series: Series = {}
    for row in rows:
        x_value, y_value = row[x_at], row[y_at]
        if not _numeric(x_value) or not _numeric(y_value):
            continue
        key = y if group_at is None else f"{group_by}={row[group_at]}"
        series.setdefault(key, []).append((float(x_value), float(y_value)))
    if not any(series.values()):
        raise PlotError(f"no numeric ({x}, {y}) pairs to plot")
    for points in series.values():
        points.sort()
    return {key: series[key] for key in sorted(series)}


def count_holes(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                x: str, y: str) -> int:
    """How many rows would :func:`series_from_table` skip for a missing
    or non-numeric (x, y) pair.

    Failed and quarantined jobs store NULL metrics, so this is the
    figure's *explicit hole count*: a degraded campaign renders with the
    holes announced rather than papered over.
    """
    for name in (x, y):
        if name not in headers:
            raise PlotError(f"no column {name!r}; available: "
                            f"{', '.join(headers)}")
    x_at = headers.index(x)
    y_at = headers.index(y)
    return sum(1 for row in rows
               if not _numeric(row[x_at]) or not _numeric(row[y_at]))


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ----------------------------------------------------------------------
# SVG backend (always available)


def render_svg(series: Series, title: str, x_label: str,
               y_label: str) -> str:
    """A complete SVG document for line-per-series data."""
    points = [point for values in series.values() for point in values]
    if not points:
        raise PlotError("nothing to plot")
    x_lo, x_hi = _bounds([point[0] for point in points])
    y_lo, y_hi = _bounds([point[1] for point in points])

    def sx(value: float) -> float:
        span = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
        return _MARGIN_LEFT + (value - x_lo) / (x_hi - x_lo) * span

    def sy(value: float) -> float:
        span = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM
        return _HEIGHT - _MARGIN_BOTTOM \
            - (value - y_lo) / (y_hi - y_lo) * span

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{_WIDTH}" height="{_HEIGHT}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2:.1f}" y="20" text-anchor="middle" '
        f'font-size="15">{_escape(title)}</text>',
    ]
    # axes + ticks
    x0, y0 = _MARGIN_LEFT, _HEIGHT - _MARGIN_BOTTOM
    parts.append(f'<line x1="{x0}" y1="{_MARGIN_TOP}" x2="{x0}" '
                 f'y2="{y0}" stroke="black"/>')
    parts.append(f'<line x1="{x0}" y1="{y0}" '
                 f'x2="{_WIDTH - _MARGIN_RIGHT}" y2="{y0}" '
                 f'stroke="black"/>')
    for tick in _ticks(x_lo, x_hi):
        x_pos = sx(tick)
        parts.append(f'<line x1="{x_pos:.1f}" y1="{y0}" x2="{x_pos:.1f}" '
                     f'y2="{y0 + 4}" stroke="black"/>')
        parts.append(f'<text x="{x_pos:.1f}" y="{y0 + 18}" '
                     f'text-anchor="middle">{_label(tick)}</text>')
    for tick in _ticks(y_lo, y_hi):
        y_pos = sy(tick)
        parts.append(f'<line x1="{x0 - 4}" y1="{y_pos:.1f}" x2="{x0}" '
                     f'y2="{y_pos:.1f}" stroke="black"/>')
        parts.append(f'<text x="{x0 - 8}" y="{y_pos + 4:.1f}" '
                     f'text-anchor="end">{_label(tick)}</text>')
    parts.append(f'<text x="{(x0 + _WIDTH - _MARGIN_RIGHT) / 2:.1f}" '
                 f'y="{_HEIGHT - 10}" text-anchor="middle">'
                 f'{_escape(x_label)}</text>')
    parts.append(f'<text x="16" y="{(y0 + _MARGIN_TOP) / 2:.1f}" '
                 f'text-anchor="middle" transform="rotate(-90 16 '
                 f'{(y0 + _MARGIN_TOP) / 2:.1f})">'
                 f'{_escape(y_label)}</text>')
    # series
    for slot, (name, values) in enumerate(series.items()):
        if not values:
            continue
        colour = _PALETTE[slot % len(_PALETTE)]
        path = " ".join(f"{'M' if at == 0 else 'L'} "
                        f"{sx(px):.1f} {sy(py):.1f}"
                        for at, (px, py) in enumerate(values))
        parts.append(f'<path d="{path}" fill="none" stroke="{colour}" '
                     f'stroke-width="1.5"/>')
        for px, py in values:
            parts.append(f'<circle cx="{sx(px):.1f}" cy="{sy(py):.1f}" '
                         f'r="2.5" fill="{colour}"/>')
        legend_y = _MARGIN_TOP + 6 + slot * 16
        legend_x = _WIDTH - _MARGIN_RIGHT - 150
        parts.append(f'<line x1="{legend_x}" y1="{legend_y}" '
                     f'x2="{legend_x + 18}" y2="{legend_y}" '
                     f'stroke="{colour}" stroke-width="1.5"/>')
        parts.append(f'<text x="{legend_x + 24}" y="{legend_y + 4}">'
                     f'{_escape(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _bounds(values: List[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        # A flat series still needs a non-degenerate axis.
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def _ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    step = (hi - lo) / (count - 1)
    return [lo + index * step for index in range(count)]


def _label(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def _escape(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


# ----------------------------------------------------------------------
# entry point


def render(series: Series, title: str, x_label: str, y_label: str,
           out_path: Union[str, Path]) -> Path:
    """Write the figure; PNG via matplotlib when both are available,
    SVG otherwise (the suffix is corrected to match the backend)."""
    out_path = Path(out_path)
    if out_path.suffix == ".png":
        try:
            import matplotlib  # noqa: F401  (optional, not in CI image)
        except ImportError:
            out_path = out_path.with_suffix(".svg")
        else:
            return _render_matplotlib(series, title, x_label, y_label,
                                      out_path)
    out_path.write_text(render_svg(series, title, x_label, y_label),
                        encoding="utf-8")
    return out_path


def _render_matplotlib(series: Series, title: str, x_label: str,
                       y_label: str, out_path: Path) -> Path:
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    figure, axes = plt.subplots(figsize=(6.4, 4.2))
    for name, values in series.items():
        if not values:
            continue
        axes.plot([point[0] for point in values],
                  [point[1] for point in values],
                  marker="o", markersize=3, label=name)
    axes.set_title(title)
    axes.set_xlabel(x_label)
    axes.set_ylabel(y_label)
    if len(series) > 1:
        axes.legend()
    figure.tight_layout()
    figure.savefig(out_path, dpi=120)
    plt.close(figure)
    return out_path
