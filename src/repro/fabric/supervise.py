"""Supervised worker fleets: restart-with-backoff over campaign pools.

``python -m repro.fabric supervise`` runs N worker pools as child
processes (each one a ``python -m repro.fabric work`` invocation -- the
same process boundary the queue's lease protocol already assumes) and
babysits them until the campaign reaches a terminal disposition:

* **liveness probes** -- each tick polls every child; a child that
  exited while the campaign still has outstanding work is a casualty,
  not a conclusion (its leases lapse and survivors steal them -- the
  supervisor's job is only to keep enough survivors alive).
* **exponential backoff with jitter** -- restarts are delayed by
  ``backoff * 2^consecutive`` plus a seeded-random jitter so a fleet of
  supervisors never thundering-herds a shared filesystem.  The jitter
  RNG is seeded (``random.Random``): two supervisors with the same seed
  replay the same schedule, which keeps chaos runs reproducible.
* **crash-loop circuit breaker** -- a pool that dies ``max_restarts``
  times within ``window_seconds`` is *tripped* and never restarted; if
  every pool trips while work remains, the campaign is declared wedged
  rather than burning restarts forever (the dead-letter directory and
  ``fabric doctor`` hold the post-mortem).

The supervisor itself never touches claims or results -- all campaign
state flows through the queue directory, so a supervisor crash is
harmless: re-running ``supervise`` resumes exactly where the fleet left
off.  Wall-clock access goes through :mod:`repro.runner.wallclock`.
"""

from __future__ import annotations

import random
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..runner import wallclock
from .queue import (DEFAULT_LEASE_SECONDS, DEFAULT_MAX_ATTEMPTS,
                    DISPOSITION_COMPLETE, DISPOSITION_DEGRADED,
                    DISPOSITION_WEDGED, CampaignQueue)

#: default fleet shape
DEFAULT_POOLS = 2

#: restart policy defaults
DEFAULT_BACKOFF_SECONDS = 0.5
DEFAULT_MAX_RESTARTS = 5
DEFAULT_RESTART_WINDOW_SECONDS = 120.0


class _Slot:
    """One supervised pool position (a process comes and goes; the slot
    and its restart budget persist)."""

    def __init__(self, slot_id: int) -> None:
        self.slot_id = slot_id
        self.process: Optional[subprocess.Popen] = None
        self.spawned_once = False
        self.tripped = False
        self.restarts = 0
        self.restart_times: List[float] = []
        self.exit_codes: List[int] = []
        self.next_start_at = 0.0


def _worker_command(queue_root: Union[str, Path], campaign_id: str,
                    jobs: int, lease_seconds: float,
                    max_attempts: Optional[int],
                    inject_faults: Optional[str],
                    extra: Sequence[str]) -> List[str]:
    command = [sys.executable, "-m", "repro.fabric", "work",
               str(queue_root), "--campaign", campaign_id,
               "--jobs", str(jobs), "--lease", str(lease_seconds),
               "--poll", "0.2"]
    if max_attempts is not None:
        command += ["--max-attempts", str(max_attempts)]
    if inject_faults:
        command += ["--inject-faults", inject_faults]
    command += list(extra)
    return command


def run_supervisor(queue: CampaignQueue,
                   pools: int = DEFAULT_POOLS,
                   jobs: int = 1,
                   lease_seconds: float = DEFAULT_LEASE_SECONDS,
                   max_attempts: Optional[int] = DEFAULT_MAX_ATTEMPTS,
                   seed: int = 0,
                   backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
                   max_restarts: int = DEFAULT_MAX_RESTARTS,
                   window_seconds: float = DEFAULT_RESTART_WINDOW_SECONDS,
                   inject_faults: Optional[str] = None,
                   first_spawn_extra: Sequence[str] = (),
                   poll_seconds: float = 0.25,
                   timeout: float = 600.0,
                   echo=print) -> Dict[str, Any]:
    """Supervise ``pools`` worker pools until the campaign terminates.

    ``inject_faults`` forwards a :class:`~repro.fabric.harden.FaultPlan`
    spec to every child (each child builds its *own* seeded shim --
    faults never cross the process boundary).  ``first_spawn_extra`` is
    the chaos hook: extra argv appended to pool 0's **first** spawn only
    (e.g. ``["--die-after-claims", "1"]`` to force one kill -9 and prove
    the restart path); restarts never inherit it, so the fleet recovers.

    Returns a report dict: ``disposition``, total ``restarts``,
    ``tripped`` slot ids, per-slot ``exit_codes``, and ``ok``.
    """
    if pools < 1:
        raise ValueError("pools must be >= 1")
    rng = random.Random(("supervisor", seed).__repr__())
    slots = [_Slot(slot_id) for slot_id in range(pools)]
    deadline = wallclock.now() + timeout
    timed_out = False

    def _spawn(slot: _Slot) -> None:
        extra = tuple(first_spawn_extra) \
            if (slot.slot_id == 0 and not slot.spawned_once) else ()
        command = _worker_command(queue.root, queue.campaign_id, jobs,
                                  lease_seconds, max_attempts,
                                  inject_faults, extra)
        slot.process = subprocess.Popen(command,
                                        stdout=subprocess.DEVNULL)
        if slot.spawned_once:
            slot.restarts += 1
        slot.spawned_once = True
        echo(f"[supervise] pool {slot.slot_id}: started pid "
             f"{slot.process.pid}"
             + (f" (chaos argv: {' '.join(extra)})" if extra else ""))

    try:
        while True:
            snapshot = queue.snapshot()
            disposition = snapshot["disposition"]
            if disposition in (DISPOSITION_COMPLETE, DISPOSITION_DEGRADED):
                break
            if wallclock.now() > deadline:
                timed_out = True
                break
            alive = 0
            for slot in slots:
                if slot.process is not None:
                    code = slot.process.poll()
                    if code is None:
                        alive += 1
                        continue
                    # Liveness probe failed: the child exited with work
                    # outstanding.
                    slot.exit_codes.append(code)
                    slot.process = None
                    now = wallclock.now()
                    slot.restart_times = [
                        stamp for stamp in slot.restart_times
                        if now - stamp <= window_seconds]
                    if len(slot.restart_times) >= max_restarts:
                        slot.tripped = True
                        echo(f"[supervise] pool {slot.slot_id}: circuit "
                             f"breaker tripped after "
                             f"{len(slot.restart_times)} exit(s) in "
                             f"{window_seconds:.0f}s (last code {code})")
                        continue
                    slot.restart_times.append(now)
                    consecutive = len(slot.restart_times)
                    delay = (backoff_seconds * (2 ** (consecutive - 1))
                             + rng.uniform(0.0, backoff_seconds))
                    slot.next_start_at = now + delay
                    echo(f"[supervise] pool {slot.slot_id}: exited "
                         f"{code}; restart in {delay:.2f}s")
                    continue
                if slot.tripped:
                    continue
                if wallclock.now() >= slot.next_start_at:
                    _spawn(slot)
                    alive += 1
            if alive == 0 and all(slot.tripped for slot in slots):
                # Every pool is crash-looping: stop burning restarts.
                break
            wallclock.sleep(poll_seconds)
    finally:
        for slot in slots:
            if slot.process is not None and slot.process.poll() is None:
                slot.process.terminate()
        for slot in slots:
            if slot.process is not None:
                try:
                    slot.exit_codes.append(
                        slot.process.wait(timeout=10.0))
                except subprocess.TimeoutExpired:
                    slot.process.kill()
                    slot.exit_codes.append(slot.process.wait())
                slot.process = None

    snapshot = queue.snapshot()
    disposition = snapshot["disposition"]
    if timed_out or (disposition not in (DISPOSITION_COMPLETE,
                                         DISPOSITION_DEGRADED)):
        disposition = DISPOSITION_WEDGED
    report = {
        "ok": not timed_out and disposition in (DISPOSITION_COMPLETE,
                                                DISPOSITION_DEGRADED),
        "disposition": disposition,
        "campaign_id": queue.campaign_id,
        "pools": pools,
        "restarts": sum(slot.restarts for slot in slots),
        "tripped": [slot.slot_id for slot in slots if slot.tripped],
        "exit_codes": {str(slot.slot_id): list(slot.exit_codes)
                       for slot in slots},
        "timed_out": timed_out,
        "snapshot": snapshot,
    }
    echo(f"[supervise] campaign {queue.campaign_id}: {disposition} "
         f"({report['restarts']} restart(s), "
         f"{len(report['tripped'])} tripped)")
    return report


__all__ = ["run_supervisor", "DEFAULT_POOLS", "DEFAULT_BACKOFF_SECONDS",
           "DEFAULT_MAX_RESTARTS", "DEFAULT_RESTART_WINDOW_SECONDS"]
