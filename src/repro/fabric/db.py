"""The campaign results database (SQLite) and its deterministic merge.

Workers never write SQLite concurrently: terminal results land as one
atomic JSON file per job in the queue (``results/<index>.json``), and
the database is **rebuilt** from those files in sorted job-index order.
That makes the database a pure function of the result set -- any worker
topology (serial, two pools, ten hosts, with or without steals) merges
to row-for-row identical tables, which :meth:`ResultsDb.fingerprint`
turns into a single comparable hash.

Schema::

    campaigns(campaign_id PK, name, num_jobs, manifest_json)
    jobs(campaign_id, job_index PK, job_id, spec_hash, seed, scale,
         params_json)
    results(campaign_id, job_index PK, job_id, status, metrics_json,
            value_json, error, code_fingerprint,     -- deterministic
            attempts, worker, duration)              -- provenance only
    metrics(campaign_id, job_index, name PK, value)  -- flat, plottable

``attempts``/``worker``/``duration`` are provenance: they legitimately
differ between a serial run and a crash-recovered one, so the
fingerprint excludes them (and only them).
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import io
import json
import sqlite3
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .queue import RESULT_DONE, CampaignQueue

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    num_jobs INTEGER NOT NULL,
    manifest_json TEXT
);
CREATE TABLE IF NOT EXISTS jobs (
    campaign_id TEXT NOT NULL,
    job_index INTEGER NOT NULL,
    job_id TEXT NOT NULL,
    spec_hash TEXT NOT NULL,
    seed INTEGER,
    scale TEXT,
    params_json TEXT NOT NULL,
    PRIMARY KEY (campaign_id, job_index)
);
CREATE TABLE IF NOT EXISTS results (
    campaign_id TEXT NOT NULL,
    job_index INTEGER NOT NULL,
    job_id TEXT NOT NULL,
    status TEXT NOT NULL,
    metrics_json TEXT NOT NULL,
    value_json TEXT,
    error TEXT,
    code_fingerprint TEXT,
    attempts INTEGER,
    worker TEXT,
    duration REAL,
    PRIMARY KEY (campaign_id, job_index)
);
CREATE TABLE IF NOT EXISTS metrics (
    campaign_id TEXT NOT NULL,
    job_index INTEGER NOT NULL,
    name TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (campaign_id, job_index, name)
);
"""

#: results columns covered by the fingerprint (provenance excluded)
_FINGERPRINT_RESULT_COLUMNS = ("job_index", "job_id", "status",
                               "metrics_json", "value_json", "error",
                               "code_fingerprint")


class DbError(RuntimeError):
    """The results database is missing data or was queried invalidly."""


# ----------------------------------------------------------------------
# value -> metrics extraction


def extract_metrics(value: Any) -> Dict[str, float]:
    """Numeric metrics of an arbitrary job return value.

    Experiment :class:`~repro.experiments.common.Result` objects
    contribute their ``summary``; bare numbers become ``{"value": x}``;
    dicts keep their numeric entries.  Anything else has no metrics --
    the full payload still lands in ``value_json``.
    """
    summary = getattr(value, "summary", None)
    if isinstance(summary, dict):
        return {str(key): float(val) for key, val in sorted(summary.items())
                if isinstance(val, (int, float))}
    if isinstance(value, bool):
        return {"value": float(value)}
    if isinstance(value, (int, float)):
        return {"value": float(value)}
    if isinstance(value, dict):
        return {str(key): float(val) for key, val in sorted(value.items())
                if isinstance(val, (int, float))
                and not isinstance(val, bool)}
    return {}


def encode_value(value: Any) -> Optional[str]:
    """Canonical JSON of a job's return value, or None when it has no
    stable JSON form (then only its metrics are recorded)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    try:
        return json.dumps(value, sort_keys=True)
    except (TypeError, ValueError):
        return None


# ----------------------------------------------------------------------


class ResultsDb:
    """SQLite store over one or more campaigns; see the module docstring."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self.connection = sqlite3.connect(str(self.path))
            self.connection.executescript(_SCHEMA)
        except sqlite3.DatabaseError:
            # The database is a disposable *view* of the queue (every
            # merge rebuilds its rows), so a corrupted file -- a torn
            # write, a truncation -- is recreated, not fatal.
            self.connection.close()
            self.path.unlink(missing_ok=True)
            self.connection = sqlite3.connect(str(self.path))
            self.connection.executescript(_SCHEMA)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "ResultsDb":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # deterministic merge

    def merge_queue(self, queue: CampaignQueue) -> int:
        """Rebuild one campaign's rows from its queue directory.

        Delete-then-insert in sorted index order inside one transaction:
        re-merging after more results arrive, or merging the same queue
        from two different processes, always converges to the same rows.
        Returns the number of result rows merged.
        """
        header = queue.header()
        campaign_id = queue.campaign_id
        cursor = self.connection.cursor()
        cursor.execute("BEGIN")
        for table in ("campaigns", "jobs", "results", "metrics"):
            cursor.execute(f"DELETE FROM {table} WHERE campaign_id = ?",
                           (campaign_id,))
        cursor.execute(
            "INSERT INTO campaigns VALUES (?, ?, ?, ?)",
            (campaign_id, header["name"], header["num_jobs"],
             json.dumps(header.get("manifest"), sort_keys=True)))
        merged = 0
        for index in queue.job_indices():
            spec = queue.load_spec(index)
            cursor.execute(
                "INSERT INTO jobs VALUES (?, ?, ?, ?, ?, ?, ?)",
                (campaign_id, index, spec.job_id, spec.spec_hash(),
                 spec.seed, spec.scale,
                 json.dumps(_jsonable_params(spec), sort_keys=True)))
            record = queue.load_result(index)
            if record is None:
                continue
            metrics = record.get("metrics") or {}
            cursor.execute(
                "INSERT INTO results VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (campaign_id, index, record.get("job_id", spec.job_id),
                 record.get("status", "?"),
                 json.dumps(metrics, sort_keys=True),
                 record.get("value_json"),
                 record.get("error"),
                 record.get("code_fingerprint"),
                 record.get("attempts"),
                 record.get("worker"),
                 record.get("duration")))
            for name in sorted(metrics):
                cursor.execute(
                    "INSERT INTO metrics VALUES (?, ?, ?, ?)",
                    (campaign_id, index, name, float(metrics[name])))
            merged += 1
        self.connection.commit()
        return merged

    # ------------------------------------------------------------------
    # fingerprint

    def fingerprint(self, campaign_id: str,
                    only_status: Optional[str] = None) -> str:
        """SHA-256 over the campaign's deterministic rows.

        Covers jobs (identity, spec hashes, params) and results
        (status, metrics, values, errors, code fingerprint) in index
        order; excludes attempts/worker/duration, which describe *how*
        a result was obtained rather than *what* it is.

        ``only_status`` restricts both tables to jobs whose result has
        that status -- e.g. ``RESULT_DONE`` compares only the healthy
        rows of two degraded campaigns, independent of how their
        poison jobs were diagnosed.
        """
        digest = hashlib.sha256()
        cursor = self.connection.cursor()
        if only_status is None:
            jobs_sql = ("SELECT job_index, job_id, spec_hash, seed, "
                        "scale, params_json FROM jobs "
                        "WHERE campaign_id = ? ORDER BY job_index")
            jobs_params: Tuple[Any, ...] = (campaign_id,)
        else:
            jobs_sql = (
                "SELECT j.job_index, j.job_id, j.spec_hash, j.seed, "
                "j.scale, j.params_json FROM jobs j JOIN results r "
                "ON r.campaign_id = j.campaign_id "
                "AND r.job_index = j.job_index "
                "WHERE j.campaign_id = ? AND r.status = ? "
                "ORDER BY j.job_index")
            jobs_params = (campaign_id, only_status)
        for row in cursor.execute(jobs_sql, jobs_params):
            digest.update(repr(row).encode("utf-8"))
            digest.update(b"\0")
        columns = ", ".join(_FINGERPRINT_RESULT_COLUMNS)
        results_sql = (f"SELECT {columns} FROM results "
                       f"WHERE campaign_id = ? ORDER BY job_index")
        results_params: Tuple[Any, ...] = (campaign_id,)
        if only_status is not None:
            results_sql = (f"SELECT {columns} FROM results "
                           f"WHERE campaign_id = ? AND status = ? "
                           f"ORDER BY job_index")
            results_params = (campaign_id, only_status)
        for row in cursor.execute(results_sql, results_params):
            digest.update(repr(row).encode("utf-8"))
            digest.update(b"\0")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # queries

    def query(self, sql: str,
              parameters: Sequence[Any] = ()) -> Tuple[List[str],
                                                       List[Tuple]]:
        """Run one SQL statement; returns (column names, rows).

        The connection is the real thing -- joins, aggregates, and CTEs
        over the four tables all work.  Mutating statements are refused:
        the database is a *view* of the queue, and hand edits would be
        silently erased by the next merge.
        """
        head = sql.lstrip().split(None, 1)
        if not head or head[0].upper() not in ("SELECT", "WITH"):
            raise DbError("only SELECT/WITH queries are allowed; the "
                          "database is rebuilt from the queue and manual "
                          "writes would be lost")
        cursor = self.connection.execute(sql, tuple(parameters))
        headers = [description[0] for description in cursor.description]
        return headers, cursor.fetchall()

    def table(self, campaign_id: str) -> Tuple[List[str], List[List[Any]]]:
        """The flat per-job view: identity + params + one column per
        metric, one row per job, in index order.  This is what ``query``
        prints by default, ``--csv`` exports, and ``plot`` reads."""
        cursor = self.connection.cursor()
        jobs = cursor.execute(
            "SELECT job_index, job_id, seed, scale, params_json FROM jobs "
            "WHERE campaign_id = ? ORDER BY job_index",
            (campaign_id,)).fetchall()
        if not jobs:
            raise DbError(f"campaign {campaign_id!r} is not in this "
                          f"database (merge the queue first)")
        results = {row[0]: (row[1], row[2]) for row in cursor.execute(
            "SELECT job_index, status, metrics_json FROM results "
            "WHERE campaign_id = ?", (campaign_id,))}

        param_names: List[str] = []
        metric_names: List[str] = []
        parsed = []
        for job_index, job_id, seed, scale, params_json in jobs:
            params = json.loads(params_json)
            for name in params:
                if name not in param_names:
                    param_names.append(name)
            status, metrics_json = results.get(job_index, ("pending", "{}"))
            metrics = json.loads(metrics_json)
            for name in sorted(metrics):
                if name not in metric_names:
                    metric_names.append(name)
            parsed.append((job_index, job_id, seed, scale, params, status,
                           metrics))
        param_names.sort()
        headers = (["job_index", "job_id", "seed", "scale", "status"]
                   + param_names + sorted(metric_names))
        rows = []
        for (job_index, job_id, seed, scale, params, status,
             metrics) in parsed:
            row: List[Any] = [job_index, job_id, seed, scale, status]
            row.extend(params.get(name) for name in param_names)
            row.extend(metrics.get(name) for name in sorted(metric_names))
            rows.append(row)
        return headers, rows

    def stored_result_rows(self, campaign_id: str,
                           job_id: str) -> Tuple[List[str], List[List[Any]],
                                                 str]:
        """One job's stored experiment table (headers, rows, title) --
        re-renders a figure's data from the database alone."""
        cursor = self.connection.execute(
            "SELECT value_json FROM results WHERE campaign_id = ? AND "
            "job_id = ?", (campaign_id, job_id))
        found = cursor.fetchone()
        if found is None or found[0] is None:
            raise DbError(f"no stored value for job {job_id!r} in "
                          f"campaign {campaign_id!r}")
        value = json.loads(found[0])
        if not isinstance(value, dict) or "rows" not in value:
            raise DbError(f"job {job_id!r} did not return a tabular "
                          f"experiment Result")
        return (list(value.get("headers", [])),
                [list(row) for row in value["rows"]],
                str(value.get("title", job_id)))

    # ------------------------------------------------------------------

    def campaigns(self) -> List[Tuple[str, str, int]]:
        cursor = self.connection.execute(
            "SELECT campaign_id, name, num_jobs FROM campaigns "
            "ORDER BY campaign_id")
        return cursor.fetchall()


def _jsonable_params(spec) -> Dict[str, Any]:
    """kwargs of a spec reduced to a JSON-able dict (GA batches carry
    live objects; those are represented by their content hash)."""
    from ..runner.jobspec import content_hash

    params: Dict[str, Any] = {}
    for key, value in spec.kwargs:
        try:
            json.dumps(value)
            params[key] = value
        except (TypeError, ValueError):
            params[key] = f"hash:{content_hash(value)[:12]}"
    return params


def write_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]],
              path: Union[str, Path, None]) -> str:
    """Render rows as CSV; written to ``path`` when given, and always
    returned as text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
