"""End-to-end fabric validation: kill a worker, steal, compare to serial.

``run_selfcheck`` is the executable form of the fabric's determinism
claim (DESIGN.md section 11).  It submits one small simulation campaign
twice -- once drained serially in-process (the reference), once drained
by **two concurrent worker subprocesses**, one of which is seeded to die
``kill -9``-style while holding a claim -- then merges both queues into
results databases and asserts the campaign fingerprints are identical.
It also re-renders the campaign's data through ``query``/``plot`` paths
(CSV + SVG) so the read side is exercised from the database alone.

This is what ``python -m repro.fabric selfcheck`` runs and what the CI
``fabric-smoke`` job gates on; tests call it with a smaller job count.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, Union

from .db import ResultsDb, write_csv
from .harden import FaultPlan, FaultyFS
from .manifest import parse_manifest
from .plot import render, series_from_table
from .queue import RESULT_DONE, CampaignQueue
from .service import run_campaign_serial

#: short lease so the surviving worker steals quickly
SELFCHECK_LEASE_SECONDS = 2.0

#: quiescent storage shim spec: every IO routed through FaultyFS with
#: the injection rate at zero, proving the shim itself is bit-neutral
QUIESCENT_PLAN = "seed=0,rate=0"


def sim_probe(seed: int, cycles: int = 3_000) -> Dict[str, Any]:
    """One tiny deterministic simulation: the selfcheck's unit of work.

    Runs a one-workload MITTS system for ``cycles`` with periodic
    checkpoints (so a stolen job resumes rather than restarts) and
    returns numeric stats plus the run fingerprint -- enough signal for
    the database fingerprint to catch any nondeterminism.
    """
    from ..resilience.checkpoint import run_with_checkpoints
    from ..sim.system import SCALED_MULTI_CONFIG, SimSystem
    from ..workloads.mixes import workload_traces

    def make() -> SimSystem:
        return SimSystem(workload_traces(1, seed=seed),
                         config=SCALED_MULTI_CONFIG)

    system = run_with_checkpoints(make, cycles,
                                  interval=max(1, cycles // 4))
    stats = system.stats
    return {
        "seed": seed,
        "cycles": stats.cycles,
        "dram_requests": stats.total_dram_requests,
        "row_hit_rate": stats.row_hit_rate,
        "fingerprint": stats.fingerprint(),
    }


def selfcheck_manifest(num_jobs: int, cycles: int) -> Dict[str, Any]:
    """The selfcheck campaign as a plain manifest document."""
    return {
        "name": "fabric-selfcheck",
        "fn": "repro.fabric.selfcheck:sim_probe",
        "fixed": {"cycles": cycles},
        "grid": {"seed": list(range(1, num_jobs + 1))},
        "policy": {"timeout": 120.0, "retries": 3},
    }


def _spawn_worker(root: Path, campaign_id: str,
                  die_after_claims: int = 0) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro.fabric", "work", str(root),
               "--campaign", campaign_id, "--jobs", "1",
               "--lease", str(SELFCHECK_LEASE_SECONDS), "--poll", "0.1",
               "--inject-faults", QUIESCENT_PLAN]
    if die_after_claims:
        command += ["--die-after-claims", str(die_after_claims)]
    return subprocess.Popen(command)


def run_selfcheck(workdir: Union[str, Path], num_jobs: int = 24,
                  cycles: int = 3_000, timeout: float = 600.0,
                  echo=print) -> Dict[str, Any]:
    """Run the whole scenario; returns a report dict with ``"ok"``.

    ``workdir`` receives two queue roots (``serial/``, ``fabric/``),
    two databases, and the exported CSV/SVG artifacts.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    manifest = parse_manifest(selfcheck_manifest(num_jobs, cycles))

    # --- reference: serial drain --------------------------------------
    echo(f"[selfcheck] serial reference: {num_jobs} jobs x "
         f"{cycles} cycles")
    serial_queue = CampaignQueue.submit(workdir / "serial", manifest)
    serial_queue.storage = FaultyFS(FaultPlan.parse(QUIESCENT_PLAN),
                                    inner=serial_queue.storage)
    run_campaign_serial(serial_queue)
    with ResultsDb(workdir / "serial.sqlite") as serial_db:
        serial_db.merge_queue(serial_queue)
        serial_print = serial_db.fingerprint(serial_queue.campaign_id)

    # --- two concurrent pools, one killed mid-campaign ----------------
    echo("[selfcheck] concurrent drain: 2 workers, killing one "
         "after its first claim")
    fabric_queue = CampaignQueue.submit(workdir / "fabric", manifest)
    victim = _spawn_worker(workdir / "fabric", fabric_queue.campaign_id,
                           die_after_claims=1)
    survivor = _spawn_worker(workdir / "fabric", fabric_queue.campaign_id)
    victim_code = victim.wait(timeout=timeout)
    survivor_code = survivor.wait(timeout=timeout)

    stolen = 0
    for index in fabric_queue.job_indices():
        record = fabric_queue.load_result(index) or {}
        if record.get("lease_generation", 1) > 1:
            stolen += 1
    with ResultsDb(workdir / "fabric.sqlite") as fabric_db:
        fabric_db.merge_queue(fabric_queue)
        fabric_print = fabric_db.fingerprint(fabric_queue.campaign_id)

        # --- read side: query + plot from the database alone ----------
        headers, rows = fabric_db.table(fabric_queue.campaign_id)
        csv_text = write_csv(headers, rows, workdir / "selfcheck.csv")
        figure = render(
            series_from_table(headers, rows, x="seed",
                              y="dram_requests"),
            title="fabric selfcheck: DRAM requests by seed",
            x_label="seed", y_label="dram_requests",
            out_path=workdir / "selfcheck.svg")

    status_at = headers.index("status")
    done = sum(1 for row in rows if row[status_at] == RESULT_DONE)
    report = {
        "ok": (serial_print == fabric_print
               and done == num_jobs
               and survivor_code == 0
               and victim_code != 0
               and stolen >= 1),
        "num_jobs": num_jobs,
        "done": done,
        "stolen": stolen,
        "victim_exit": victim_code,
        "survivor_exit": survivor_code,
        "serial_fingerprint": serial_print,
        "fabric_fingerprint": fabric_print,
        "fingerprints_match": serial_print == fabric_print,
        "csv_rows": csv_text.count("\n") - 1,
        "figure": str(figure),
    }
    echo(f"[selfcheck] victim exit {victim_code}, survivor exit "
         f"{survivor_code}, {done}/{num_jobs} done, {stolen} stolen")
    echo(f"[selfcheck] serial  {serial_print[:16]}…")
    echo(f"[selfcheck] fabric  {fabric_print[:16]}…")
    echo(f"[selfcheck] {'OK' if report['ok'] else 'MISMATCH'}")
    return report


__all__ = ["run_selfcheck", "selfcheck_manifest", "sim_probe",
           "SELFCHECK_LEASE_SECONDS", "QUIESCENT_PLAN"]
