"""Fabric hardening: deterministic storage fault injection.

This is the fabric analogue of :mod:`repro.resilience.chaos`: robustness
code that is never exercised is decoration, so :class:`FaultyFS` wraps
the queue's storage seam (:mod:`repro.fabric.storage`) and injects the
failure modes that dominate long campaigns on real shared filesystems --
**torn renames** (tmp written, replace never happens), **short writes**
(destination silently truncated), **ENOSPC**, **EIO**, and **stale
reads** (an NFS-flavoured cache serving the previous version of a file).

Every injection is drawn from one ``random.Random(seed)`` stream, so a
failing run reproduces exactly from its plan; :attr:`FaultyFS.injected`
counts what actually fired so tests can assert the recovery path was
*reached*, not merely survived.  A plan with ``rate=0`` is the
*quiescent shim*: every operation routed through the fault layer,
nothing injected -- the configuration the selfcheck pins fingerprint
equality under, proving the seam itself is bit-neutral.

``python -m repro.fabric work --inject-faults "seed=7,rate=0.05"``
attaches a shim inside a worker process; :func:`run_fleetcheck` (the CI
``chaos-fleet`` scenario) drives supervised worker fleets over a
poisoned campaign with the shim active and asserts the campaign still
terminates with an explicit ``complete-degraded`` disposition.
"""

from __future__ import annotations

import errno
import json
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .storage import PathLike, RealStorage, Storage

#: every fault class FaultyFS can inject
FAULT_CLASSES = ("torn-rename", "short-write", "enospc", "eio",
                 "stale-read")

#: faults applicable per operation kind
_WRITE_FAULTS = ("torn-rename", "short-write", "enospc")
_CREATE_FAULTS = ("enospc",)
_READ_FAULTS = ("eio", "stale-read")
_RENAME_FAULTS = ("eio",)


class FaultPlanError(ValueError):
    """An ``--inject-faults`` specification is malformed."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of which faults to inject, and how often.

    ``rate`` is the per-operation injection probability; ``limit``
    (optional) caps total injections so a test can say "exactly the
    first N writes are sick, then the filesystem heals".  ``rate=0`` is
    the quiescent shim used to pin bit-neutrality.
    """

    seed: int = 0
    rate: float = 0.0
    faults: Tuple[str, ...] = FAULT_CLASSES
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"rate must be in [0, 1], got {self.rate}")
        unknown = sorted(set(self.faults) - set(FAULT_CLASSES))
        if unknown:
            raise FaultPlanError(f"unknown fault class(es) {unknown}; "
                                 f"known: {list(FAULT_CLASSES)}")

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI form: ``seed=7,rate=0.05,faults=enospc+eio``."""
        seed, rate, faults, limit = 0, 0.0, FAULT_CLASSES, None
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise FaultPlanError(f"expected key=value, got {part!r}")
            key, value = part.split("=", 1)
            if key not in ("seed", "rate", "faults", "limit"):
                raise FaultPlanError(
                    f"unknown key {key!r}; known: seed, rate, "
                    f"faults, limit")
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "rate":
                    rate = float(value)
                elif key == "limit":
                    limit = int(value)
                else:
                    faults = tuple(value.split("+"))
            except ValueError as exc:
                # Note FaultPlanError is itself a ValueError: the key
                # check must stay outside this try or it would be
                # re-reported as a bad value.
                raise FaultPlanError(
                    f"bad value for {key!r}: {value!r}") from exc
        return cls(seed=seed, rate=rate, faults=faults, limit=limit)

    def spec(self) -> str:
        """The CLI form (inverse of :meth:`parse`), for subprocesses."""
        parts = [f"seed={self.seed}", f"rate={self.rate:g}",
                 f"faults={'+'.join(self.faults)}"]
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return ",".join(parts)


class FaultyFS(Storage):
    """Storage shim that deterministically injects filesystem faults.

    Wraps an inner (real) storage; each operation first consults the
    seeded stream to decide whether one of the plan's applicable fault
    classes fires.  Injections are *honest* about their failure mode:

    * ``torn-rename`` -- the tmp file is written, the destination is
      never replaced, and the caller sees ``EIO`` (the footprint of a
      crash between write and rename: debris plus an unchanged target).
    * ``short-write`` -- the destination atomically receives a truncated
      prefix and the call **returns success** (silent corruption; only a
      read-back verify can catch it).
    * ``enospc`` / ``eio`` -- the errno is raised before any mutation.
    * ``stale-read`` -- the *previous* committed content of the path is
      returned (an NFS attribute-cache lie); only meaningful once a path
      has been rewritten at least once.
    """

    def __init__(self, plan: FaultPlan,
                 inner: Optional[Storage] = None) -> None:
        self.plan = plan
        self.inner = inner or RealStorage()
        self._rng = random.Random(("faultyfs", plan.seed).__repr__())
        #: injections that actually fired, by fault class
        self.injected: Dict[str, int] = {}
        #: total operations routed through the shim
        self.operations = 0
        #: previous committed content per path (stale-read material)
        self._previous: Dict[str, str] = {}

    # ------------------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def counts(self) -> Dict[str, Any]:
        """A JSON-able injection report (workers persist this so the
        driving process can assert faults actually fired)."""
        return {"plan": self.plan.spec(), "operations": self.operations,
                "injected": dict(sorted(self.injected.items())),
                "total_injected": self.total_injected}

    def _draw(self, applicable: Tuple[str, ...]) -> Optional[str]:
        """Decide whether (and which) fault fires for this operation."""
        self.operations += 1
        enabled = [name for name in applicable
                   if name in self.plan.faults]
        if not enabled or self.plan.rate <= 0.0:
            return None
        if self.plan.limit is not None \
                and self.total_injected >= self.plan.limit:
            return None
        if self._rng.random() >= self.plan.rate:
            return None
        fault = enabled[self._rng.randrange(len(enabled))]
        self.injected[fault] = self.injected.get(fault, 0) + 1
        return fault

    @staticmethod
    def _oserror(code: int, what: str, path: PathLike) -> OSError:
        return OSError(code, f"injected {what}", str(path))

    # ------------------------------------------------------------------
    # Storage interface

    def read_text(self, path: PathLike) -> str:
        fault = self._draw(_READ_FAULTS)
        if fault == "eio":
            raise self._oserror(errno.EIO, "EIO on read", path)
        if fault == "stale-read":
            stale = self._previous.get(str(path))
            if stale is not None:
                return stale
        text = self.inner.read_text(path)
        return text

    def write_atomic(self, path: PathLike, text: str) -> None:
        fault = self._draw(_WRITE_FAULTS)
        if fault == "enospc":
            raise self._oserror(errno.ENOSPC, "ENOSPC on write", path)
        self._remember_previous(path)
        if fault == "torn-rename":
            # Write the tmp debris a real torn rename leaves, then fail.
            tmp = Path(path).with_name(f".{Path(path).name}.torn.tmp")
            self.inner.write_atomic(tmp, text)
            raise self._oserror(errno.EIO, "torn rename", path)
        if fault == "short-write":
            self.inner.write_atomic(path, text[:max(1, len(text) // 2)])
            return  # silent: the caller believes the write landed
        self.inner.write_atomic(path, text)

    def create_exclusive(self, path: PathLike, text: str) -> None:
        fault = self._draw(_CREATE_FAULTS)
        if fault == "enospc":
            raise self._oserror(errno.ENOSPC, "ENOSPC on create", path)
        self.inner.create_exclusive(path, text)

    def rename(self, source: PathLike, destination: PathLike) -> None:
        fault = self._draw(_RENAME_FAULTS)
        if fault == "eio":
            raise self._oserror(errno.EIO, "EIO on rename", source)
        self.inner.rename(source, destination)

    def unlink(self, path: PathLike) -> None:
        self.inner.unlink(path)

    def listdir(self, path: PathLike) -> List[str]:
        return self.inner.listdir(path)

    def exists(self, path: PathLike) -> bool:
        return self.inner.exists(path)

    def mkdir(self, path: PathLike) -> None:
        self.inner.mkdir(path)

    # ------------------------------------------------------------------

    def _remember_previous(self, path: PathLike) -> None:
        """Record the current committed content as stale-read material."""
        try:
            self._previous[str(path)] = self.inner.read_text(path)
        except OSError:
            # No previous version: a stale read of a never-written path
            # is indistinguishable from a missing file, so nothing to
            # record.
            return


# ----------------------------------------------------------------------
# the chaos-fleet scenario (CI `chaos-fleet` / `make chaos-fleet`)


#: sidecar the CLI writes into the campaign directory after a faulted
#: drain, so the driving process can prove injections actually fired
INJECTION_SIDECAR_PREFIX = "fault-injections-"

#: short lease so steals after a forced kill happen quickly
FLEETCHECK_LEASE_SECONDS = 2.0

#: poison-job retry ceiling for the scenario (small = fast quarantine)
FLEETCHECK_MAX_ATTEMPTS = 3


def fleet_probe(seed: int, cycles: int = 1_200,
                poison_seed: int = -1) -> Dict[str, Any]:
    """The fleetcheck's unit of work: a tiny deterministic simulation --
    except for the poison seed, which hard-kills its worker process
    (``os._exit``) the way a segfault or OOM kill would, every single
    time.  That is the job the quarantine machinery must terminate."""
    if seed == poison_seed:
        os._exit(23)  # the poison: deterministic hard crash
    from .selfcheck import sim_probe

    return sim_probe(seed, cycles)


def fleetcheck_manifest(num_jobs: int, cycles: int,
                        poison_seed: int) -> Dict[str, Any]:
    """The 24-job (by default) campaign with one poison job.

    ``retries: 0`` pins runner-internal retry off so every fabric-level
    attempt is exactly one execution -- the attempt ledger, not the
    runner, owns the retry budget here.
    """
    return {
        "name": "fabric-fleetcheck",
        "fn": "repro.fabric.harden:fleet_probe",
        "fixed": {"cycles": cycles, "poison_seed": poison_seed},
        "grid": {"seed": list(range(1, num_jobs + 1))},
        "policy": {"timeout": 120.0, "retries": 0},
    }


def total_injections(campaign_dir: PathLike) -> int:
    """Sum the injection sidecars worker processes left behind."""
    total = 0
    directory = Path(campaign_dir)
    if not directory.is_dir():
        return 0
    for name in sorted(os.listdir(directory)):
        if not (name.startswith(INJECTION_SIDECAR_PREFIX)
                and name.endswith(".json")):
            continue
        try:
            counts = json.loads((directory / name
                                 ).read_text(encoding="utf-8"))
            total += int(counts.get("total_injected", 0))
        except (OSError, ValueError):
            continue
    return total


def run_fleetcheck(workdir: Union[str, Path], num_jobs: int = 24,
                   cycles: int = 1_200, seed: int = 7,
                   timeout: float = 600.0, echo=print) -> Dict[str, Any]:
    """The supervised-fleet acceptance scenario.

    Two drains of the same poisoned campaign:

    * **baseline** -- one supervised pool, real storage;
    * **chaos** -- two supervised pools, every child running behind a
      seeded :class:`FaultyFS`, pool 0's first incarnation hard-killed
      after its first claim (supervisor must restart it).

    Both must terminate ``complete-degraded`` with exactly the poison
    job in the dead-letter directory, and their database fingerprints
    (full, and done-rows-only) must be identical -- storage faults,
    kills, restarts, and steals may cost wall-clock, never bits.
    """
    from .db import ResultsDb
    from .manifest import parse_manifest
    from .queue import (DISPOSITION_DEGRADED, RESULT_DONE, REASON_EXHAUSTED,
                        CampaignQueue)
    from .supervise import run_supervisor

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    poison_seed = min(5, num_jobs)
    manifest = parse_manifest(
        fleetcheck_manifest(num_jobs, cycles, poison_seed))

    echo(f"[fleetcheck] baseline: 1 supervised pool, {num_jobs} jobs, "
         f"poison seed {poison_seed}")
    baseline_queue = CampaignQueue.submit(workdir / "baseline", manifest)
    baseline = run_supervisor(
        baseline_queue, pools=1, jobs=1,
        lease_seconds=FLEETCHECK_LEASE_SECONDS,
        max_attempts=FLEETCHECK_MAX_ATTEMPTS, seed=seed,
        timeout=timeout, echo=echo)

    echo("[fleetcheck] chaos: 2 supervised pools behind FaultyFS, "
         "pool 0 killed after its first claim")
    chaos_queue = CampaignQueue.submit(workdir / "chaos", manifest)
    plan = FaultPlan(seed=seed, rate=0.02)
    chaos = run_supervisor(
        chaos_queue, pools=2, jobs=1,
        lease_seconds=FLEETCHECK_LEASE_SECONDS,
        max_attempts=FLEETCHECK_MAX_ATTEMPTS, seed=seed + 1,
        inject_faults=plan.spec(),
        first_spawn_extra=("--die-after-claims", "1"),
        timeout=timeout, echo=echo)

    injections = total_injections(chaos_queue.directory)
    poison_index = poison_seed - 1  # grid order: seeds 1..N
    baseline_dead = baseline_queue.dead_letter_indices()
    chaos_dead = chaos_queue.dead_letter_indices()
    poison_record = baseline_queue.load_result(poison_index) or {}
    poison_error = str(poison_record.get("error", ""))

    with ResultsDb(workdir / "baseline.sqlite") as db:
        db.merge_queue(baseline_queue)
        baseline_print = db.fingerprint(baseline_queue.campaign_id)
        baseline_done_print = db.fingerprint(
            baseline_queue.campaign_id, only_status=RESULT_DONE)
    with ResultsDb(workdir / "chaos.sqlite") as db:
        db.merge_queue(chaos_queue)
        chaos_print = db.fingerprint(chaos_queue.campaign_id)
        chaos_done_print = db.fingerprint(
            chaos_queue.campaign_id, only_status=RESULT_DONE)

    report = {
        "ok": (baseline["disposition"] == DISPOSITION_DEGRADED
               and chaos["disposition"] == DISPOSITION_DEGRADED
               and baseline_dead == [poison_index]
               and chaos_dead == [poison_index]
               and poison_error.startswith(
                   f"quarantined[{REASON_EXHAUSTED}]")
               and baseline_print == chaos_print
               and baseline_done_print == chaos_done_print
               and chaos["restarts"] >= 1
               and injections >= 1),
        "num_jobs": num_jobs,
        "poison_index": poison_index,
        "baseline_disposition": baseline["disposition"],
        "chaos_disposition": chaos["disposition"],
        "baseline_dead_letter": baseline_dead,
        "chaos_dead_letter": chaos_dead,
        "poison_error": poison_error,
        "restarts": chaos["restarts"],
        "injections": injections,
        "baseline_fingerprint": baseline_print,
        "chaos_fingerprint": chaos_print,
        "fingerprints_match": baseline_print == chaos_print,
        "done_fingerprints_match":
            baseline_done_print == chaos_done_print,
    }
    echo(f"[fleetcheck] dispositions: baseline "
         f"{baseline['disposition']}, chaos {chaos['disposition']}; "
         f"dead-letter {chaos_dead}; {chaos['restarts']} restart(s); "
         f"{injections} injection(s)")
    echo(f"[fleetcheck] baseline {baseline_print[:16]}…")
    echo(f"[fleetcheck] chaos    {chaos_print[:16]}…")
    echo(f"[fleetcheck] {'OK' if report['ok'] else 'MISMATCH'}")
    return report


__all__ = ["FAULT_CLASSES", "FaultPlan", "FaultPlanError", "FaultyFS",
           "fleet_probe", "fleetcheck_manifest", "run_fleetcheck",
           "total_injections"]

