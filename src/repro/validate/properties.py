"""Property-based differential testing over random MITTS scenarios.

A :class:`Scenario` is a small, fully seeded simulation setup -- random
bin vectors drawn from the :func:`~repro.core.config_space.
validate_bin_config`-accepted space, random workload mixes, random bin
geometry (and therefore random ``T_r``) -- small enough that hundreds run
in a CI job.  Against each scenario the harness checks properties that
must hold for *every* point of the configuration space, not just the
golden-pinned ones:

``kernels``
    The heap and batched event kernels produce identical full stats
    snapshots (the per-scenario generalisation of the golden-fingerprint
    suite's fixed configurations).
``checkpoint``
    Checkpointing at the halfway cycle and resuming reproduces the
    uninterrupted run exactly -- with the analytic bound checker attached,
    so the checker itself is proven to ride checkpoints.
``relabel``
    Pre-advancing the system's request-id allocator (a pure relabeling;
    ids only break scheduler ties, and a uniform shift preserves every
    ordering) leaves the snapshot bit-identical.
``monotonicity``
    On a controlled single-core derivative of the scenario (FCFS,
    refresh disabled, both configs pinned to one replenishment period),
    adding credits never reduces retired work, and no shaped run ever
    outperforms the unshaped one.
``bounds``
    Both hybrid accounting methods run under the
    :class:`~repro.validate.bounds.BoundChecker` without a violation,
    and the checker demonstrably performed checks (a silently inert
    checker is itself a failure).

Everything is derived from ``(master_seed, index)`` -- no wall clock, no
unseeded randomness -- so any failure replays from its seed alone, and
:func:`shrink_cycles` bisects the horizon down to a minimal failing
prefix before the failure is reported.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..core.bins import BinConfig, BinSpec
from ..core.config_space import validate_bin_config
from ..core.replenish import ResetReplenisher
from ..core.shaper import MittsShaper
from ..sim.system import (SCALED_MULTI_CONFIG, SCALED_SINGLE_CONFIG,
                          SimSystem, SystemConfig)
from ..workloads.benchmarks import available_benchmarks, trace_for
from .bounds import BoundChecker, BoundViolation, attach_checker


class PropertyFailure(AssertionError):
    """A property did not hold for a scenario.

    Picklable and self-describing: carries the property name, the
    scenario (replayable from its seed), and a human-readable detail.
    """

    def __init__(self, prop: str, scenario: "Scenario",
                 detail: str) -> None:
        self.prop = prop
        self.scenario = scenario
        self.detail = detail
        super().__init__(
            f"property {prop!r} failed on scenario "
            f"(seed={scenario.master_seed}, index={scenario.index}, "
            f"shape={scenario.shape}): {detail}")

    def __reduce__(self):
        return (PropertyFailure, (self.prop, self.scenario, self.detail))


# ----------------------------------------------------------------------
# scenario generation


@dataclass(frozen=True)
class Scenario:
    """One fully seeded random simulation setup (replayable from seed)."""

    master_seed: int
    index: int
    #: generator family the credit vectors came from (reporting only)
    shape: str
    benchmarks: Tuple[str, ...]
    trace_seed: int
    num_bins: int
    interval_length: int
    credits: Tuple[Tuple[int, ...], ...]
    method: int
    cycles: int
    check_period: int

    @property
    def spec(self) -> BinSpec:
        return BinSpec(num_bins=self.num_bins,
                       interval_length=self.interval_length)

    def bin_configs(self) -> List[BinConfig]:
        spec = self.spec
        return [validate_bin_config(BinConfig(spec=spec, credits=vector))
                for vector in self.credits]

    def describe(self) -> str:
        return (f"#{self.index} shape={self.shape} "
                f"cores={len(self.benchmarks)} "
                f"bins={self.num_bins}x{self.interval_length} "
                f"method={self.method} cycles={self.cycles}")


#: deterministic rotation of generator families so every small run still
#: covers the edge shapes (all-burst bursts, single-token starvation
#: pressure, interval_length=1 replenishment-boundary collisions, sparse
#: vectors) alongside fully random draws
SHAPES = ("random", "all_burst", "random", "single_token", "random",
          "boundary", "sparse", "random")


def _credit_vector(rng: random.Random, shape: str,
                   num_bins: int, max_credits: int) -> Tuple[int, ...]:
    """One credit vector from the validate_bin_config-accepted space."""
    if shape == "all_burst":
        vector = [0] * num_bins
        vector[0] = rng.randint(2, 24)
    elif shape == "single_token":
        vector = [0] * num_bins
        vector[rng.randrange(num_bins)] = 1
    elif shape == "sparse":
        vector = [0] * num_bins
        for _ in range(rng.randint(1, 2)):
            vector[rng.randrange(num_bins)] = rng.randint(1, 3)
    else:  # "random" and "boundary" draw dense-ish vectors
        vector = [rng.choice((0, 0, 1, 1, 2, 3, 5, 8, 13))
                  for _ in range(num_bins)]
    if not any(vector):
        vector[rng.randrange(num_bins)] = 1
    vector = [min(v, max_credits) for v in vector]
    return tuple(vector)


def generate_scenario(master_seed: int, index: int) -> Scenario:
    """Deterministically derive scenario ``index`` of a seeded stream."""
    rng = random.Random(master_seed * 1_000_003 + index)
    shape = SHAPES[index % len(SHAPES)]
    if shape == "boundary":
        # Tiny bins: T_r collapses to a handful of cycles, so every
        # replenishment boundary collides with in-flight aging walks.
        num_bins = rng.randint(2, 5)
        interval_length = 1
    else:
        num_bins = rng.randint(4, 10)
        interval_length = rng.choice((5, 10, 10, 20))
    num_cores = rng.randint(1, 3)
    names = rng.choices(available_benchmarks(), k=num_cores)
    spec = BinSpec(num_bins=num_bins, interval_length=interval_length)
    credits = tuple(_credit_vector(rng, shape, num_bins, spec.max_credits)
                    for _ in range(num_cores))
    return Scenario(
        master_seed=master_seed,
        index=index,
        shape=shape,
        benchmarks=tuple(names),
        trace_seed=rng.randint(1, 10_000),
        num_bins=num_bins,
        interval_length=interval_length,
        credits=credits,
        method=rng.choice((MittsShaper.METHOD_DEDUCT_REFUND,) * 3
                          + (MittsShaper.METHOD_TIMESTAMP,)),
        cycles=rng.randint(4_000, 12_000),
        check_period=rng.choice((128, 257, 512)),
    )


# ----------------------------------------------------------------------
# system assembly


def build_system(scenario: Scenario, kernel: str = "batched", *,
                 system_config: Optional[SystemConfig] = None,
                 period: Optional[int] = None,
                 with_checker: bool = True,
                 bound_scale: float = 1.0,
                 advance_ids: int = 0
                 ) -> Tuple[SimSystem, Optional[BoundChecker]]:
    """Assemble the scenario's system (plus its bound checker).

    ``period`` pins every shaper to one explicit replenishment period
    (the monotonicity property needs both runs on identical boundaries);
    ``advance_ids`` burns that many request ids before the run starts
    (the relabeling property); ``bound_scale`` passes through to the
    checker (test-only weakening hook).
    """
    traces = [trace_for(name, seed=scenario.trace_seed + i)
              for i, name in enumerate(scenario.benchmarks)]
    limiters = []
    for config in scenario.bin_configs():
        replenisher = (ResetReplenisher(config, period=period)
                       if period is not None else None)
        limiters.append(MittsShaper(config, replenisher=replenisher,
                                    method=scenario.method))
    base = (SCALED_SINGLE_CONFIG if len(traces) == 1
            else SCALED_MULTI_CONFIG)
    if system_config is not None:
        base = system_config
    system = SimSystem(traces, config=replace(base, kernel=kernel),
                       limiters=limiters)
    for _ in range(advance_ids):
        system.request_ids()
    checker = None
    if with_checker:
        checker = attach_checker(system,
                                 check_period=scenario.check_period,
                                 bound_scale=bound_scale)
    return system, checker


def _snapshot_diff(a: Dict, b: Dict) -> str:
    """First few differing keys of two stats snapshots."""
    diffs = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            diffs.append(f"{key}: {va!r} != {vb!r}")
        if len(diffs) >= 4:
            break
    return "; ".join(diffs) if diffs else "snapshots differ"


# ----------------------------------------------------------------------
# the properties


def prop_kernels(scenario: Scenario) -> None:
    """Heap and batched kernels agree on the full stats snapshot."""
    heap, _ = build_system(scenario, kernel="heap")
    batched, _ = build_system(scenario, kernel="batched")
    heap.run(scenario.cycles)
    batched.run(scenario.cycles)
    a, b = heap.stats.snapshot(), batched.stats.snapshot()
    if a != b:
        raise PropertyFailure("kernels", scenario, _snapshot_diff(a, b))


def prop_checkpoint(scenario: Scenario) -> None:
    """Halfway checkpoint + resume reproduces the uninterrupted run."""
    reference, _ = build_system(scenario, kernel="batched")
    reference.run(scenario.cycles)

    half = max(1, scenario.cycles // 2)
    first, _ = build_system(scenario, kernel="batched")
    first.run(half)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "halfway.ckpt"
        first.save_checkpoint(path)
        resumed = SimSystem.load_checkpoint(path)
    probe = resumed.mc.probe
    if not isinstance(probe, BoundChecker):
        raise PropertyFailure(
            "checkpoint", scenario,
            f"bound checker did not survive the checkpoint "
            f"(mc.probe is {type(probe).__name__})")
    resumed.run(scenario.cycles - half)
    a, b = reference.stats.snapshot(), resumed.stats.snapshot()
    if a != b:
        raise PropertyFailure("checkpoint", scenario, _snapshot_diff(a, b))


def prop_relabel(scenario: Scenario) -> None:
    """Uniformly shifting request ids never changes the snapshot."""
    rng = random.Random(scenario.master_seed * 104_729 + scenario.index)
    shift = rng.randint(1, 997)
    plain, _ = build_system(scenario, kernel="batched")
    shifted, _ = build_system(scenario, kernel="batched",
                              advance_ids=shift)
    plain.run(scenario.cycles)
    shifted.run(scenario.cycles)
    a, b = plain.stats.snapshot(), shifted.stats.snapshot()
    if a != b:
        raise PropertyFailure(
            "relabel", scenario,
            f"id shift {shift} changed the run: {_snapshot_diff(a, b)}")


def prop_monotonicity(scenario: Scenario) -> None:
    """More credits never slow a core down; shaping never speeds it up.

    Both claims are only sound on a controlled derivative: one core (so
    the address stream, and hence every hit/miss, is order-determined),
    head-select FCFS dispatch, refresh disabled, and both shaped runs
    pinned to one shared replenishment period (so the boosted config's
    credit state dominates the base config's at every cycle).
    """
    rng = random.Random(scenario.master_seed * 7_919 + scenario.index)
    spec = scenario.spec
    base_vector = list(scenario.credits[0])
    boosted = list(base_vector)
    for _ in range(rng.randint(1, 3)):
        where = rng.randrange(spec.num_bins)
        boosted[where] = min(spec.max_credits,
                             boosted[where] + rng.randint(1, 4))
    period = BinConfig(spec=spec,
                       credits=tuple(base_vector)).replenish_period()

    timing = replace(SCALED_SINGLE_CONFIG.timing, refresh_enabled=False)
    config = replace(SCALED_SINGLE_CONFIG, timing=timing)
    single = replace(scenario, benchmarks=scenario.benchmarks[:1])

    def retired(vector, pinned_period) -> int:
        derived = replace(single, credits=(tuple(vector),))
        system, _ = build_system(derived, kernel="batched",
                                 system_config=config,
                                 period=pinned_period)
        system.run(scenario.cycles)
        return system.stats.cores[0].retired

    base_work = retired(base_vector, period)
    boosted_work = retired(boosted, period)
    if boosted_work < base_work:
        raise PropertyFailure(
            "monotonicity", scenario,
            f"boosting {base_vector} -> {boosted} reduced retired work "
            f"{base_work} -> {boosted_work}")
    unshaped_work = retired(BinConfig.unlimited(spec).credits, None)
    if base_work > unshaped_work:
        raise PropertyFailure(
            "monotonicity", scenario,
            f"shaped config {base_vector} retired {base_work} > "
            f"unshaped {unshaped_work}")


def prop_bounds(scenario: Scenario) -> None:
    """Both hybrid methods run bound-clean, and the checker is live."""
    for method in (MittsShaper.METHOD_DEDUCT_REFUND,
                   MittsShaper.METHOD_TIMESTAMP):
        derived = replace(scenario, method=method)
        system, checker = build_system(derived, kernel="batched")
        system.run(scenario.cycles)  # a violation raises BoundViolation
        if checker.checks["credit"] == 0:
            raise PropertyFailure(
                "bounds", scenario,
                f"method {method}: checker performed zero credit checks "
                f"(check_period {scenario.check_period} vs horizon "
                f"{scenario.cycles})")
        if method == MittsShaper.METHOD_DEDUCT_REFUND \
                and checker.checks["arrival"] == 0:
            raise PropertyFailure(
                "bounds", scenario,
                "method 2: checker performed zero arrival-curve checks")


#: name -> property, in reporting order
PROPERTIES: Dict[str, Callable[[Scenario], None]] = {
    "kernels": prop_kernels,
    "checkpoint": prop_checkpoint,
    "relabel": prop_relabel,
    "monotonicity": prop_monotonicity,
    "bounds": prop_bounds,
}


# ----------------------------------------------------------------------
# running + shrinking


@dataclass(frozen=True)
class Failure:
    """One property failure, shrunk and ready to report."""

    prop: str
    scenario: Scenario
    detail: str
    #: smallest failing horizon found by bisection (== scenario.cycles
    #: when shrinking was disabled or could not reduce it)
    shrunk_cycles: int

    def describe(self) -> str:
        return (f"{self.prop} FAILED on scenario {self.scenario.index} "
                f"(seed {self.scenario.master_seed}, "
                f"shape {self.scenario.shape}, shrunk to "
                f"{self.shrunk_cycles} cycles): {self.detail}\n"
                f"  replay: scenario = generate_scenario("
                f"{self.scenario.master_seed}, {self.scenario.index})")


def check_once(prop: str, scenario: Scenario) -> Optional[str]:
    """Run one property; return the failure detail, or None if it holds."""
    try:
        PROPERTIES[prop](scenario)
    except (PropertyFailure, BoundViolation) as exc:
        return str(exc)
    return None


def shrink_cycles(prop: str, scenario: Scenario,
                  max_probes: int = 7) -> int:
    """Bisect the cycle horizon down to a minimal failing prefix.

    The scenario is known to fail at ``scenario.cycles``; properties are
    prefix-observable (every check applies at every horizon), so a
    shorter failing horizon is an equally valid -- and much easier to
    debug -- witness.  Returns the smallest failing horizon found.
    """
    low, high = 0, scenario.cycles  # fails at high, unknown below
    for _ in range(max_probes):
        if high - low <= max(64, high // 16):
            break
        mid = (low + high) // 2
        if check_once(prop, replace(scenario, cycles=mid)) is not None:
            high = mid
        else:
            low = mid
    return high


def run_scenario(scenario: Scenario, only: Optional[str] = None,
                 shrink: bool = True) -> List[Failure]:
    """Run every (or one) property against a scenario."""
    failures: List[Failure] = []
    for prop in PROPERTIES:
        if only is not None and prop != only:
            continue
        detail = check_once(prop, scenario)
        if detail is None:
            continue
        cycles = (shrink_cycles(prop, scenario) if shrink
                  else scenario.cycles)
        failures.append(Failure(prop=prop, scenario=scenario,
                                detail=detail, shrunk_cycles=cycles))
    return failures
