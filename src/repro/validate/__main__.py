"""Seeded property-fuzzer CLI: ``python -m repro.validate``.

Runs ``--scenarios`` randomly generated scenarios (derived entirely from
``--seed``; identical invocations are bit-identical) through every
property in :mod:`repro.validate.properties`, shrinking each failure to
a minimal cycle horizon before reporting it.  Exit status 0 means every
property held on every scenario.

The same entry point serves three roles: the pytest suite calls
:func:`main` directly with a small scenario count, CI runs it as the
``bounds-smoke`` job (with ``REPRO_CONTRACTS`` both unset and set), and
a developer chasing a bug runs it with a large ``--scenarios`` as a
reproducible fuzzer -- any failure prints the ``generate_scenario``
call that replays it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .properties import (PROPERTIES, Failure, generate_scenario,
                         run_scenario)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Property-based differential fuzzer for the MITTS "
                    "simulator: analytic bounds, kernel equivalence, "
                    "checkpoint-resume, id-relabeling, monotonicity.")
    parser.add_argument("--scenarios", type=int, default=25,
                        help="number of random scenarios (default 25)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed; the whole run derives from it "
                             "(default 0)")
    parser.add_argument("--only", choices=sorted(PROPERTIES),
                        help="run a single property instead of all")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures at the original horizon "
                             "instead of bisecting to a minimal one")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first failing scenario")
    args = parser.parse_args(argv)
    if args.scenarios < 1:
        parser.error("--scenarios must be >= 1")

    failures: List[Failure] = []
    for index in range(args.scenarios):
        scenario = generate_scenario(args.seed, index)
        found = run_scenario(scenario, only=args.only,
                             shrink=not args.no_shrink)
        status = "ok" if not found else \
            "FAIL " + ",".join(f.prop for f in found)
        print(f"[{index + 1:>3}/{args.scenarios}] "
              f"{scenario.describe()}: {status}")
        failures.extend(found)
        if failures and args.fail_fast:
            break

    print()
    if failures:
        for failure in failures:
            print(failure.describe())
        print(f"\n{len(failures)} property failure(s) over "
              f"{args.scenarios} scenario(s) [seed {args.seed}]")
        return 1
    which = args.only or f"all {len(PROPERTIES)} properties"
    print(f"{args.scenarios} scenario(s) x {which} held "
          f"[seed {args.seed}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
