"""Analytic bound oracle: network-calculus envelopes for MITTS systems.

MITTS guarantees each core a bin-shaped inter-arrival envelope, which is
exactly an *arrival curve* in the network-calculus sense (Mohammadpour et
al. on credit-based/asynchronous traffic shaping, Jiang's LRQ shaper
properties -- see PAPERS.md): over any window of ``W`` cycles a shaped
core can inject at most ``rate * W + burst`` memory requests.  Combined
with a guaranteed-rate model of the DRAM service (worst-case bank timing
from :mod:`repro.dram.timing`), closed-form worst-case bounds on memory-
controller backlog and request sojourn follow.  This module derives those
bounds from a :class:`~repro.core.bins.BinConfig` and asserts -- during a
live simulation -- that the simulator never violates them: a contracts-
style cross-check between theory and implementation (ROADMAP item 4c).

Derivations (all conservative; constants err on the generous side so a
violation is always a real bug, never a slack misestimate):

**Arrival curve** (per shaped core).  Within one replenishment period
``T_r`` the credit registers hold at most ``K_tot = sum(K_i)`` tokens, and
each boundary resets them to at most ``K_tot``.  Every release deducts one
credit; an LLC *hit* refunds it (hybrid method 2), so releases that turn
out to be LLC misses -- the requests that reach the memory controller --
consume credits permanently within the window.  Over any window ``W``:

    misses(W) <= K_tot * (floor(W / T_r) + 2) + slack

where the ``+2`` covers the partially-elapsed periods at both window
edges, and ``slack`` covers in-flight refunds from releases before the
window (bounded by the core's MSHR count).  Hence ``rate = K_tot / T_r``
and ``burst = 2 * K_tot + slack``.  The envelope is provable only for
method 2 (deduct-at-release): method 1 gates releases on *lagging*
counters -- a release never decrements them, and a confirmation that
finds its bins empty never deducts at all -- so the paper's "slightly
aggressive" variant admits no such hard bound and the checker applies
only the structural (credit-occupancy, MSHR-cap) checks to it.

**Service model**.  The DRAM device guarantees, even when every request
maps to a single bank, one request per ``worst_gap = max(tRC, tRP + tRCD
+ tBL + tWR)`` cycles, derated by refresh availability ``1 - tRFC/tREFI``.

**Backlog**.  Each core holds at most ``cap`` (MSHRs) outstanding demand
requests, and under FCFS dispatch each outstanding demand chain accounts
for at most two unserved writebacks (L1 and LLC dirty victims enqueue
before the chain's next demand), so MC occupancy is bounded by
``sum_i 3 * cap_i + total_banks`` plus a small constant.

**Sojourn** (FCFS only).  A demand request arriving at the MC waits behind
at most the backlog bound of entries plus the in-flight window, each
served within ``worst_gap / availability``, plus one refresh window.

Schedulers that reorder (FR-FCFS and the Section IV-D comparators) keep
the arrival-curve, credit-occupancy, and per-core MSHR-cap checks -- those
are order-independent -- while the FCFS-shaped backlog/sojourn bounds are
disabled rather than weakened ad hoc.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis import contracts
from ..core.bins import BinConfig
from ..core.shaper import MittsShaper
from ..dram.timing import DramTiming


class BoundViolation(contracts.ContractViolation):
    """The simulator exceeded an analytic bound.

    Structured and picklable: the offending check, core, cycle, and
    observed-vs-bound values travel as attributes (and through ``args``)
    so a worker process can ship the violation back to the fabric intact.
    Subclasses :class:`~repro.analysis.contracts.ContractViolation`, so
    contracts observers registered via ``contracts.add_observer`` see
    bound violations through the same hook as invariant failures.
    """

    __slots__ = ("kind", "core", "cycle", "observed", "bound", "detail")

    def __init__(self, kind: str, core: Optional[int], cycle: int,
                 observed: float, bound: float, detail: str = "") -> None:
        self.kind = kind
        self.core = core
        self.cycle = cycle
        self.observed = observed
        self.bound = bound
        self.detail = detail
        where = "system-wide" if core is None else f"core {core}"
        message = (f"analytic bound violated: {kind} ({where}, cycle "
                   f"{cycle}): observed {observed} > bound {bound}"
                   + (f" [{detail}]" if detail else ""))
        super().__init__(message)

    def __reduce__(self):
        return (BoundViolation, (self.kind, self.core, self.cycle,
                                 self.observed, self.bound, self.detail))


# ----------------------------------------------------------------------
# arrival curves


@dataclass(frozen=True, slots=True)
class ArrivalCurve:
    """Token-bucket envelope ``alpha(W) = rate * W + burst`` (requests)."""

    rate: float
    burst: float
    period: int

    def bound(self, window: int) -> float:
        """Maximum conforming arrivals over any ``window`` cycles."""
        if window <= 0:
            return self.burst
        return self.rate * window + self.burst


def arrival_curve(config: BinConfig, outstanding: int,
                  period: Optional[int] = None) -> ArrivalCurve:
    """Arrival curve of the LLC-miss stream a method-2 MITTS config permits.

    ``outstanding`` is the core's MSHR cap -- it bounds releases from
    before the window whose hit/miss determination (and hence permanent
    credit consumption) lands inside it.  ``period`` is the replenisher's
    *live* period: a shaper may be pinned to a period other than the
    config's natural ``T_r`` (staggered co-runners, the macro-tick pump's
    shared boundary), and the envelope must use whichever period actually
    gates the credit supply.
    """
    total = config.total_credits
    if period is None:
        period = config.replenish_period()
    return ArrivalCurve(rate=total / period, burst=2 * total + outstanding,
                        period=period)


# ----------------------------------------------------------------------
# service model


@dataclass(frozen=True, slots=True)
class ServiceModel:
    """Guaranteed-rate abstraction of the modeled DRAM device."""

    #: worst-case cycles between consecutive services of one bank
    worst_gap: int
    #: fraction of time banks are not refreshing
    availability: float
    #: guaranteed long-run service rate, requests/cycle (single-bank
    #: worst case -- sound for any address stream)
    rate: float
    #: worst-case single-request service latency (no queueing)
    worst_service: int
    #: one refresh window (added once to latency bounds)
    refresh_window: int
    total_banks: int


def service_model(timing: DramTiming) -> ServiceModel:
    """Worst-case guaranteed service of :class:`DramTiming` hardware."""
    worst_gap = max(timing.t_rc,
                    timing.t_rp + timing.t_rcd + timing.t_bl + timing.t_wr)
    if timing.refresh_enabled:
        availability = 1.0 - timing.t_rfc / timing.t_refi
        refresh_window = timing.t_rfc
    else:
        availability = 1.0
        refresh_window = 0
    return ServiceModel(
        worst_gap=worst_gap,
        availability=availability,
        rate=availability / worst_gap,
        worst_service=timing.row_conflict_latency + timing.t_wr,
        refresh_window=refresh_window,
        total_banks=timing.total_banks)


# ----------------------------------------------------------------------
# system-level bounds


@dataclass(frozen=True, slots=True)
class SystemBounds:
    """Every analytic bound derivable for one simulated system.

    ``None`` marks a bound that does not exist for the configuration
    (an unshaped core has no arrival curve; a reordering scheduler
    invalidates the FCFS sojourn argument) -- the checker skips it.
    """

    #: per-core ``(n_i <= K_i)`` limits; None for unshaped cores
    credit_limits: Tuple[Optional[Tuple[int, ...]], ...]
    #: per-core LLC-miss arrival curves; None for unshaped cores
    curves: Tuple[Optional[ArrivalCurve], ...]
    #: per-core MSHR cap on demand requests queued at the MC
    demand_caps: Tuple[int, ...]
    #: system-wide MC occupancy bound (queue + overflow), or None
    backlog: Optional[int]
    #: worst-case demand sojourn, MC arrival -> completion, or None
    sojourn: Optional[int]
    #: measurement slack for windowed arrival checks (cycles): release
    #: -> LLC-determination delay that shifts the observation window
    observation_slack: int

    def stable(self) -> bool:
        """Do the aggregate arrival rates stay within guaranteed service?"""
        return self.backlog is not None


def derive_bounds(system) -> SystemBounds:
    """Compute :class:`SystemBounds` for a live :class:`SimSystem`.

    Pure derivation -- reads configuration only, never simulation state,
    so the same system always yields the same bounds.
    """
    service = service_model(system.config.timing)
    caps = system.outstanding_caps()
    credit_limits: List[Optional[Tuple[int, ...]]] = []
    curves: List[Optional[ArrivalCurve]] = []
    all_shaped = True
    for port, cap in zip(system.ports, caps):
        limiter = port.limiter
        if isinstance(limiter, MittsShaper):
            credit_limits.append(tuple(limiter.config.credits))
        else:
            credit_limits.append(None)
        if isinstance(limiter, MittsShaper) \
                and limiter.method == MittsShaper.METHOD_DEDUCT_REFUND:
            curves.append(arrival_curve(limiter.config, cap,
                                        period=limiter.replenisher.period))
        else:
            # Unshaped, or method 1 (no provable envelope -- see module
            # docstring): keep the structural checks, skip the curve.
            curves.append(None)
            all_shaped = False

    # Backlog/sojourn need (a) a head-select (FCFS-order) scheduler so the
    # writeback-interleaving argument holds, (b) every core shaped so the
    # aggregate arrival rate exists, and (c) stability: aggregate demand
    # rate (times the <=3x demand+writeback multiplier) within the
    # guaranteed service rate.
    fcfs = bool(getattr(system.scheduler, "selects_head", False))
    backlog: Optional[int] = None
    sojourn: Optional[int] = None
    if fcfs and all_shaped and curves:
        aggregate_rate = 3.0 * sum(curve.rate for curve in curves)
        if aggregate_rate < service.rate:
            backlog = 3 * sum(caps) + service.total_banks + 8
            drain = (backlog + service.total_banks + 1) * service.worst_gap
            sojourn = (math.ceil(drain / service.availability)
                       + service.refresh_window + service.worst_service)

    # Window slack: a release is observed (counted as an LLC miss) one
    # LLC determination later -- hit latency plus worst-case bank-busy
    # backup behind every other outstanding request in the system.
    slack = (system.config.llc_hit_latency
             + system.config.llc_bank_busy * (sum(caps) + 1) + 64)
    return SystemBounds(credit_limits=tuple(credit_limits),
                        curves=tuple(curves),
                        demand_caps=tuple(caps),
                        backlog=backlog,
                        sojourn=sojourn,
                        observation_slack=slack)


# ----------------------------------------------------------------------
# the live checker


class BoundChecker:
    """Engine observer asserting analytic bounds during a simulation.

    Attach with :meth:`attach` (or the :func:`attach_checker` one-liner);
    the checker then

    * samples per-core credit occupancy, per-core MC demand depth, MC
      occupancy, and windowed LLC-miss arrival counts every
      ``check_period`` cycles (via ``system.every``), and
    * measures every demand request's MC sojourn through the memory
      controller's completion probe,

    raising :class:`BoundViolation` (announced to contracts observers
    first) the moment an observation exceeds its bound.  The checker is
    an observer only -- it never mutates simulator state -- so attaching
    it is bit-neutral and it rides checkpoints like any other component
    (everything it holds is picklable).

    ``bound_scale`` is a **test-only** hook: scaling the derived bounds
    down (e.g. ``0.0``) proves the checker actually fires, with correct
    core/cycle diagnostics, on an otherwise healthy run.  Production use
    always leaves it at 1.0.
    """

    __slots__ = ("system", "check_period", "bound_scale", "bounds",
                 "_anchors", "checks", "attached")

    #: number of (cycle, misses) anchors kept per core for window checks
    WINDOW_ANCHORS = 64

    def __init__(self, system, check_period: int = 512,
                 bound_scale: float = 1.0) -> None:
        if check_period < 1:
            raise ValueError("check_period must be >= 1")
        self.system = system
        self.check_period = check_period
        self.bound_scale = bound_scale
        self.bounds = derive_bounds(system)
        #: per-core list of (cycle, cumulative llc_misses) anchors
        self._anchors: List[List[Tuple[int, int]]] = [
            [] for _ in system.cores]
        #: statistics: checks performed per kind (observability/tests)
        self.checks = {"credit": 0, "arrival": 0, "demand_cap": 0,
                       "backlog": 0, "sojourn": 0}
        self.attached = False

    # -- attachment ----------------------------------------------------

    def attach(self) -> "BoundChecker":
        """Register the periodic tick and the MC completion probe."""
        if self.attached:
            return self
        self.system.mc.probe = self
        self.system.every(self.check_period, self.on_tick)
        self.attached = True
        return self

    # -- violation plumbing --------------------------------------------

    def _fail(self, kind: str, core: Optional[int], observed: float,
              bound: float, detail: str = "") -> None:
        contracts.violate(BoundViolation(
            kind, core, self.system.engine.now, observed, bound, detail))

    # -- periodic checks -----------------------------------------------

    def on_tick(self) -> None:
        """Periodic sampling check (scheduled via ``system.every``)."""
        scale = self.bound_scale
        bounds = self.bounds
        system = self.system
        now = system.engine.now

        # 1. credit occupancy: n_i <= K_i, from outside the registers.
        for core_id, limits in enumerate(bounds.credit_limits):
            if limits is None:
                continue
            limiter = system.ports[core_id].limiter
            for bin_index, (count, limit) in \
                    enumerate(limiter.credit_occupancy()):
                self.checks["credit"] += 1
                if count > scale * limit:
                    self._fail("credit_occupancy", core_id, count,
                               scale * limit, f"bin {bin_index}")

        # 2. windowed arrival curves on the LLC-miss stream.
        slack = bounds.observation_slack
        for core_id, curve in enumerate(bounds.curves):
            if curve is None:
                continue
            misses = system.stats.cores[core_id].llc_misses
            anchors = self._anchors[core_id]
            for cycle, count in anchors:
                self.checks["arrival"] += 1
                allowed = scale * curve.bound(now - cycle + slack)
                if misses - count > allowed:
                    self._fail("arrival_curve", core_id, misses - count,
                               allowed, f"window [{cycle}, {now}]")
            anchors.append((now, misses))
            if len(anchors) > self.WINDOW_ANCHORS:
                del anchors[0]

        # 3. per-core MC demand depth vs the MSHR cap.
        depths = system.mc_demand_depths()
        for core_id, (depth, cap) in enumerate(zip(depths,
                                                   bounds.demand_caps)):
            self.checks["demand_cap"] += 1
            if depth > scale * cap:
                self._fail("mc_demand_cap", core_id, depth, scale * cap)

        # 4. MC occupancy vs the analytic backlog bound.  The peak
        # counter is updated on every enqueue, so sampling it cannot
        # miss a between-tick spike.
        if bounds.backlog is not None:
            self.checks["backlog"] += 1
            peak = system.stats.peak_queue_depth
            if peak > scale * bounds.backlog:
                self._fail("mc_backlog", None, peak,
                           scale * bounds.backlog, "peak_queue_depth")

    # -- completion probe ----------------------------------------------

    def on_mc_complete(self, request, now: int) -> None:
        """MC completion probe: demand sojourn never exceeds the bound."""
        if self.bounds.sojourn is None or request.shaper_bin == -2:
            return
        self.checks["sojourn"] += 1
        sojourn = now - request.mc_arrival_cycle
        bound = self.bound_scale * self.bounds.sojourn
        if sojourn > bound:
            self._fail("mc_sojourn", request.core_id, sojourn, bound,
                       f"req {request.req_id} arrived "
                       f"{request.mc_arrival_cycle}")


def attach_checker(system, check_period: int = 512,
                   bound_scale: float = 1.0) -> BoundChecker:
    """Build and attach a :class:`BoundChecker` to ``system``."""
    return BoundChecker(system, check_period=check_period,
                        bound_scale=bound_scale).attach()
