"""Analytic validation: bound oracle + property-based test harness.

Two halves (DESIGN.md section 13):

* :mod:`repro.validate.bounds` derives network-calculus arrival curves,
  a guaranteed-rate DRAM service model, and worst-case backlog/sojourn
  bounds from a MITTS configuration, and asserts them against a live
  simulation via :class:`BoundChecker` (raising structured, picklable
  :class:`BoundViolation` errors through the contracts observer hook).
* :mod:`repro.validate.properties` generates seeded random scenarios
  and checks differential properties across them -- kernel equivalence,
  checkpoint-resume, id-relabeling invariance, credit monotonicity, and
  bounds-hold -- with shrinking of failures to minimal horizons.

``python -m repro.validate --scenarios N --seed S`` runs the harness
from the command line (see :mod:`repro.validate.__main__`).
"""

from .bounds import (ArrivalCurve, BoundChecker, BoundViolation,
                     ServiceModel, SystemBounds, arrival_curve,
                     attach_checker, derive_bounds, service_model)
from .properties import (PROPERTIES, Failure, PropertyFailure, Scenario,
                         build_system, generate_scenario, run_scenario,
                         shrink_cycles)

__all__ = [
    "ArrivalCurve",
    "BoundChecker",
    "BoundViolation",
    "ServiceModel",
    "SystemBounds",
    "arrival_curve",
    "attach_checker",
    "derive_bounds",
    "service_model",
    "PROPERTIES",
    "Failure",
    "PropertyFailure",
    "Scenario",
    "build_system",
    "generate_scenario",
    "run_scenario",
    "shrink_cycles",
]
