"""MITTS: Memory Inter-arrival Time Traffic Shaping -- ISCA 2016 reproduction.

A full-system Python reproduction of Zhou & Wentzlaff's MITTS: the
bin-based inter-arrival-time traffic shaper, the multicore/DRAM simulation
substrate it is evaluated on, the comparator memory schedulers, the
offline/online genetic-algorithm tuners, and the IaaS economics layer.

Quickstart::

    from repro import BinConfig, MittsShaper, SimSystem, trace_for

    shaper = MittsShaper(BinConfig.from_credits([8, 6, 4, 4, 2, 2, 1, 1, 1, 1]))
    system = SimSystem([trace_for("mcf")], limiters=[shaper])
    stats = system.run(100_000)

See DESIGN.md for the module map and EXPERIMENTS.md for the paper
reproduction results.
"""

from .core import (BinConfig, BinSpec, CreditState, MittsAreaModel,
                   MittsShaper, NoLimiter, RateReplenisher, ResetReplenisher,
                   SourceLimiter, StaticLimiter, TokenBucketLimiter)
from .metrics import (InterarrivalDistribution, average_slowdown,
                      geometric_mean, max_slowdown, slowdowns_from_rates)
from .sim import (Engine, MemoryRequest, SimSystem, SystemConfig,
                  SystemStats)
from .tuning import (FitnessEvaluator, GaParams, GeneticAlgorithm,
                     OnlineGaTuner)
from .workloads import (SyntheticTrace, available_benchmarks, trace_for,
                        workload_names, workload_traces)

__version__ = "1.0.0"

__all__ = [
    "BinConfig",
    "BinSpec",
    "CreditState",
    "Engine",
    "FitnessEvaluator",
    "GaParams",
    "GeneticAlgorithm",
    "InterarrivalDistribution",
    "MemoryRequest",
    "MittsAreaModel",
    "MittsShaper",
    "NoLimiter",
    "OnlineGaTuner",
    "RateReplenisher",
    "ResetReplenisher",
    "SimSystem",
    "SourceLimiter",
    "StaticLimiter",
    "SyntheticTrace",
    "SystemConfig",
    "SystemStats",
    "TokenBucketLimiter",
    "available_benchmarks",
    "average_slowdown",
    "geometric_mean",
    "max_slowdown",
    "slowdowns_from_rates",
    "trace_for",
    "workload_names",
    "workload_traces",
    "__version__",
]
