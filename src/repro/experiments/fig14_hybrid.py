"""Figure 14: MISE vs MITTS vs the MISE+MITTS hybrid (Section IV-E).

Across the eight-program workloads, three systems run each mix: MISE alone
at the controller, MITTS alone (offline-GA shapers over the plain FR-FCFS
controller), and the hybrid -- MITTS shapers *with* MISE as the
centralised policy, the GA re-run against that controller.  The paper
finds the hybrid adds ~4%/5% average throughput/fairness over MITTS alone:
source shaping and smart centralised scheduling compose.
"""

from __future__ import annotations

from typing import Sequence

from ..sched.mise import MiseScheduler
from ..workloads.mixes import workload_traces
from .common import (Result, SCALED_MULTI_CONFIG, get_scale, measure_alone,
                     optimize_mitts, run_scheduler, slowdowns_against)


def run(scale="smoke", seed: int = 1,
        workloads: Sequence[int] = (4, 5, 6)) -> Result:
    scale = get_scale(scale)
    config = SCALED_MULTI_CONFIG
    result = Result(
        experiment="fig14",
        title="Figure 14: MISE vs MITTS vs MISE+MITTS (lower is better)",
        headers=["workload", "policy", "S_avg", "S_max"])
    mitts_savg, hybrid_savg = [], []
    mitts_smax, hybrid_smax = [], []
    for workload_id in workloads:
        traces = workload_traces(workload_id, seed=seed)
        cycles = scale.run_cycles
        alone = measure_alone(traces, config, cycles)

        mise_stats = run_scheduler("MISE", traces, config, cycles)
        mise_sl = slowdowns_against(alone, mise_stats)
        result.rows.append([f"wl{workload_id}", "MISE",
                            sum(mise_sl) / len(mise_sl), max(mise_sl)])

        ga_result, evaluator = optimize_mitts(
            traces, config, cycles, "throughput", scale, seed=seed,
            alone_work=alone)
        stats = evaluator.run_genome(ga_result.best_genome)
        slowdowns = slowdowns_against(alone, stats)
        savg, smax = sum(slowdowns) / len(slowdowns), max(slowdowns)
        result.rows.append([f"wl{workload_id}", "MITTS", savg, smax])
        mitts_savg.append(savg)
        mitts_smax.append(smax)

        hybrid_result, hybrid_eval = optimize_mitts(
            traces, config, cycles, "throughput", scale, seed=seed,
            alone_work=alone,
            scheduler_factory=lambda nc: MiseScheduler(nc))
        stats = hybrid_eval.run_genome(hybrid_result.best_genome)
        slowdowns = slowdowns_against(alone, stats)
        savg, smax = sum(slowdowns) / len(slowdowns), max(slowdowns)
        result.rows.append([f"wl{workload_id}", "MISE+MITTS", savg, smax])
        hybrid_savg.append(savg)
        hybrid_smax.append(smax)

    result.summary["hybrid_throughput_gain_vs_mitts"] = \
        (sum(mitts_savg) / len(mitts_savg)) \
        / (sum(hybrid_savg) / len(hybrid_savg))
    result.summary["hybrid_fairness_gain_vs_mitts"] = \
        (sum(mitts_smax) / len(mitts_smax)) \
        / (sum(hybrid_smax) / len(hybrid_smax))
    result.notes.append("paper: hybrid adds ~4% throughput and ~5% "
                        "fairness over MITTS alone")
    return result


if __name__ == "__main__":
    print(run().render())
