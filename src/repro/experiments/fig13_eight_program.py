"""Figure 13: eight-program throughput/fairness comparison (workloads 4-6).

Identical methodology to Figure 12 at twice the core count, where the
central transaction queue saturates and source control pays off most
(Section IV-D advantage 2).  Paper: MITTS improves throughput/fairness by
11%/30% (wl 4), 12%/24% (wl 5), 4%/32% (wl 6) over the best conventional
scheduler.
"""

from __future__ import annotations

from typing import Sequence

from .common import Result, get_scale
from .fig12_four_program import evaluate_workload, summarize


def run(scale="smoke", seed: int = 1,
        workloads: Sequence[int] = (4, 5, 6)) -> Result:
    scale = get_scale(scale)
    result = Result(
        experiment="fig13",
        title="Figure 13: eight-program throughput (S_avg) and fairness "
              "(S_max) comparison (lower is better)",
        headers=["workload", "policy", "S_avg", "S_max"])
    for workload_id in workloads:
        outcome = evaluate_workload(workload_id, scale, seed)
        summarize(result, workload_id, outcome)
    result.notes.append("paper: MITTS beats the best conventional "
                        "scheduler by 4-12% throughput / 24-32% fairness")
    return result


if __name__ == "__main__":
    print(run().render())
