"""Figure 11: MITTS vs static bandwidth provisioning at equal bandwidth.

Per benchmark, a static limiter enforces a constant request rate (the
paper uses 1 GB/s); MITTS is constrained to the *same average inter-arrival
time and average bandwidth* (Section IV-C's constraint functions) but may
distribute that bandwidth across inter-arrival bins.  The offline GA picks
the distribution; the online GA variant tunes it at runtime.  The paper
reports mcf 1.64x, omnetpp 1.68x, GeoMean 1.18x, with the online GA
slightly worse.

Two scaling notes: the static interval is the scaled-bandwidth equivalent
of the paper's 1 GB/s (the same fraction of DRAM peak), and since that
interval exceeds the default 10x10-cycle bin span, the bin length L is
raised -- exactly the modification Section III-B1 prescribes for
"intrinsically larger inter-arrival times".
"""

from __future__ import annotations

from ..core.bins import BinSpec
from ..core.config_space import repair_to_constraints
from ..core.limiter import StaticLimiter
from ..metrics.slowdown import geometric_mean
from ..sim.system import SimSystem
from ..tuning.ga import GaParams, GeneticAlgorithm
from ..tuning.objectives import FitnessEvaluator, performance_objective
from ..tuning.online import OnlineGaTuner
from ..workloads.benchmarks import SPEC_BENCHMARKS, trace_for
from .common import (Result, SCALED_SINGLE_CONFIG, benchmarks_for,
                     get_scale)

#: static request interval, in cycles: the scaled equivalent of 1 GB/s
#: (~9.4% of DRAM peak bandwidth)
STATIC_INTERVAL = 154
#: wider bins so the constrained average interval is representable
BIN_LENGTH = 32
#: total credits every constrained configuration carries
TOTAL_CREDITS = 32

FULL_SUITE = tuple(SPEC_BENCHMARKS) + ("apache", "bhm_mail")


def constrained_spec() -> BinSpec:
    return BinSpec(interval_length=BIN_LENGTH)


def constraint_repair(config):
    """Project onto the equal-I_avg / equal-B_avg surface of Section IV-C."""
    return repair_to_constraints(config.credits, config.spec,
                                 static_interval=STATIC_INTERVAL,
                                 total_credits=TOTAL_CREDITS)


def static_work(benchmark: str, cycles: int, seed: int) -> float:
    system = SimSystem([trace_for(benchmark, seed=seed)],
                       config=SCALED_SINGLE_CONFIG,
                       limiters=[StaticLimiter(STATIC_INTERVAL)])
    return float(system.run(cycles).cores[0].work_cycles)


def mitts_offline_work(benchmark: str, cycles: int, scale,
                       seed: int) -> float:
    spec = constrained_spec()
    trace = trace_for(benchmark, seed=seed)
    evaluator = FitnessEvaluator(
        traces=[trace], system_config=SCALED_SINGLE_CONFIG,
        run_cycles=cycles, objective=performance_objective)
    params = GaParams(generations=scale.ga_generations,
                      population=scale.ga_population, seed=seed)
    ga = GeneticAlgorithm(evaluator, spec, 1, params,
                          repair=constraint_repair)
    result = ga.run()
    return result.best_fitness


def mitts_online_work(benchmark: str, cycles: int, scale,
                      seed: int) -> float:
    """Work per ``cycles`` at the online tuner's RUN_PHASE rate.

    The CONFIG_PHASE runs partially unconstrained (its measurement epochs
    open the shaper), which would flatter the online result against the
    always-constrained static baseline; only the RUN_PHASE -- where the
    online-chosen constrained configuration is installed -- is comparable.
    """
    trace = trace_for(benchmark, seed=seed)
    system = SimSystem([trace], config=SCALED_SINGLE_CONFIG)
    tuner = OnlineGaTuner(system, spec=constrained_spec(),
                          objective="performance",
                          generations=scale.online_generations,
                          population=scale.online_population,
                          epoch=scale.online_epoch, seed=seed,
                          repair=constraint_repair)
    stats = system.run(cycles)
    if tuner.run_phase_started_at is None:
        # Config phase never finished: the whole run is overhead.
        return float(stats.cores[0].work_cycles)
    run_cycles = stats.cycles - tuner.run_phase_started_at
    if run_cycles <= 0:
        return float(stats.cores[0].work_cycles)
    run_work = stats.cores[0].work_cycles - tuner.work_at_run_phase[0]
    return run_work / run_cycles * cycles


def run(scale="smoke", seed: int = 1) -> Result:
    scale = get_scale(scale)
    result = Result(
        experiment="fig11",
        title="Figure 11: performance gain vs static bandwidth provisioning",
        headers=["benchmark", "static work", "MITTS offline gain",
                 "MITTS online gain"])
    offline_gains = []
    online_gains = []
    for benchmark in benchmarks_for(scale, FULL_SUITE):
        base = static_work(benchmark, scale.run_cycles, seed)
        offline = mitts_offline_work(benchmark, scale.run_cycles, scale,
                                     seed) / max(base, 1e-9)
        online = mitts_online_work(benchmark, scale.run_cycles, scale,
                                   seed) / max(base, 1e-9)
        offline_gains.append(max(offline, 1e-9))
        online_gains.append(max(online, 1e-9))
        result.rows.append([benchmark, base, offline, online])
    result.summary["geomean_offline_gain"] = geometric_mean(offline_gains)
    result.summary["geomean_online_gain"] = geometric_mean(online_gains)
    result.notes.append("paper: offline GeoMean 1.18x (mcf 1.64x, omnetpp "
                        "1.68x); online GA slightly worse than offline")
    return result


if __name__ == "__main__":
    print(run().render())
