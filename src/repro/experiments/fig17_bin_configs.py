"""Figure 17: optimal per-application bin configurations for perf/cost.

For each benchmark, the GA optimises a single program's bin configuration
for performance-per-cost under the Section IV-G1 pricing (credit price
proportional to bandwidth, high-rate credits penalised by ``2 - t_i/t_N``).
The paper's qualitative findings, which this experiment's summary checks:
memory-intensive applications (mcf) buy many fast-bin credits and large
totals; less intensive applications (sjeng, bzip) buy few fast credits;
PARSEC buys less than SPEC overall.
"""

from __future__ import annotations

import zlib
from typing import Dict

from ..core.bins import BinConfig, BinSpec
from ..tuning.ga import GaParams, GeneticAlgorithm
from ..tuning.genome import seed_genomes
from ..tuning.objectives import FitnessEvaluator, perf_per_cost_objective
from ..workloads.benchmarks import (PARSEC_BENCHMARKS, SPEC_BENCHMARKS,
                                    trace_for)
from .common import (Result, SCALED_SINGLE_CONFIG, benchmarks_for,
                     get_scale)

FULL_SUITE = tuple(SPEC_BENCHMARKS) + ("apache", "bhm_mail") \
    + tuple(PARSEC_BENCHMARKS)


def optimal_config(benchmark: str, cycles: int, scale,
                   seed: int) -> BinConfig:
    """Best perf/cost bin configuration for one benchmark."""
    spec = BinSpec()
    evaluator = FitnessEvaluator(
        traces=[trace_for(benchmark, seed=seed)],
        system_config=SCALED_SINGLE_CONFIG, run_cycles=cycles,
        objective=perf_per_cost_objective)
    # Per-benchmark RNG stream: otherwise every benchmark's search walks
    # the identical random population and converges to the same shape.
    bench_seed = seed + zlib.crc32(benchmark.encode("utf-8")) % 10_000
    params = GaParams(generations=scale.ga_generations,
                      population=scale.ga_population, seed=bench_seed)
    ga = GeneticAlgorithm(evaluator, spec, 1, params,
                          seed_genomes=seed_genomes(spec, 1))
    return ga.run().best_genome[0]


def run(scale="smoke", seed: int = 1) -> Result:
    scale = get_scale(scale)
    result = Result(
        experiment="fig17",
        title="Figure 17: optimal bin configurations for performance/cost",
        headers=["benchmark", "credits per bin (fast -> slow)", "total"])
    configs: Dict[str, BinConfig] = {}
    for benchmark in benchmarks_for(scale, FULL_SUITE):
        config = optimal_config(benchmark, scale.run_cycles, scale, seed)
        configs[benchmark] = config
        result.rows.append([benchmark, str(config.as_list()),
                            config.total_credits])
    if "mcf" in configs and "sjeng" in configs:
        result.summary["mcf_total_credits"] = \
            float(configs["mcf"].total_credits)
        result.summary["sjeng_total_credits"] = \
            float(configs["sjeng"].total_credits)
        result.summary["mcf_fast_credits"] = \
            float(sum(configs["mcf"].credits[:3]))
        result.summary["sjeng_fast_credits"] = \
            float(sum(configs["sjeng"].credits[:3]))
    result.notes.append("paper: memory-intensive apps (mcf) hold many "
                        "high-rate credits; light apps (sjeng, bzip) few; "
                        "PARSEC totals smaller than SPEC")
    return result


if __name__ == "__main__":
    print(run().render())
