"""Shared experiment harness: scales, scheduler registry, run helpers.

Every experiment module exposes ``run(scale=..., seed=...) -> Result``.
The ``scale`` knob (DESIGN.md section 6) trades fidelity for wall-clock:

* ``smoke``  -- seconds per experiment; used by the benchmark suite and CI.
* ``small``  -- minutes; tighter GA budgets and longer ROIs.
* ``paper``  -- the paper's parameters (20x30 GA, multi-million-cycle
  ROIs); hours in pure Python, provided for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.bins import BinSpec
from ..core.shaper import MittsShaper
from ..metrics.report import format_table
from ..runner import get_runner
from ..sched.base import FrFcfsScheduler
from ..sched.fairqueue import FairQueueScheduler
from ..sched.fst import FstController
from ..sched.memguard import MemGuardScheduler
from ..sched.mise import MiseScheduler
from ..sched.tcm import TcmScheduler
from ..sim.system import (SCALED_LARGE_LLC_CONFIG, SCALED_MULTI_CONFIG,
                          SCALED_SINGLE_CONFIG, SimSystem, SystemConfig)
from ..tuning.ga import GaParams, GaResult, GeneticAlgorithm
from ..tuning.genome import Genome, seed_genomes
from ..tuning.objectives import FitnessEvaluator, resolve_objective
from ..workloads.benchmarks import trace_for


@dataclass(frozen=True)
class Scale:
    """Effort preset for one experiment run."""

    name: str
    run_cycles: int
    ga_generations: int
    ga_population: int
    online_epoch: int
    online_generations: int
    online_population: int
    #: benchmarks used by per-benchmark sweeps (None = the full suite)
    benchmark_subset: Optional[Tuple[str, ...]] = None
    #: credit ladder cap for static-configuration searches
    static_search_credits: int = 32


SCALES: Dict[str, Scale] = {
    "smoke": Scale(name="smoke", run_cycles=60_000,
                   ga_generations=3, ga_population=6,
                   online_epoch=2_000, online_generations=2,
                   online_population=4,
                   benchmark_subset=("mcf", "libquantum", "omnetpp",
                                     "bzip", "sjeng", "apache"),
                   static_search_credits=16),
    "small": Scale(name="small", run_cycles=100_000,
                   ga_generations=6, ga_population=10,
                   online_epoch=4_000, online_generations=3,
                   online_population=6),
    "paper": Scale(name="paper", run_cycles=5_000_000,
                   ga_generations=20, ga_population=30,
                   online_epoch=20_000, online_generations=20,
                   online_population=30),
}


def get_scale(scale) -> Scale:
    """Accept a Scale or a scale name."""
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(SCALES)}"
                       ) from None


@dataclass
class Result:
    """One experiment's output: a titled table plus free-form notes."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: key findings as name -> value, for tests and EXPERIMENTS.md
    summary: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        if self.summary:
            text += "\n" + "\n".join(f"{key} = {value:.4f}"
                                     for key, value in self.summary.items())
        return text


# ---------------------------------------------------------------------------
# scheduler registry (the Figure 12/13 comparison set)

def conventional_schedulers() -> Dict[str, Callable[[int], object]]:
    """Name -> factory for the Section IV-D comparators (FST is special:
    it is a source-side controller layered on FR-FCFS, see run_scheduler)."""
    return {
        "FR-FCFS": FrFcfsScheduler,
        "FairQueue": FairQueueScheduler,
        "TCM": TcmScheduler,
        "FST": FrFcfsScheduler,
        "MemGuard": MemGuardScheduler,
        "MISE": MiseScheduler,
    }


def run_scheduler(name: str, traces: Sequence, config: SystemConfig,
                  cycles: int):
    """Run a mix under one conventional scheduler; returns SystemStats."""
    factories = conventional_schedulers()
    if name not in factories:
        raise KeyError(f"unknown scheduler {name!r}")
    scheduler = factories[name](len(traces))
    system = SimSystem(traces, config=config, scheduler=scheduler)
    if name == "FST":
        FstController(system)
    return system.run(cycles)


# ---------------------------------------------------------------------------
# run helpers

def _alone_work_one(trace, config: SystemConfig, cycles: int,
                    scheduler_factory: Callable[[int], object]
                    = FrFcfsScheduler) -> float:
    """One program's work running alone (the pool-worker unit of
    measure_alone; must stay a module-level function so job specs can
    name it)."""
    factory = scheduler_factory or FrFcfsScheduler
    system = SimSystem([trace], config=config, scheduler=factory(1))
    stats = system.run(cycles)
    return float(stats.cores[0].work_cycles)


def measure_alone(traces: Sequence, config: SystemConfig, cycles: int,
                  scheduler_factory: Callable[[int], object]
                  = FrFcfsScheduler) -> List[float]:
    """Per-program work running alone on the same system configuration.

    The per-program runs are independent simulations; when an ambient
    :mod:`repro.runner` pool is installed they fan out across it (results
    come back keyed by input order, so parallel equals serial).
    """
    runner = get_runner()
    if runner is not None and runner.parallel and len(traces) > 1:
        return runner.map(
            "repro.experiments.common:_alone_work_one",
            [(trace, config, cycles, scheduler_factory)
             for trace in traces],
            label="alone")
    return [_alone_work_one(trace, config, cycles, scheduler_factory)
            for trace in traces]


def _score_genome(evaluator: FitnessEvaluator, genome) -> float:
    """Score one genome (the pool-worker unit of a GA generation)."""
    return float(evaluator(genome))


def parallel_batch_evaluator(evaluator: FitnessEvaluator):
    """A GA batch evaluator that fans a generation across the ambient
    pool (serial fallback when none is installed).

    The evaluator is pickled into each job: it is plain data (traces,
    config, objective/scheduler references), so workers rebuild identical
    simulations and the scores match the serial path bit for bit.
    """

    def batch(genomes) -> List[float]:
        runner = get_runner()
        if runner is None or not runner.parallel or len(genomes) <= 1:
            return [float(evaluator(genome)) for genome in genomes]
        return runner.map(
            "repro.experiments.common:_score_genome",
            [(evaluator, genome) for genome in genomes],
            label="ga-eval")

    return batch


def slowdowns_against(alone: Sequence[float], stats) -> List[float]:
    """Per-program ``T_shared/T_single`` slowdowns from a shared run."""
    return [a / max(core.work_cycles, 1e-9)
            for a, core in zip(alone, stats.cores)]


def targeted_seeds(evaluator: FitnessEvaluator, spec: BinSpec) -> List:
    """Asymmetric seed genomes built from baseline unshaped slowdowns.

    Runs one unshaped simulation, ranks programs by slowdown, and builds
    "protect the victims" genomes: the most-slowed programs keep a
    generous allocation while the least-slowed (the interference sources
    with slack) are capped.  This is the shape the fairness optimum takes
    and it is hard for a small random population to stumble into.
    """
    from ..core.bins import BinConfig

    num_cores = len(evaluator.traces)
    unlimited = [BinConfig.unlimited(spec)] * num_cores
    stats = evaluator.run_genome(unlimited)
    slowdowns = evaluator.slowdowns(stats)
    order = sorted(range(num_cores), key=lambda c: slowdowns[c])
    generous = BinConfig.single_bin(0, 64, spec)
    if spec.num_bins == 10:
        # A few burst credits, bulk pushed to the slow tail.
        capped = BinConfig.from_credits([4, 1, 1, 0, 0, 0, 0, 0, 0, 12],
                                        spec=spec)
    else:
        capped = BinConfig.single_bin(spec.num_bins - 1, 8, spec)
    seeds = []
    cap_counts = {num_cores // 2, max(1, num_cores // 4),
                  max(1, num_cores - 1)}
    for cap_count in sorted(cap_counts):
        genome = [generous] * num_cores
        for core in order[:cap_count]:
            genome[core] = capped
        seeds.append(genome)
    return seeds


def mix_bin_spec(num_cores: int) -> BinSpec:
    """Bin geometry for a ``num_cores``-program mix.

    The slowest expressible per-core rate is ``1 / t_N``; with many cores
    their sum must be able to drop below the channel's effective capacity
    or no configuration can relieve contention.  Following Section
    III-B1's prescription ("MITTS can be modified by increasing L"), the
    interval length grows with the core count: L=10 up to four programs,
    L=24 for eight.
    """
    if num_cores <= 4:
        return BinSpec()
    return BinSpec(interval_length=24)


def optimize_mitts(traces: Sequence, config: SystemConfig, cycles: int,
                   objective, scale: Scale, seed: int = 42,
                   alone_work: Optional[List[float]] = None,
                   scheduler_factory: Callable[[int], object] = None,
                   repair=None,
                   shaper_method: int = MittsShaper.METHOD_DEDUCT_REFUND,
                   spec: BinSpec = None
                   ) -> Tuple[GaResult, FitnessEvaluator]:
    """Offline-GA search of per-core bin configurations for a mix."""
    if scheduler_factory is None:
        scheduler_factory = FrFcfsScheduler
    evaluator = FitnessEvaluator(
        traces=traces, system_config=config, run_cycles=cycles,
        objective=resolve_objective(objective),
        scheduler_factory=scheduler_factory,
        shaper_method=shaper_method)
    if alone_work is not None:
        evaluator.alone_work = list(alone_work)
    else:
        evaluator.alone_work = measure_alone(
            traces, config, cycles, scheduler_factory=scheduler_factory)
    if spec is None:
        spec = mix_bin_spec(len(traces))
    params = GaParams(generations=scale.ga_generations,
                      population=scale.ga_population, seed=seed)
    seeds = seed_genomes(spec, len(traces)) \
        + targeted_seeds(evaluator, spec)
    ga = GeneticAlgorithm(evaluator, spec, len(traces), params,
                          repair=repair, seed_genomes=seeds,
                          batch_evaluator=parallel_batch_evaluator(
                              evaluator))
    return ga.run(), evaluator


def benchmarks_for(scale: Scale, full_suite: Sequence[str]) -> List[str]:
    """The benchmark list a per-benchmark sweep should use at this scale."""
    if scale.benchmark_subset is None:
        return list(full_suite)
    return [name for name in scale.benchmark_subset if name in full_suite] \
        or list(full_suite)


__all__ = [
    "Result",
    "SCALED_LARGE_LLC_CONFIG",
    "SCALED_MULTI_CONFIG",
    "SCALED_SINGLE_CONFIG",
    "SCALES",
    "Scale",
    "benchmarks_for",
    "conventional_schedulers",
    "get_scale",
    "measure_alone",
    "optimize_mitts",
    "parallel_batch_evaluator",
    "run_scheduler",
    "slowdowns_against",
    "trace_for",
]
