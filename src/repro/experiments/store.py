"""Result persistence: save experiment outputs, reload them, diff runs.

A reproduction is only useful if runs can be compared across code
revisions, seeds, and scales.  ``save_result``/``load_result`` serialise
:class:`~repro.experiments.common.Result` to JSON;
``diff_summaries`` reports relative changes between two runs'
summary metrics, which is what a regression check actually wants.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Union

from .common import Result

_FORMAT_VERSION = 1


def save_result(result: Result, path: Union[str, Path],
                metadata: Dict = None) -> Path:
    """Write a result (plus optional run metadata) as JSON."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "result": asdict(result),
        "metadata": dict(metadata or {}),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True),
                    encoding="utf-8")
    return path


def load_result(path: Union[str, Path]) -> Result:
    """Reload a result saved by :func:`save_result`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format {version!r}")
    raw = payload["result"]
    return Result(experiment=raw["experiment"], title=raw["title"],
                  headers=raw["headers"], rows=raw["rows"],
                  notes=raw["notes"], summary=raw["summary"])


def load_metadata(path: Union[str, Path]) -> Dict:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return payload.get("metadata", {})


def diff_summaries(before: Result, after: Result,
                   tolerance: float = 0.02) -> List[Dict]:
    """Relative summary-metric changes between two runs.

    Returns one record per metric present in either run:
    ``{"metric", "before", "after", "relative_change", "significant"}``.
    ``significant`` flags changes beyond ``tolerance`` (and metrics that
    appeared or disappeared).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    records: List[Dict] = []
    keys = sorted(set(before.summary) | set(after.summary))
    for key in keys:
        old = before.summary.get(key)
        new = after.summary.get(key)
        if old is None or new is None:
            records.append({"metric": key, "before": old, "after": new,
                            "relative_change": None,
                            "significant": True})
            continue
        base = max(abs(old), 1e-12)
        change = (new - old) / base
        records.append({"metric": key, "before": old, "after": new,
                        "relative_change": change,
                        "significant": abs(change) > tolerance})
    return records


def diff_result_dirs(before_dir: Union[str, Path],
                     after_dir: Union[str, Path],
                     tolerance: float = 0.02) -> Dict:
    """Compare every ``<experiment>.json`` common to two result dirs.

    Returns ``{"experiments": {name: [diff records]}, "only_before":
    [...], "only_after": [...]}`` where the per-experiment records come
    from :func:`diff_summaries`.  This is the regression check behind
    ``python -m repro.experiments --diff BEFORE_DIR AFTER_DIR``.
    """
    before_dir, after_dir = Path(before_dir), Path(after_dir)
    before_files = {path.stem: path for path in before_dir.glob("*.json")}
    after_files = {path.stem: path for path in after_dir.glob("*.json")}
    common = sorted(set(before_files) & set(after_files))
    experiments = {}
    for name in common:
        experiments[name] = diff_summaries(
            load_result(before_files[name]), load_result(after_files[name]),
            tolerance=tolerance)
    return {
        "experiments": experiments,
        "only_before": sorted(set(before_files) - set(after_files)),
        "only_after": sorted(set(after_files) - set(before_files)),
    }


def save_all(results: List[Result], directory: Union[str, Path],
             metadata: Dict = None) -> List[Path]:
    """Save a batch of results as ``<experiment>.json`` files."""
    directory = Path(directory)
    paths = []
    for result in results:
        paths.append(save_result(
            result, directory / f"{result.experiment}.json", metadata))
    return paths
