"""Result persistence: save experiment outputs, reload them, diff runs.

A reproduction is only useful if runs can be compared across code
revisions, seeds, and scales.  ``save_result``/``load_result`` serialise
:class:`~repro.experiments.common.Result` to JSON;
``diff_summaries`` reports relative changes between two runs'
summary metrics, which is what a regression check actually wants.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Union

from .common import Result

_FORMAT_VERSION = 1


def save_result(result: Result, path: Union[str, Path],
                metadata: Dict = None) -> Path:
    """Write a result (plus optional run metadata) as JSON."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "result": asdict(result),
        "metadata": dict(metadata or {}),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True),
                    encoding="utf-8")
    return path


def load_result(path: Union[str, Path]) -> Result:
    """Reload a result saved by :func:`save_result`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format {version!r}")
    raw = payload["result"]
    return Result(experiment=raw["experiment"], title=raw["title"],
                  headers=raw["headers"], rows=raw["rows"],
                  notes=raw["notes"], summary=raw["summary"])


def load_metadata(path: Union[str, Path]) -> Dict:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return payload.get("metadata", {})


def diff_summaries(before: Result, after: Result,
                   tolerance: float = 0.02) -> List[Dict]:
    """Relative summary-metric changes between two runs.

    Returns one record per metric present in either run:
    ``{"metric", "before", "after", "relative_change", "significant"}``.
    ``significant`` flags changes beyond ``tolerance`` (and metrics that
    appeared or disappeared).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    records: List[Dict] = []
    keys = sorted(set(before.summary) | set(after.summary))
    for key in keys:
        old = before.summary.get(key)
        new = after.summary.get(key)
        if old is None or new is None:
            records.append({"metric": key, "before": old, "after": new,
                            "relative_change": None,
                            "significant": True})
            continue
        base = max(abs(old), 1e-12)
        change = (new - old) / base
        records.append({"metric": key, "before": old, "after": new,
                        "relative_change": change,
                        "significant": abs(change) > tolerance})
    return records


def save_all(results: List[Result], directory: Union[str, Path],
             metadata: Dict = None) -> List[Path]:
    """Save a batch of results as ``<experiment>.json`` files."""
    directory = Path(directory)
    paths = []
    for result in results:
        paths.append(save_result(
            result, directory / f"{result.experiment}.json", metadata))
    return paths
