"""Figure 15: the comparison repeated with a large (8MB-class) LLC.

Section IV-D1 checks that MITTS's advantage survives on a "current day
multicore" cache: with far fewer off-chip misses, gains shrink but MITTS
still beats the best conventional technique (5.3%/12.7% for workload 1,
2.3%/6% for workload 4).  We run workloads 1 and 4 on the scaled
large-LLC configuration.
"""

from __future__ import annotations

from typing import Sequence

from .common import Result, SCALED_LARGE_LLC_CONFIG, get_scale
from .fig12_four_program import evaluate_workload, summarize


def run(scale="smoke", seed: int = 1,
        workloads: Sequence[int] = (1, 4)) -> Result:
    scale = get_scale(scale)
    result = Result(
        experiment="fig15",
        title="Figure 15: throughput/fairness with a large LLC "
              "(lower is better)",
        headers=["workload", "policy", "S_avg", "S_max"])
    for workload_id in workloads:
        outcome = evaluate_workload(workload_id, scale, seed,
                                    config=SCALED_LARGE_LLC_CONFIG,
                                    include_online=False)
        summarize(result, workload_id, outcome)
    result.notes.append("paper: with an 8MB LLC MITTS still wins, by "
                        "5.3%/12.7% (wl 1) and 2.3%/6% (wl 4)")
    return result


if __name__ == "__main__":
    print(run().render())
