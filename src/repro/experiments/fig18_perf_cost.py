"""Figure 18: performance-per-cost gain over optimal static provisioning.

The baseline is the best *single-bin* configuration per benchmark -- one
fixed request rate, chosen by exhaustively searching bins and credit
ladders for the highest perf/cost (Section IV-G3).  MITTS's full
distribution, found by the GA under the same pricing, should deliver
higher perf/cost everywhere the workload's traffic isn't uniform.  Paper:
GeoMean 2.69x, up to ~10x.
"""

from __future__ import annotations

import zlib

from ..cloud.provision import best_static_config, perf_per_cost
from ..core.bins import BinConfig, BinSpec
from ..metrics.slowdown import geometric_mean
from ..tuning.ga import GaParams, GeneticAlgorithm
from ..tuning.genome import seed_genomes
from ..tuning.objectives import FitnessEvaluator, perf_per_cost_objective
from ..workloads.benchmarks import SPEC_BENCHMARKS, trace_for
from .common import (Result, SCALED_SINGLE_CONFIG, benchmarks_for,
                     get_scale)

FULL_SUITE = tuple(SPEC_BENCHMARKS) + ("apache", "bhm_mail")


def mitts_perf_per_cost(benchmark: str, cycles: int, scale, seed: int,
                        static_config: BinConfig = None) -> float:
    """GA search seeded with the static winner, so the distribution can
    only improve on the single-rate baseline (the paper's comparison is
    between the best of each family)."""
    spec = BinSpec()
    evaluator = FitnessEvaluator(
        traces=[trace_for(benchmark, seed=seed)],
        system_config=SCALED_SINGLE_CONFIG, run_cycles=cycles,
        objective=perf_per_cost_objective)
    bench_seed = seed + zlib.crc32(benchmark.encode("utf-8")) % 10_000
    params = GaParams(generations=scale.ga_generations,
                      population=scale.ga_population, seed=bench_seed)
    seeds = seed_genomes(spec, 1)
    if static_config is not None:
        seeds.insert(0, [static_config])
    ga = GeneticAlgorithm(evaluator, spec, 1, params, seed_genomes=seeds)
    return ga.run().best_fitness


def run(scale="smoke", seed: int = 1) -> Result:
    scale = get_scale(scale)
    result = Result(
        experiment="fig18",
        title="Figure 18: perf/cost gain over optimal static provisioning",
        headers=["benchmark", "static perf/cost", "MITTS perf/cost",
                 "gain"])
    gains = []
    for benchmark in benchmarks_for(scale, FULL_SUITE):
        static_cfg, static_score = best_static_config(
            trace_for(benchmark, seed=seed), SCALED_SINGLE_CONFIG,
            scale.run_cycles, objective=perf_per_cost,
            max_credits=scale.static_search_credits)
        mitts_score = mitts_perf_per_cost(benchmark, scale.run_cycles,
                                          scale, seed,
                                          static_config=static_cfg)
        gain = mitts_score / max(static_score, 1e-9)
        gains.append(max(gain, 1e-9))
        result.rows.append([benchmark, static_score, mitts_score, gain])
    result.summary["geomean_gain"] = geometric_mean(gains)
    result.summary["max_gain"] = max(gains)
    result.notes.append("paper: GeoMean 2.69x, up to ~10x")
    return result


if __name__ == "__main__":
    print(run().render())
