"""Figure 16: bandwidth isolation -- static splits vs provisioned MITTS.

Three ways to divide a fixed, *not over-provisioned* bandwidth budget
among the eight programs of workload 4:

* **static even** -- every program gets the same single-rate slice;
* **static heterogeneous** -- single-rate slices proportional to each
  program's measured alone demand (the "optimal" static split);
* **MITTS** -- the GA distributes the same total budget across
  inter-arrival bins per core, optimised for throughput and fairness.

The paper: MITTS beats even/heterogeneous static by 14%/21% and 8%/7% in
throughput/fairness, implying real-time-friendly isolation without the
efficiency loss.  Bandwidth provisioning (Section III-C's provisioned
case) is enforced by constraining every candidate's summed average rate
to the budget via a per-core rate cap plus a global penalty.
"""

from __future__ import annotations

from typing import List

from ..core.bins import BinConfig, BinSpec
from ..sched.base import FrFcfsScheduler
from ..sim.system import SimSystem
from ..tuning.ga import GaParams, GeneticAlgorithm
from ..tuning.genome import seed_genomes
from ..tuning.objectives import (FitnessEvaluator, fairness_objective,
                                 throughput_objective)
from ..workloads.mixes import workload_traces
from .common import (Result, SCALED_MULTI_CONFIG, get_scale, measure_alone,
                     slowdowns_against)

#: wider bins so per-core slices of a shared channel are representable
BIN_LENGTH = 32
#: provisioned budget: fraction of the DRAM data-bus peak handed out
BUDGET_FRACTION = 0.85


def _spec() -> BinSpec:
    return BinSpec(interval_length=BIN_LENGTH)


def _budget_rate(config) -> float:
    """Total provisioned request rate (lines/cycle)."""
    peak = 1.0 / config.timing.t_bl
    return peak * BUDGET_FRACTION


def _rate(config: BinConfig) -> float:
    interval = config.average_interval()
    if interval == float("inf"):
        return 0.0
    return 1.0 / interval


def _bin_for_rate(spec: BinSpec, rate: float) -> int:
    """Bin whose nominal rate best matches ``rate``."""
    target = 1.0 / max(rate, 1e-9)
    return min(range(spec.num_bins),
               key=lambda i: abs(spec.center(i) - target))


def even_configs(spec: BinSpec, num_cores: int, total_rate: float
                 ) -> List[BinConfig]:
    index = _bin_for_rate(spec, total_rate / num_cores)
    return [BinConfig.single_bin(index, 16, spec)
            for _ in range(num_cores)]


def heterogeneous_configs(spec: BinSpec, demands: List[float],
                          total_rate: float) -> List[BinConfig]:
    total_demand = max(sum(demands), 1e-9)
    configs = []
    for demand in demands:
        share = total_rate * demand / total_demand
        configs.append(BinConfig.single_bin(_bin_for_rate(spec, share),
                                            16, spec))
    return configs


def capped_repair(total_rate: float, num_cores: int):
    """Per-core repair: cap each core's average rate near its fair share.

    Allows up to 2x heterogeneity headroom; the global budget penalty in
    the fitness handles the aggregate.
    """
    cap = 2.0 * total_rate / num_cores

    def repair(config: BinConfig) -> BinConfig:
        credits = list(config.credits)
        guard = 10 * sum(credits) + 10
        while _rate(BinConfig(spec=config.spec,
                              credits=tuple(credits))) > cap and guard:
            guard -= 1
            fastest = next((i for i, c in enumerate(credits) if c > 0),
                           None)
            if fastest is None or fastest == config.spec.num_bins - 1:
                break
            credits[fastest] -= 1
            credits[-1] += 1
        if not any(credits):
            credits[-1] = 1
        return BinConfig(spec=config.spec, credits=tuple(credits))

    return repair


def budgeted(objective, total_rate: float):
    """Wrap an objective with a steep penalty for over-provisioning."""

    def wrapped(stats, genome, evaluator):
        total = sum(_rate(config) for config in genome)
        value = objective(stats, genome, evaluator)
        if total > total_rate:
            value -= 100.0 * (total / total_rate - 1.0)
        return value

    return wrapped


def run(scale="smoke", seed: int = 1, workload_id: int = 4) -> Result:
    scale = get_scale(scale)
    config = SCALED_MULTI_CONFIG
    spec = _spec()
    traces = workload_traces(workload_id, seed=seed)
    cycles = scale.run_cycles
    num_cores = len(traces)
    alone = measure_alone(traces, config, cycles)
    total_rate = _budget_rate(config)

    result = Result(
        experiment="fig16",
        title="Figure 16: static even / static heterogeneous / MITTS "
              "under a fixed bandwidth budget (lower is better)",
        headers=["policy", "S_avg", "S_max"])

    evaluator = FitnessEvaluator(
        traces=traces, system_config=config, run_cycles=cycles,
        objective=throughput_objective,
        scheduler_factory=lambda nc: FrFcfsScheduler(nc))
    evaluator.alone_work = list(alone)

    def score(label: str, genome) -> tuple:
        stats = evaluator.run_genome(genome)
        slowdowns = slowdowns_against(alone, stats)
        pair = (sum(slowdowns) / len(slowdowns), max(slowdowns))
        result.rows.append([label, pair[0], pair[1]])
        return pair

    even_pair = score("static even", even_configs(spec, num_cores,
                                                  total_rate))
    demands = [a / cycles for a in alone]
    hetero_pair = score("static heterogeneous",
                        heterogeneous_configs(spec, demands, total_rate))

    repair = capped_repair(total_rate, num_cores)
    params = GaParams(generations=scale.ga_generations,
                      population=scale.ga_population, seed=seed)
    mitts_pairs = {}
    for label, objective in (("MITTS (throughput)", throughput_objective),
                             ("MITTS (fairness)", fairness_objective)):
        fitness = FitnessEvaluator(
            traces=traces, system_config=config, run_cycles=cycles,
            objective=budgeted(objective, total_rate),
            scheduler_factory=lambda nc: FrFcfsScheduler(nc))
        fitness.alone_work = list(alone)
        ga = GeneticAlgorithm(fitness, spec, num_cores, params,
                              repair=repair,
                              seed_genomes=[
                                  even_configs(spec, num_cores, total_rate),
                                  heterogeneous_configs(spec, demands,
                                                        total_rate)])
        ga_result = ga.run()
        mitts_pairs[label] = score(label, ga_result.best_genome)

    result.summary["throughput_gain_vs_even"] = \
        even_pair[0] / mitts_pairs["MITTS (throughput)"][0]
    result.summary["fairness_gain_vs_even"] = \
        even_pair[1] / mitts_pairs["MITTS (fairness)"][1]
    result.summary["throughput_gain_vs_hetero"] = \
        hetero_pair[0] / mitts_pairs["MITTS (throughput)"][0]
    result.summary["fairness_gain_vs_hetero"] = \
        hetero_pair[1] / mitts_pairs["MITTS (fairness)"][1]
    result.notes.append("paper: MITTS beats even static by 14%/21% and "
                        "heterogeneous static by 8%/7%")
    return result


if __name__ == "__main__":
    print(run().render())
