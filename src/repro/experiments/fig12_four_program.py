"""Figures 12 (and 13 via the eight-program module): throughput/fairness
of MITTS vs conventional memory schedulers on the Table III mixes.

For each workload, every conventional scheduler (FR-FCFS, FairQueue, TCM,
FST, MemGuard, MISE) runs the mix; MITTS runs with per-core bin
configurations found by the offline GA, optimised separately for
throughput (min S_avg) and fairness (min S_max), plus the online-GA
variant.  Lower S_avg / S_max is better.  The paper's headline: MITTS
improves 4-program throughput/fairness by 11%/17% (wl 1), 16%/40% (wl 2),
17%/52% (wl 3) over the best conventional scheduler, with the online GA a
little worse than offline.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..sched.base import FrFcfsScheduler
from ..sim.system import SimSystem, SystemConfig
from ..tuning.online import OnlineGaTuner
from ..workloads.mixes import workload_traces
from .common import (Result, SCALED_MULTI_CONFIG, conventional_schedulers,
                     get_scale, measure_alone, mix_bin_spec, optimize_mitts,
                     run_scheduler, slowdowns_against)


def evaluate_workload(workload_id: int, scale, seed: int,
                      config: SystemConfig = None,
                      schedulers: Sequence[str] = None,
                      include_online: bool = True) -> Dict[str, tuple]:
    """All (S_avg, S_max) pairs for one Table III workload.

    Returns an ordered mapping: each conventional scheduler, then
    "MITTS-perf", "MITTS-fair", and optionally "MITTS-online".
    """
    scale = get_scale(scale)
    config = config or SCALED_MULTI_CONFIG
    traces = workload_traces(workload_id, seed=seed)
    cycles = scale.run_cycles
    alone = measure_alone(traces, config, cycles)
    outcome: Dict[str, tuple] = {}

    names = list(schedulers) if schedulers is not None \
        else list(conventional_schedulers())
    for name in names:
        stats = run_scheduler(name, traces, config, cycles)
        slowdowns = slowdowns_against(alone, stats)
        outcome[name] = (sum(slowdowns) / len(slowdowns), max(slowdowns))

    for label, objective in (("MITTS-perf", "throughput"),
                             ("MITTS-fair", "fairness")):
        ga_result, evaluator = optimize_mitts(
            traces, config, cycles, objective, scale, seed=seed,
            alone_work=alone)
        stats = evaluator.run_genome(ga_result.best_genome)
        slowdowns = slowdowns_against(alone, stats)
        outcome[label] = (sum(slowdowns) / len(slowdowns), max(slowdowns))

    if include_online:
        system = SimSystem(traces, config=config,
                           scheduler=FrFcfsScheduler(len(traces)))
        OnlineGaTuner(system, spec=mix_bin_spec(len(traces)),
                      objective="throughput",
                      generations=scale.online_generations,
                      population=scale.online_population,
                      epoch=scale.online_epoch, seed=seed)
        stats = system.run(cycles)
        slowdowns = slowdowns_against(alone, stats)
        outcome["MITTS-online"] = (sum(slowdowns) / len(slowdowns),
                                   max(slowdowns))
    return outcome


def summarize(result: Result, workload_id: int,
              outcome: Dict[str, tuple]) -> None:
    """Append rows and best-vs-MITTS summary entries for one workload."""
    conventional = {name: pair for name, pair in outcome.items()
                    if not name.startswith("MITTS")}
    best_savg = min(pair[0] for pair in conventional.values())
    best_smax = min(pair[1] for pair in conventional.values())
    for name, (savg, smax) in outcome.items():
        result.rows.append([f"wl{workload_id}", name, savg, smax])
    result.summary[f"wl{workload_id}_throughput_gain"] = \
        best_savg / outcome["MITTS-perf"][0]
    result.summary[f"wl{workload_id}_fairness_gain"] = \
        best_smax / outcome["MITTS-fair"][1]


def run(scale="smoke", seed: int = 1,
        workloads: Sequence[int] = (1, 2, 3)) -> Result:
    scale = get_scale(scale)
    result = Result(
        experiment="fig12",
        title="Figure 12: four-program throughput (S_avg) and fairness "
              "(S_max) comparison (lower is better)",
        headers=["workload", "policy", "S_avg", "S_max"])
    for workload_id in workloads:
        outcome = evaluate_workload(workload_id, scale, seed)
        summarize(result, workload_id, outcome)
    result.notes.append("paper: MITTS beats the best conventional "
                        "scheduler by 11-17% throughput / 17-52% fairness")
    return result


if __name__ == "__main__":
    print(run().render())
