"""Section IV-H: shared vs per-thread MITTS for threaded applications.

x264 and ferret run as multi-threaded programs (one trace per thread,
phase-staggered so per-thread demand is uneven).  Two MITTS organisations
are compared at equal total allocation:

* **shared** -- all threads draw from one shaper's credit pool;
* **per-thread** -- each thread gets its own shaper with a 1/T slice.

The paper's surprise result: shared is over 2x better, because a
per-thread scheme wastes credits whenever a thread cannot spend its slice
within the replenishment window while a sibling starves.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.bins import BinConfig
from ..core.replenish import ResetReplenisher
from ..core.shaper import MittsShaper
from ..sim.system import SimSystem
from ..workloads.benchmarks import profile
from ..workloads.generator import thread_traces
from .common import Result, SCALED_MULTI_CONFIG, get_scale

BENCHMARKS = ("x264", "ferret")
THREADS = 4

#: total allocation per program: bursty credits plus a bulk tail, sized to
#: bind against the threads' combined demand; every entry is divisible by
#: the thread count so the per-thread slicing is exact
TOTAL_CONFIG = BinConfig.from_credits([8, 4, 4, 4, 4, 4, 4, 4, 4, 4])


def _shaper(config: BinConfig, period: int) -> MittsShaper:
    """A shaper whose replenishment period is pinned to ``period``.

    Shared and per-thread organisations must replenish on the same clock;
    otherwise slicing the credits would also shrink the period and leave
    the per-thread bandwidth unchanged.
    """
    return MittsShaper(config,
                       replenisher=ResetReplenisher(config, period=period))


def _progress(stats) -> float:
    """Trace events retired across all threads.

    Event counts rather than work-cycles: the staggered idle stages are
    compute-only, so cycle-weighted work would dilute the memory-phase
    difference the experiment is about.
    """
    return float(sum(core.retired for core in stats.cores))


def shared_work(traces: Sequence, cycles: int) -> float:
    """All threads share one shaper (one credit pool)."""
    period = TOTAL_CONFIG.replenish_period()
    shaper = _shaper(TOTAL_CONFIG, period)
    system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                       limiters=[shaper] * len(traces))
    return _progress(system.run(cycles))


def per_thread_work(traces: Sequence, cycles: int) -> float:
    """Each thread gets its own 1/T credit slice on the same period."""
    period = TOTAL_CONFIG.replenish_period()
    slice_config = TOTAL_CONFIG.scaled(1.0 / len(traces))
    limiters: List[MittsShaper] = [_shaper(slice_config, period)
                                   for _ in traces]
    system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                       limiters=limiters)
    return _progress(system.run(cycles))


def run(scale="smoke", seed: int = 1) -> Result:
    scale = get_scale(scale)
    result = Result(
        experiment="sec4h",
        title="Section IV-H: shared vs per-thread MITTS "
              "(total work, higher is better)",
        headers=["benchmark", "shared MITTS events",
                 "per-thread MITTS events", "ratio"])
    for benchmark in BENCHMARKS:
        traces = thread_traces(profile(benchmark), THREADS, seed=seed)
        shared = shared_work(traces, scale.run_cycles)
        per_thread = per_thread_work(traces, scale.run_cycles)
        ratio = shared / max(per_thread, 1e-9)
        result.rows.append([benchmark, shared, per_thread, ratio])
        result.summary[f"{benchmark}_shared_over_per_thread"] = ratio
    result.notes.append("paper: shared MITTS over 2x better than "
                        "per-thread MITTS")
    return result


if __name__ == "__main__":
    print(run().render())
