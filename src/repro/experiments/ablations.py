"""Ablations of MITTS design choices (DESIGN.md section 5).

Each function reproduces one of the tradeoff discussions in the paper's
architecture section as a measurement:

* hybrid accounting method 1 (timestamp / deduct-on-confirmed-miss) vs
  method 2 (deduct-then-refund, used in the tape-out);
* reset-based replenishment (Algorithm 1) vs a rate-based drip;
* memory-controller transaction-queue depth (the Section III-C FIFO);
* GA vs hill climbing vs random search for bin configuration;
* bin interval length L.
"""

from __future__ import annotations

from typing import Sequence

from ..core.bins import BinConfig, BinSpec
from ..core.replenish import RateReplenisher, ResetReplenisher
from ..core.shaper import MittsShaper
from ..sched.base import FrFcfsScheduler
from ..sim.system import SimSystem, SystemConfig
from ..tuning.ga import GaParams, GeneticAlgorithm
from ..tuning.genome import seed_genomes
from ..tuning.hillclimb import HillClimber, RandomSearch
from ..tuning.objectives import FitnessEvaluator, throughput_objective
from ..workloads.benchmarks import trace_for
from ..workloads.mixes import workload_traces
from .common import (Result, SCALED_MULTI_CONFIG, SCALED_SINGLE_CONFIG,
                     get_scale, measure_alone, slowdowns_against)

#: the allocation used by fixed-configuration ablations: bursty head,
#: thin tail, sized to bind against a memory-intensive program
ABLATION_CONFIG = BinConfig.from_credits([12, 6, 4, 2, 2, 1, 1, 1, 1, 1])


def run_methods(scale="smoke", seed: int = 1,
                workload_id: int = 1) -> Result:
    """Hybrid method 1 vs method 2 on a shared-LLC mix."""
    scale = get_scale(scale)
    traces = workload_traces(workload_id, seed=seed)
    cycles = scale.run_cycles
    alone = measure_alone(traces, SCALED_MULTI_CONFIG, cycles)
    result = Result(
        experiment="ablation_methods",
        title="Ablation: hybrid accounting method 1 vs method 2",
        headers=["method", "S_avg", "S_max", "total released"])
    for label, method in (("method 1 (timestamp)",
                           MittsShaper.METHOD_TIMESTAMP),
                          ("method 2 (deduct+refund)",
                           MittsShaper.METHOD_DEDUCT_REFUND)):
        period = ABLATION_CONFIG.replenish_period()
        shapers = [MittsShaper(ABLATION_CONFIG, method=method,
                               phase=i * period // len(traces))
                   for i in range(len(traces))]
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                           limiters=shapers,
                           scheduler=FrFcfsScheduler(len(traces)))
        stats = system.run(cycles)
        slowdowns = slowdowns_against(alone, stats)
        released = sum(shaper.released for shaper in shapers)
        result.rows.append([label, sum(slowdowns) / len(slowdowns),
                            max(slowdowns), released])
        key = "method1" if method == MittsShaper.METHOD_TIMESTAMP \
            else "method2"
        result.summary[f"{key}_savg"] = sum(slowdowns) / len(slowdowns)
        result.summary[f"{key}_released"] = float(released)
    result.notes.append("paper: method 1 is slightly aggressive (may fail "
                        "to block); the 25-core chip uses method 2")
    return result


def run_replenish(scale="smoke", seed: int = 1,
                  benchmark: str = "bhm_mail") -> Result:
    """Reset (Algorithm 1) vs rate-based drip replenishment on a bursty
    program: the reset policy makes the whole period's burst capacity
    available at once, while a drip paces it out."""
    scale = get_scale(scale)
    trace = trace_for(benchmark, seed=seed)
    cycles = scale.run_cycles
    # Tight burst budget over a long period so the policy choice binds:
    # the mail server's ~50-request bursts exceed the fast bins.
    config = BinConfig.from_credits([8, 4, 2, 1, 1, 1, 1, 1, 1, 16])
    result = Result(
        experiment="ablation_replenish",
        title=f"Ablation: replenishment policy on bursty {benchmark}",
        headers=["policy", "work", "shaper stall cycles"])
    for label, replenisher in (
            ("reset (Algorithm 1)", ResetReplenisher(config)),
            ("rate drip (16 slices)", RateReplenisher(config, slices=16))):
        shaper = MittsShaper(config, replenisher=replenisher)
        system = SimSystem([trace], config=SCALED_SINGLE_CONFIG,
                           limiters=[shaper])
        stats = system.run(cycles)
        core = stats.cores[0]
        result.rows.append([label, core.work_cycles,
                            core.shaper_stall_cycles])
        key = "reset" if isinstance(replenisher, ResetReplenisher) \
            else "drip"
        result.summary[f"{key}_work"] = float(core.work_cycles)
        result.summary[f"{key}_stalls"] = float(core.shaper_stall_cycles)
    return result


def run_fifo(scale="smoke", seed: int = 1, workload_id: int = 4,
             depths: Sequence[int] = (8, 16, 32, 64)) -> Result:
    """Memory-controller transaction-queue depth sweep (Section III-C)."""
    scale = get_scale(scale)
    traces = workload_traces(workload_id, seed=seed)
    cycles = scale.run_cycles
    result = Result(
        experiment="ablation_fifo",
        title="Ablation: MC transaction-queue depth",
        headers=["depth", "S_avg", "S_max", "backpressure events"])
    base = SCALED_MULTI_CONFIG
    for depth in depths:
        config = SystemConfig(
            l1_size=base.l1_size, l1_ways=base.l1_ways,
            llc_size=base.llc_size, llc_ways=base.llc_ways,
            llc_hit_latency=base.llc_hit_latency,
            llc_banks=base.llc_banks, llc_bank_busy=base.llc_bank_busy,
            line_bytes=base.line_bytes, mc_queue_depth=depth,
            timing=base.timing,
            interarrival_bucket=base.interarrival_bucket,
            default_mlp=base.default_mlp)
        alone = measure_alone(traces, config, cycles)
        system = SimSystem(traces, config=config,
                           scheduler=FrFcfsScheduler(len(traces)))
        stats = system.run(cycles)
        slowdowns = slowdowns_against(alone, stats)
        result.rows.append([depth, sum(slowdowns) / len(slowdowns),
                            max(slowdowns),
                            stats.queue_backpressure_events])
        result.summary[f"savg_depth_{depth}"] = \
            sum(slowdowns) / len(slowdowns)
    return result


def run_optimizer(scale="smoke", seed: int = 1,
                  workload_id: int = 1) -> Result:
    """GA vs hill climbing vs random search at an equal evaluation budget
    (Section IV-B's motivation for choosing a GA)."""
    scale = get_scale(scale)
    traces = workload_traces(workload_id, seed=seed)
    cycles = scale.run_cycles
    spec = BinSpec()
    evaluator = FitnessEvaluator(
        traces=traces, system_config=SCALED_MULTI_CONFIG,
        run_cycles=cycles, objective=throughput_objective,
        scheduler_factory=lambda nc: FrFcfsScheduler(nc))
    evaluator.measure_alone()
    budget = scale.ga_generations * scale.ga_population
    params = GaParams(generations=scale.ga_generations,
                      population=scale.ga_population, seed=seed)
    result = Result(
        experiment="ablation_optimizer",
        title="Ablation: optimizer comparison at equal evaluation budget "
              "(fitness = -S_avg, higher is better)",
        headers=["optimizer", "best fitness", "evaluations"])

    ga = GeneticAlgorithm(evaluator, spec, len(traces), params,
                          seed_genomes=seed_genomes(spec, len(traces)))
    ga_out = ga.run()
    result.rows.append(["genetic algorithm", ga_out.best_fitness,
                        ga_out.evaluations])
    hill = HillClimber(evaluator, spec, len(traces), budget=budget,
                       seed=seed)
    hill_out = hill.run()
    result.rows.append(["hill climbing", hill_out.best_fitness,
                        hill_out.evaluations])
    rand = RandomSearch(evaluator, spec, len(traces), budget=budget,
                        seed=seed)
    rand_out = rand.run()
    result.rows.append(["random search", rand_out.best_fitness,
                        rand_out.evaluations])
    result.summary["ga_fitness"] = ga_out.best_fitness
    result.summary["hill_fitness"] = hill_out.best_fitness
    result.summary["random_fitness"] = rand_out.best_fitness
    return result


def run_bin_length(scale="smoke", seed: int = 1,
                   benchmark: str = "mcf",
                   lengths: Sequence[int] = (5, 10, 20, 40)) -> Result:
    """Bin interval length L sweep: how quantisation granularity and span
    trade off for a fixed credit budget."""
    scale = get_scale(scale)
    trace = trace_for(benchmark, seed=seed)
    cycles = scale.run_cycles
    result = Result(
        experiment="ablation_bin_length",
        title=f"Ablation: bin interval length L on {benchmark}",
        headers=["L", "work", "shaper stall cycles"])
    for length in lengths:
        spec = BinSpec(interval_length=length)
        config = BinConfig(spec=spec, credits=ABLATION_CONFIG.credits)
        shaper = MittsShaper(config)
        system = SimSystem([trace], config=SCALED_SINGLE_CONFIG,
                           limiters=[shaper])
        stats = system.run(cycles)
        core = stats.cores[0]
        result.rows.append([length, core.work_cycles,
                            core.shaper_stall_cycles])
        result.summary[f"work_L{length}"] = float(core.work_cycles)
    return result


def run_congestion(scale="smoke", seed: int = 1,
                   workload_id: int = 2) -> Result:
    """Extension (Section III-C future work): global congestion feedback.

    A bursty four-program mix (workload 2: Apache, libquantum, mail,
    hmmer) runs with generous burst-heavy allocations whose simultaneous
    bursts transiently flood the memory controller.  The
    :class:`~repro.core.congestion.CongestionController` scales the
    allocations down while the queue is hot and recovers them when it
    drains; the memory system's own delay (post-shaper latency) should
    fall.
    """
    from ..core.bins import BinConfig
    from ..core.congestion import CongestionController

    scale = get_scale(scale)
    traces = workload_traces(workload_id, seed=seed)
    cycles = scale.run_cycles
    nominal = BinConfig.from_credits([64, 32, 16, 8, 8, 8, 8, 8, 8, 8])
    period = nominal.replenish_period()
    result = Result(
        experiment="ablation_congestion",
        title="Extension: congestion feedback to the MITTS units",
        headers=["feedback", "total work", "post-shaper latency",
                 "peak queue", "scale-downs"])
    for enabled in (False, True):
        shapers = [MittsShaper(nominal,
                               phase=i * period // len(traces))
                   for i in range(len(traces))]
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                           limiters=shapers,
                           scheduler=FrFcfsScheduler(len(traces)))
        controller = None
        if enabled:
            controller = CongestionController(system, epoch=2_000,
                                              high_water=10, low_water=4)
        stats = system.run(cycles)
        work = sum(core.work_cycles for core in stats.cores)
        requests = max(1, sum(core.dram_requests for core in stats.cores))
        latency = sum(core.post_shaper_latency
                      for core in stats.cores) / requests
        events = controller.scale_down_events if controller else 0
        label = "on" if enabled else "off"
        result.rows.append([label, work, latency,
                            stats.peak_queue_depth, events])
        result.summary[f"work_feedback_{label}"] = float(work)
        result.summary[f"latency_feedback_{label}"] = latency
        result.summary[f"peak_queue_{label}"] = \
            float(stats.peak_queue_depth)
    return result


def run_addrmap(scale="smoke", seed: int = 1) -> Result:
    """Substrate ablation: DRAM address interleaving scheme.

    Row interleaving (the DRAMSim2 default used throughout the
    reproduction) gives streaming workloads long row-hit runs; bank
    interleaving spreads a stream across banks.  The streaming benchmark
    (libquantum) prefers row interleaving, the pointer chaser (mcf) is
    far less sensitive -- evidence the substrate's row-buffer behaviour
    is doing real work in the results.
    """
    from ..sim.system import SystemConfig

    scale = get_scale(scale)
    base = SCALED_SINGLE_CONFIG
    result = Result(
        experiment="ablation_addrmap",
        title="Ablation: DRAM address interleaving",
        headers=["benchmark", "mapping", "work", "row hit rate"])
    for benchmark in ("libquantum", "mcf"):
        per_scheme = {}
        for scheme in ("row", "bank"):
            config = SystemConfig(
                l1_size=base.l1_size, l1_ways=base.l1_ways,
                llc_size=base.llc_size, llc_ways=base.llc_ways,
                llc_hit_latency=base.llc_hit_latency,
                llc_banks=base.llc_banks,
                llc_bank_busy=base.llc_bank_busy,
                line_bytes=base.line_bytes,
                mc_queue_depth=base.mc_queue_depth, timing=base.timing,
                dram_mapping=scheme,
                interarrival_bucket=base.interarrival_bucket,
                default_mlp=base.default_mlp)
            system = SimSystem([trace_for(benchmark, seed=seed)],
                               config=config)
            stats = system.run(scale.run_cycles)
            work = stats.cores[0].work_cycles
            per_scheme[scheme] = work
            result.rows.append([benchmark, scheme, work,
                                stats.row_hit_rate])
            result.summary[f"{benchmark}_{scheme}_work"] = float(work)
            result.summary[f"{benchmark}_{scheme}_rowhit"] = \
                stats.row_hit_rate
        result.summary[f"{benchmark}_row_over_bank"] = \
            per_scheme["row"] / max(1, per_scheme["bank"])
    return result


def run_profiling(scale="smoke", seed: int = 1) -> Result:
    """Section III-F: profiling-based configuration vs the GA.

    The paper offers two ways to pick a configuration -- profile the
    application, or search with the GA.  This ablation builds each
    benchmark's config both ways (GA optimising performance at comparable
    allocation size) and compares delivered work: profiling should land
    within a few percent of the searched optimum for stable workloads at
    a fraction of the configuration cost (one run vs dozens).
    """
    from ..cloud.provision import perf_per_cost
    from ..tuning.ga import GaParams, GeneticAlgorithm
    from ..tuning.objectives import perf_per_cost_objective
    from ..tuning.profiler import profile_benchmark

    scale = get_scale(scale)
    cycles = scale.run_cycles
    result = Result(
        experiment="ablation_profiling",
        title="Section III-F: profiled vs GA-searched configurations "
              "(single-program perf/cost, higher is better)",
        headers=["benchmark", "profiled perf/cost", "GA perf/cost",
                 "profiled/GA", "profile evals", "GA evals"])
    for benchmark in ("mcf", "apache", "bzip"):
        config = profile_benchmark(benchmark, SCALED_SINGLE_CONFIG,
                                   cycles, seed=seed, headroom=1.25)
        trace = trace_for(benchmark, seed=seed)
        shaped = SimSystem([trace], config=SCALED_SINGLE_CONFIG,
                           limiters=[MittsShaper(config)])
        profiled_work = shaped.run(cycles).cores[0].work_cycles
        profiled_ppc = perf_per_cost(profiled_work, config)

        evaluator = FitnessEvaluator(
            traces=[trace], system_config=SCALED_SINGLE_CONFIG,
            run_cycles=cycles, objective=perf_per_cost_objective)
        params = GaParams(generations=scale.ga_generations,
                          population=scale.ga_population, seed=seed)
        ga = GeneticAlgorithm(evaluator, BinSpec(), 1, params,
                              seed_genomes=seed_genomes(BinSpec(), 1))
        ga_out = ga.run()
        ratio = profiled_ppc / max(1e-9, ga_out.best_fitness)
        result.rows.append([benchmark, profiled_ppc,
                            ga_out.best_fitness, ratio, 1,
                            ga_out.evaluations])
        result.summary[f"{benchmark}_profiled_over_ga"] = ratio
    result.notes.append("profiling needs ONE run; the GA needs "
                        "generations x population evaluations")
    return result


def run_core_model(scale="smoke", seed: int = 1,
                   workload_id: int = 1) -> Result:
    """Substrate robustness: do the headline results survive a more
    detailed core model?

    Repeats the workload-1 comparison (best conventional scheduler vs
    GA-tuned MITTS) under both core models: the default MSHR-capped MLP
    core and the Table II instruction-window ROB core (4-wide, 128-entry,
    with data-dependent pointer chases enforced).  The MITTS win should
    not be an artifact of the simpler core.
    """
    import dataclasses

    from .common import optimize_mitts, run_scheduler

    scale = get_scale(scale)
    traces = workload_traces(workload_id, seed=seed)
    cycles = scale.run_cycles
    result = Result(
        experiment="ablation_core_model",
        title="Substrate ablation: simple vs instruction-window core "
              "(lower S_avg is better)",
        headers=["core model", "best conventional S_avg",
                 "MITTS S_avg", "MITTS gain"])
    for model in ("simple", "window"):
        config = dataclasses.replace(SCALED_MULTI_CONFIG,
                                     core_model=model)
        alone = measure_alone(traces, config, cycles)
        best_savg = float("inf")
        for name in ("FR-FCFS", "MemGuard", "MISE"):
            stats = run_scheduler(name, traces, config, cycles)
            slowdowns = slowdowns_against(alone, stats)
            best_savg = min(best_savg,
                            sum(slowdowns) / len(slowdowns))
        ga_result, evaluator = optimize_mitts(
            traces, config, cycles, "throughput", scale, seed=seed,
            alone_work=alone)
        stats = evaluator.run_genome(ga_result.best_genome)
        slowdowns = slowdowns_against(alone, stats)
        mitts_savg = sum(slowdowns) / len(slowdowns)
        gain = best_savg / mitts_savg
        result.rows.append([model, best_savg, mitts_savg, gain])
        result.summary[f"{model}_mitts_gain"] = gain
    return result


if __name__ == "__main__":
    for fn in (run_methods, run_replenish, run_fifo, run_optimizer,
               run_bin_length, run_congestion, run_addrmap,
               run_profiling, run_core_model):
        print(fn().render())
        print()
