"""Experiment harness: one module per paper figure/table plus ablations.

``REGISTRY`` maps experiment ids to their ``run`` callables; every run
accepts ``scale`` ("smoke"/"small"/"paper") and ``seed`` and returns a
:class:`~repro.experiments.common.Result`.
"""

from . import ablations
from .common import Result, SCALES, Scale, get_scale
from .fig02_distributions import run as run_fig02
from .fig11_static_comparison import run as run_fig11
from .fig12_four_program import run as run_fig12
from .fig13_eight_program import run as run_fig13
from .fig14_hybrid import run as run_fig14
from .fig15_large_llc import run as run_fig15
from .fig16_isolation import run as run_fig16
from .fig17_bin_configs import run as run_fig17
from .fig18_perf_cost import run as run_fig18
from .sec4h_threaded import run as run_sec4h
from .sec4i_bin_count import run as run_sec4i
from .table_hw_cost import run as run_hw_cost

REGISTRY = {
    "fig02": run_fig02,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "sec4h": run_sec4h,
    "sec4i": run_sec4i,
    "hw_cost": run_hw_cost,
    "ablation_methods": ablations.run_methods,
    "ablation_replenish": ablations.run_replenish,
    "ablation_fifo": ablations.run_fifo,
    "ablation_optimizer": ablations.run_optimizer,
    "ablation_bin_length": ablations.run_bin_length,
    "ablation_congestion": ablations.run_congestion,
    "ablation_addrmap": ablations.run_addrmap,
    "ablation_profiling": ablations.run_profiling,
    "ablation_core_model": ablations.run_core_model,
}


def run_experiment(name: str, scale="smoke", seed: int = 1) -> Result:
    """Run one registered experiment by id."""
    try:
        runner = REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"known: {sorted(REGISTRY)}") from None
    return runner(scale=scale, seed=seed)


__all__ = [
    "REGISTRY",
    "Result",
    "SCALES",
    "Scale",
    "get_scale",
    "run_experiment",
]
