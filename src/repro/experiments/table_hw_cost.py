"""Section III-E: MITTS hardware cost.

Reproduces the paper's area argument from the component inventory: per-bin
credit and replenish registers (10 bits each for 1024 max credits), the
period register and counter, the inter-arrival counter, the tag-indexed
pending table, and the adder/subtractor/zero-detect logic.  The default
10-bin unit is calibrated to the published 0.0035 mm^2 (IBM 32nm SOI,
<0.9% of an OpenSPARC-T1-class core); alternative geometries are costed
with the same per-bit constant.
"""

from __future__ import annotations

from typing import Sequence

from ..core.area import (MittsAreaModel, PUBLISHED_AREA_MM2,
                         PUBLISHED_CORE_FRACTION)
from ..core.bins import BinSpec
from .common import Result

BIN_COUNTS = (4, 6, 8, 10, 16)


def run(scale="smoke", seed: int = 1,
        bin_counts: Sequence[int] = BIN_COUNTS) -> Result:
    result = Result(
        experiment="hw_cost",
        title="Section III-E: MITTS hardware cost by bin count",
        headers=["bins", "storage bits", "total bits", "area mm^2",
                 "core fraction"],
    )
    for num_bins in bin_counts:
        model = MittsAreaModel(spec=BinSpec(num_bins=num_bins))
        result.rows.append([num_bins, model.storage_bits,
                            model.total_equivalent_bits,
                            model.area_mm2(), model.core_fraction()])
    default = MittsAreaModel()
    result.summary["default_area_mm2"] = default.area_mm2()
    result.summary["default_core_fraction"] = default.core_fraction()
    result.summary["published_area_mm2"] = PUBLISHED_AREA_MM2
    result.summary["published_core_fraction"] = PUBLISHED_CORE_FRACTION
    result.notes.append("paper: 0.0035 mm^2, < 0.9% of core area in the "
                        "25-core 32nm tape-out")
    return result


if __name__ == "__main__":
    print(run().render())
