"""Figure 2: intrinsic inter-arrival distributions under two LLC sizes.

The paper plots, for three SPEC benchmarks, the distribution of memory
request inter-arrival times with a 64KB and a 1MB LLC, observing that a
larger LLC (1) reduces the total number of requests and (2) moves the
distribution right (longer inter-arrival times).  We reproduce both
effects with the scaled cache pair.
"""

from __future__ import annotations

from ..metrics.interarrival import InterarrivalDistribution
from ..sim.system import SimSystem, single_config
from ..workloads.benchmarks import trace_for
from .common import Result, get_scale

#: three SPEC benchmarks with contrasting locality: a pointer chaser, a
#: streaming-reuse kernel, and a compute-bound tree searcher (the paper's
#: figure likewise uses three SPEC2006 benchmarks)
BENCHMARKS = ("astar", "hmmer", "sjeng")
#: scaled stand-ins for the paper's 64KB / 1MB LLC pair: the same 16x size
#: ratio, positioned so benchmark hot sets fit the large LLC but not the
#: small one (the capacity-miss population the paper's figure contrasts)
SMALL_LLC = 16 * 1024
LARGE_LLC = 256 * 1024
SCALED_L1 = 8 * 1024


def distribution_for(benchmark: str, llc_size: int, cycles: int,
                     seed: int = 1):
    """Distribution of memory requests over a fixed *work* budget.

    The paper's figure counts requests over a fixed region of the program
    (a trace segment), not a fixed wall-clock window -- a larger LLC makes
    the program faster, so a time window would see *more* requests, not
    fewer.  We therefore run until a fixed number of trace events retires
    (with a generous cycle cap for heavily throttled runs).
    """
    config = single_config(llc_size=llc_size, l1_size=SCALED_L1)
    system = SimSystem([trace_for(benchmark, seed=seed)], config=config)
    target_events = max(500, cycles // 40)
    cap = 20 * cycles
    chunk = max(1000, cycles // 10)
    while (system.stats.cores[0].retired < target_events
           and system.engine.now < cap):
        system.run(chunk)
    core = system.stats.cores[0]
    dist = InterarrivalDistribution.from_core_stats(
        core, bucket_width=config.interarrival_bucket)
    return dist, core


def run(scale="smoke", seed: int = 1) -> Result:
    scale = get_scale(scale)
    result = Result(
        experiment="fig02",
        title="Figure 2: inter-arrival distributions, small vs large LLC",
        headers=["benchmark", "llc", "requests", "mean interarrival",
                 "burstiness"])
    for benchmark in BENCHMARKS:
        per_llc = {}
        for llc in (SMALL_LLC, LARGE_LLC):
            dist, _core = distribution_for(benchmark, llc,
                                           scale.run_cycles, seed)
            per_llc[llc] = dist
            result.rows.append([benchmark, f"{llc // 1024}KB",
                                dist.total_requests, dist.mean(),
                                dist.burstiness()])
        small, large = per_llc[SMALL_LLC], per_llc[LARGE_LLC]
        ratio = large.total_requests / max(1, small.total_requests)
        shift = large.mean() - small.mean()
        result.summary[f"{benchmark}_request_ratio_large_over_small"] = ratio
        result.summary[f"{benchmark}_mean_shift_cycles"] = shift
    result.notes.append(
        "paper: larger LLC reduces request count and shifts the "
        "distribution right (larger mean inter-arrival)")
    return result


def series(benchmark: str, llc_size: int, scale="smoke", seed: int = 1):
    """The raw (inter-arrival, count) series a Figure 2 panel plots."""
    scale = get_scale(scale)
    dist, _ = distribution_for(benchmark, llc_size, scale.run_cycles, seed)
    return dist.to_series()


if __name__ == "__main__":
    print(run().render())
