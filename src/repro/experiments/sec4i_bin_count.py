"""Section IV-I: sensitivity to the number of credit bins.

Re-running the Section IV-D methodology with 4, 6, 8 and 10 bins, the
paper finds more bins outperform fewer with diminishing returns (6 beats 4
by >10%, 8 beats 6 by ~5%, 10 beats 8 by ~2%).  Fewer bins both coarsen
the inter-arrival quantisation and shorten the expressible range, so the
GA has less shape to work with.
"""

from __future__ import annotations

from typing import Sequence

from ..core.bins import BinSpec
from ..sched.base import FrFcfsScheduler
from ..tuning.ga import GaParams, GeneticAlgorithm
from ..tuning.genome import seed_genomes
from ..tuning.objectives import FitnessEvaluator, throughput_objective
from ..workloads.mixes import workload_traces
from .common import (Result, SCALED_MULTI_CONFIG, get_scale, measure_alone,
                     slowdowns_against)

BIN_COUNTS = (4, 6, 8, 10)


def best_savg_for_bins(num_bins: int, traces, alone, cycles: int, scale,
                       seed: int) -> float:
    spec = BinSpec(num_bins=num_bins)
    evaluator = FitnessEvaluator(
        traces=traces, system_config=SCALED_MULTI_CONFIG,
        run_cycles=cycles, objective=throughput_objective,
        scheduler_factory=lambda nc: FrFcfsScheduler(nc))
    evaluator.alone_work = list(alone)
    params = GaParams(generations=scale.ga_generations,
                      population=scale.ga_population, seed=seed)
    ga = GeneticAlgorithm(evaluator, spec, len(traces), params,
                          seed_genomes=seed_genomes(spec, len(traces)))
    result = ga.run()
    stats = evaluator.run_genome(result.best_genome)
    slowdowns = slowdowns_against(alone, stats)
    return sum(slowdowns) / len(slowdowns)


def run(scale="smoke", seed: int = 1, workload_id: int = 1,
        bin_counts: Sequence[int] = BIN_COUNTS) -> Result:
    scale = get_scale(scale)
    traces = workload_traces(workload_id, seed=seed)
    cycles = scale.run_cycles
    alone = measure_alone(traces, SCALED_MULTI_CONFIG, cycles)
    result = Result(
        experiment="sec4i",
        title="Section IV-I: bin-count sensitivity "
              "(best S_avg per bin count, lower is better)",
        headers=["bins", "best S_avg"])
    scores = {}
    for num_bins in bin_counts:
        savg = best_savg_for_bins(num_bins, traces, alone, cycles, scale,
                                  seed)
        scores[num_bins] = savg
        result.rows.append([num_bins, savg])
    counts = sorted(scores)
    for prev, curr in zip(counts, counts[1:]):
        result.summary[f"gain_{curr}_over_{prev}"] = \
            scores[prev] / scores[curr]
    result.notes.append("paper: 6 bins beat 4 by >10%, 8 beat 6 by ~5%, "
                        "10 beat 8 by ~2% (diminishing returns)")
    return result


if __name__ == "__main__":
    print(run().render())
