"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig12
    python -m repro.experiments fig12 fig13 --scale small --seed 3
    python -m repro.experiments --all --jobs 4 --save-dir results
    python -m repro.experiments --all --jobs 4 --resume
    python -m repro.experiments --diff results/before results/after
    python -m repro.experiments --all --campaign runs --campaign-seeds 1 2 3

Parallelism (``--jobs N``) runs through :mod:`repro.runner`: with several
experiments selected, the experiments themselves fan out across the
pool; with a single experiment, it runs in-process and its *inner*
independent simulations (alone-run measurements, each GA generation's
population) fan out instead.  Results are assembled by job id, never by
completion order, so any ``--jobs`` value produces the same output as
serial.

``--cache-dir``/``--resume`` enable the content-addressed result cache:
completed experiments are skipped on re-runs (the key covers experiment
arguments, seed, scale, and a fingerprint of the source tree, so stale
results can never be served).  ``--require-cached`` turns "everything
was a cache hit" into an exit-code assertion for CI.
"""

from __future__ import annotations

import argparse
import sys

from . import REGISTRY
from ..metrics.report import format_table
from ..runner import JobSpec, ResultCache, Runner, RunnerConfig, using_runner

#: cache directory --resume falls back to when --cache-dir is not given
DEFAULT_CACHE_DIR = ".repro-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate MITTS (ISCA 2016) tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "small", "paper"],
                        help="effort preset (default: smoke)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--all", action="store_true",
                        help="run every registered experiment")
    parser.add_argument("--save-dir", default=None,
                        help="also save each result as JSON into this "
                             "directory")
    sweep = parser.add_argument_group("parallel execution and caching")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (default: 1, "
                            "fully serial)")
    sweep.add_argument("--cache-dir", default=None,
                       help="content-addressed result cache directory; "
                            "completed experiments are reused on re-runs")
    sweep.add_argument("--resume", action="store_true",
                       help="resume a previous sweep from the cache "
                            f"(implies --cache-dir {DEFAULT_CACHE_DIR} "
                            "when not given)")
    sweep.add_argument("--require-cached", action="store_true",
                       help="exit nonzero unless every experiment was a "
                            "cache hit (CI resume assertion)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-experiment wall-clock budget in seconds")
    sweep.add_argument("--retries", type=int, default=2,
                       help="retry attempts for failed/timed-out/crashed "
                            "jobs (default: 2; deterministic failures "
                            "are never retried)")
    sweep.add_argument("--checkpoint-dir", default=None,
                       help="directory for mid-run simulation checkpoints; "
                            "retried jobs resume partial work from here")
    sweep.add_argument("--no-progress", action="store_true",
                       help="suppress progress/ETA lines on stderr")
    campaign = parser.add_argument_group("campaign service (repro.fabric)")
    campaign.add_argument("--campaign", default=None, metavar="QUEUE_ROOT",
                          help="run the selected experiments as a fabric "
                               "campaign under this queue root: submit, "
                               "help drain (other worker pools may join), "
                               "then render results from the merged "
                               "database")
    campaign.add_argument("--campaign-seeds", type=int, nargs="+",
                          default=None, metavar="SEED",
                          help="seed axis of the campaign grid "
                               "(default: just --seed)")
    campaign.add_argument("--campaign-submit-only", action="store_true",
                          help="submit the campaign and exit; drain it "
                               "with python -m repro.fabric work")
    diff = parser.add_argument_group("regression diffing")
    diff.add_argument("--diff", nargs=2, metavar=("BEFORE", "AFTER"),
                      help="compare two --save-dir result directories "
                           "(exit 1 on significant metric changes)")
    diff.add_argument("--diff-tolerance", type=float, default=0.02,
                      help="relative change below which a metric delta "
                           "is insignificant (default: 0.02)")
    return parser


# ---------------------------------------------------------------------------
# --diff


def run_diff(before: str, after: str, tolerance: float) -> int:
    """Render summary-metric diffs between two saved result dirs."""
    from .store import diff_result_dirs

    report = diff_result_dirs(before, after, tolerance=tolerance)
    rows = []
    significant = 0
    for name, records in sorted(report["experiments"].items()):
        for record in records:
            flag = "*" if record["significant"] else ""
            significant += bool(record["significant"])
            change = record["relative_change"]
            rows.append([name, record["metric"],
                         _number(record["before"]), _number(record["after"]),
                         "n/a" if change is None else f"{change:+.2%}",
                         flag])
    print(format_table(
        ["experiment", "metric", "before", "after", "change", "sig"],
        rows, title=f"Result diff: {before} -> {after} "
                    f"(tolerance {tolerance:.0%})"))
    # Experiments present on only one side are regressions in their own
    # right (a figure vanished, or the baseline never had it), reported
    # the same way in both directions and always significant.
    missing = len(report["only_before"]) + len(report["only_after"])
    for name in report["only_before"]:
        print(f"missing: {name} present only in {before}")
    for name in report["only_after"]:
        print(f"missing: {name} present only in {after}")
    if not report["experiments"]:
        print("note: no common experiment files to compare")
        return 1
    summary = (f"{significant} significant change(s) across "
               f"{len(report['experiments'])} experiment(s)")
    if missing:
        summary += f", {missing} experiment(s) missing from one side"
    print(summary)
    return 1 if significant or missing else 0


def _number(value) -> str:
    return "missing" if value is None else f"{value:.4f}"


# ---------------------------------------------------------------------------
# --campaign: route the sweep through the fabric


def run_campaign(args, names) -> int:
    """Submit the selected experiments as a fabric campaign and drain it.

    The campaign is durable: killing this process loses nothing (its
    leases lapse and any other ``python -m repro.fabric work`` pool --
    or simply re-running this command -- picks the jobs back up).  The
    final tables are re-rendered from the results database alone, which
    is the same path ``python -m repro.fabric query --job`` uses.
    """
    from ..fabric import (CampaignQueue, DbError, ResultsDb,
                          figure_manifest, work_campaign)

    seeds = args.campaign_seeds or [args.seed]
    manifest = figure_manifest(names, scale=args.scale, seeds=seeds,
                               timeout=args.timeout, retries=args.retries)
    queue = CampaignQueue.submit(args.campaign, manifest)
    print(f"campaign {queue.campaign_id}: {queue.header()['num_jobs']} "
          f"job(s) under {queue.directory}")
    if args.campaign_submit_only:
        print(f"drain with: python -m repro.fabric work {args.campaign} "
              f"--campaign {queue.campaign_id}")
        return 0

    counters = work_campaign(queue, jobs=args.jobs,
                             retries=args.retries,
                             progress=not args.no_progress)
    print(f"drained: {counters['done']} done, {counters['failed']} "
          f"failed, {counters['quarantined']} quarantined, "
          f"{counters['stolen']} stolen; disposition "
          f"{counters['disposition']}")

    failed = 0
    with ResultsDb(f"{args.campaign}/results.sqlite") as db:
        db.merge_queue(queue)
        _headers, status_rows = db.query(
            "SELECT job_id, status, error FROM results "
            "WHERE campaign_id = ? ORDER BY job_index",
            (queue.campaign_id,))
        for job_id, status, error in status_rows:
            if status != "done":
                failed += 1
                print(f"=== {job_id} FAILED: {error}")
                print()
                continue
            try:
                headers, rows, title = db.stored_result_rows(
                    queue.campaign_id, job_id)
            except DbError as exc:
                print(f"=== {job_id}: {exc}")
                print()
                continue
            print(f"=== {job_id}")
            print(format_table(headers, rows, title=title))
            print()
        print(f"results database: {args.campaign}/results.sqlite "
              f"(fingerprint {db.fingerprint(queue.campaign_id)[:16]})")
    # Exit by disposition: 0 complete, 3 complete-degraded (explicit
    # holes in the figures), 4 wedged -- same contract as the fabric CLI.
    from ..fabric.__main__ import disposition_exit
    if failed or counters["failed"]:
        return disposition_exit(counters["disposition"]) or 3
    return disposition_exit(counters["disposition"])


# ---------------------------------------------------------------------------
# sweep driver


def _write_failure_manifest(save_dir, specs, sweep) -> str:
    """Persist ``failures.json`` describing every failed job.

    Written next to the saved results (or the working directory) so an
    orchestrating script can machine-read *which* jobs failed and *why*
    instead of scraping stdout.  A fully green sweep removes any stale
    manifest from a previous run.  Returns the path written, or ``""``.
    """
    import json
    import os

    directory = save_dir or "."
    path = os.path.join(directory, "failures.json")
    failed = [spec for spec in specs if not sweep[spec.job_id].ok]
    if not failed:
        try:
            os.unlink(path)
        except OSError:
            # No stale manifest to clear.
            return ""
        return ""
    manifest = {
        "total": len(specs),
        "failed": len(failed),
        "failures": [
            {"job_id": spec.job_id,
             "spec_hash": spec.spec_hash(),
             "kind": sweep[spec.job_id].failure.kind,
             "error_type": sweep[spec.job_id].failure.error_type,
             "message": sweep[spec.job_id].failure.message,
             "attempts": sweep[spec.job_id].failure.attempts}
            for spec in failed],
    }
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.diff:
        return run_diff(args.diff[0], args.diff[1], args.diff_tolerance)

    if args.list:
        for name in sorted(REGISTRY):
            print(name)
        return 0

    names = sorted(REGISTRY) if args.all else args.experiments
    if not names:
        parser.error("no experiments given (use --all or --list)")
    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; "
                     f"known: {sorted(REGISTRY)}")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.campaign:
        return run_campaign(args, names)

    cache_dir = args.cache_dir or (DEFAULT_CACHE_DIR if args.resume
                                   else None)
    cache = ResultCache(cache_dir) if cache_dir else None
    runner = Runner(RunnerConfig(jobs=args.jobs, timeout=args.timeout,
                                 retries=args.retries,
                                 progress=not args.no_progress,
                                 checkpoint_dir=args.checkpoint_dir),
                    cache=cache)
    call_kwargs = tuple(sorted({"scale": args.scale,
                                "seed": args.seed}.items()))
    specs = [JobSpec(job_id=name, fn="repro.experiments:run_experiment",
                     args=(name,), kwargs=call_kwargs,
                     seed=args.seed, scale=args.scale)
             for name in names]

    # One experiment cannot be split across workers, so run it inline and
    # let its inner simulations use the pool; several experiments fan out
    # as whole jobs.
    inline = args.jobs <= 1 or len(specs) == 1
    try:
        with using_runner(runner):
            sweep = runner.run(specs, inline=inline, label="experiments")
    finally:
        runner.close()

    for name in names:
        outcome = sweep[name]
        if not outcome.ok:
            failure = outcome.failure
            print(f"=== {name} ({args.scale}, seed {args.seed}) FAILED: "
                  f"{failure.kind} after {failure.attempts} attempt(s): "
                  f"{failure.error_type}: {failure.message}")
            print()
            continue
        source = "cache" if outcome.cached else f"{outcome.duration:.1f}s"
        print(f"=== {name} ({args.scale}, seed {args.seed}, {source})")
        print(outcome.value.render())
        print()
        if args.save_dir:
            from .store import save_result

            save_result(outcome.value, f"{args.save_dir}/{name}.json",
                        metadata={"scale": args.scale, "seed": args.seed,
                                  "elapsed_seconds": outcome.duration,
                                  "cached": outcome.cached,
                                  "attempts": outcome.attempts})

    if cache is not None:
        print(f"cache hits: {sweep.cache_hits}/{len(names)}")
    failures = sweep.failures
    manifest_path = _write_failure_manifest(args.save_dir, specs, sweep)
    if failures:
        print(f"{len(failures)} experiment(s) failed: "
              f"{[failure.job_id for failure in failures]}")
        if manifest_path:
            print(f"failure manifest written to {manifest_path}")
        return 1
    if args.require_cached and sweep.cache_hits < len(names):
        print(f"--require-cached: only {sweep.cache_hits}/{len(names)} "
              f"experiments came from the cache")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
