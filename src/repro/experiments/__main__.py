"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig12
    python -m repro.experiments fig12 fig13 --scale small --seed 3
    python -m repro.experiments --all
"""

from __future__ import annotations

import argparse
import sys
import time

from . import REGISTRY, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate MITTS (ISCA 2016) tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "small", "paper"],
                        help="effort preset (default: smoke)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--all", action="store_true",
                        help="run every registered experiment")
    parser.add_argument("--save-dir", default=None,
                        help="also save each result as JSON into this "
                             "directory")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(REGISTRY):
            print(name)
        return 0

    names = sorted(REGISTRY) if args.all else args.experiments
    if not names:
        parser.error("no experiments given (use --all or --list)")

    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; "
                     f"known: {sorted(REGISTRY)}")

    for name in names:
        started = time.time()
        result = run_experiment(name, scale=args.scale, seed=args.seed)
        elapsed = time.time() - started
        print(f"=== {name} ({args.scale}, seed {args.seed}, "
              f"{elapsed:.1f}s)")
        print(result.render())
        print()
        if args.save_dir:
            from .store import save_result

            save_result(result, f"{args.save_dir}/{name}.json",
                        metadata={"scale": args.scale, "seed": args.seed,
                                  "elapsed_seconds": elapsed})
    return 0


if __name__ == "__main__":
    sys.exit(main())
