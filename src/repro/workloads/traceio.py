"""Trace file I/O: persist and replay traces (SSim-style trace-driven use).

The authors' simulator is "driven by the GEM5 Alpha ISA full system
simulator, and both trace-driven simulation and execution-driven
simulation can be performed".  This module provides the trace-driven leg
for external users: a one-line-per-event text format

    <work> <address-hex> <r|w>

with ``#`` comments, plus save/load helpers.  Loaded traces are plain
:class:`~repro.workloads.trace.ListTrace` objects, usable anywhere a
synthetic trace is.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Union

from .trace import ListTrace, TraceEvent

_FORMAT_HEADER = "# repro-trace v1"


def dump_trace(events: Iterable[TraceEvent],
               target: Union[str, Path, io.TextIOBase]) -> int:
    """Write events in the text format; returns the event count."""
    owned = False
    if isinstance(target, (str, Path)):
        handle = open(target, "w", encoding="utf-8")
        owned = True
    else:
        handle = target
    try:
        handle.write(_FORMAT_HEADER + "\n")
        count = 0
        for event in events:
            kind = "w" if event.is_write else "r"
            dep = " d" if getattr(event, "depends", False) else ""
            handle.write(f"{event.work} {event.address:x} {kind}{dep}\n")
            count += 1
        return count
    finally:
        if owned:
            handle.close()


def load_trace(source: Union[str, Path, io.TextIOBase]) -> ListTrace:
    """Read a trace written by :func:`dump_trace`.

    Unknown or malformed lines raise ``ValueError`` with the line number,
    so a truncated or corrupted trace fails loudly rather than silently
    shortening a workload.
    """
    owned = False
    if isinstance(source, (str, Path)):
        handle = open(source, "r", encoding="utf-8")
        owned = True
    else:
        handle = source
    try:
        events = []
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"line {line_number}: expected 'work addr r|w [d]', "
                    f"got {line!r}")
            try:
                work = int(parts[0])
                address = int(parts[1], 16)
            except ValueError as error:
                raise ValueError(f"line {line_number}: {error}") from None
            if work < 0 or address < 0:
                raise ValueError(
                    f"line {line_number}: negative work or address")
            if parts[2] not in ("r", "w"):
                raise ValueError(
                    f"line {line_number}: access kind must be r or w")
            depends = False
            if len(parts) == 4:
                if parts[3] != "d":
                    raise ValueError(
                        f"line {line_number}: fourth field must be 'd'")
                depends = True
            events.append(TraceEvent(work, address, parts[2] == "w",
                                     depends))
        return ListTrace(events)
    finally:
        if owned:
            handle.close()


def record_benchmark(benchmark: str, path: Union[str, Path],
                     seed: int = 1) -> int:
    """Convenience: synthesise a benchmark's trace and persist it."""
    from .benchmarks import trace_for

    return dump_trace(trace_for(benchmark, seed=seed), path)
