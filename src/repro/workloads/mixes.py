"""Table III multi-program workload mixes.

The paper constructs six mixes: workloads 1-3 run four programs, workloads
4-6 run eight.  "lib" in the paper's Table III is libquantum.
"""

from __future__ import annotations

from typing import Dict, List

from .benchmarks import trace_for
from .generator import SyntheticTrace


WORKLOADS: Dict[int, List[str]] = {
    1: ["gcc", "libquantum", "bzip", "mcf"],
    2: ["apache", "libquantum", "bhm_mail", "hmmer"],
    3: ["astar", "bhm_mail", "libquantum", "bzip"],
    4: ["gcc", "gobmk", "libquantum", "sjeng",
        "bzip", "mcf", "omnetpp", "h264ref"],
    5: ["bhm_mail", "astar", "libquantum", "sjeng",
        "bzip", "mcf", "omnetpp", "h264ref"],
    6: ["apache", "astar", "gobmk", "sjeng",
        "bzip", "mcf", "omnetpp", "h264ref"],
}

FOUR_PROGRAM_WORKLOADS = (1, 2, 3)
EIGHT_PROGRAM_WORKLOADS = (4, 5, 6)


def workload_names(workload_id: int) -> List[str]:
    """Benchmark names in Table III's workload ``workload_id``."""
    try:
        return list(WORKLOADS[workload_id])
    except KeyError:
        raise KeyError(f"unknown workload {workload_id}; "
                       f"known: {sorted(WORKLOADS)}") from None


def workload_traces(workload_id: int, seed: int = 1) -> List[SyntheticTrace]:
    """Traces for every program in a Table III workload."""
    return [trace_for(name, seed=seed + i)
            for i, name in enumerate(workload_names(workload_id))]
