"""Synthetic trace generation: phase-structured, burst-modulated streams.

Real traces (the paper drives its simulator from GEM5 Alpha full-system
traces of SPEC/PARSEC/Apache/mail) are replaced by parameterised stochastic
processes.  Each benchmark is a sequence of :class:`PhaseProfile` segments;
within a phase, a two-state Markov chain modulates between *burst* and
*idle* gap regimes (capturing the burstiness axis MITTS cares about), and
the address stream mixes sequential walking with uniform jumps inside the
phase's working set (capturing locality, hence L1/LLC filtering and DRAM
row-buffer behaviour).

Determinism: iterating a :class:`SyntheticTrace` re-seeds its RNG, so every
iteration -- and every simulation that replays it -- sees the identical
event sequence.
"""

from __future__ import annotations

import random
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from .trace import TraceEvent

#: Bounded memo of generated event streams keyed by ``(profile, seed)``.
#: Synthesis is deterministic and :class:`~repro.workloads.trace.TraceEvent`
#: is immutable, so replaying a cached tuple is indistinguishable from
#: regenerating -- it just skips the per-event RNG work when the same trace
#: drives several systems (slowdown baselines, benchmark repeats).
_TRACE_MEMO: "OrderedDict[Tuple, Tuple[TraceEvent, ...]]" = OrderedDict()
_TRACE_MEMO_MAX = 64


@dataclass(frozen=True)
class PhaseProfile:
    """Stochastic parameters of one program phase."""

    #: number of trace events in this phase
    length: int = 2000
    #: mean compute gap (cycles) while in the burst state
    burst_gap: float = 2.0
    #: mean compute gap (cycles) while in the idle state
    idle_gap: float = 60.0
    #: mean number of consecutive events spent in the burst state
    burst_length: float = 20.0
    #: mean number of consecutive events spent in the idle state
    idle_length: float = 10.0
    #: bytes of the phase's working set (addresses jump within this region)
    working_set: int = 256 * 1024
    #: probability the next access continues a sequential walk
    sequential_fraction: float = 0.5
    #: stride of the sequential walk, in bytes
    stride: int = 64
    #: probability an access is a write
    write_fraction: float = 0.2
    #: probability a non-sequential access targets the hot subset
    hot_access_fraction: float = 0.0
    #: fraction of the working set forming the hot subset
    hot_set_fraction: float = 0.1
    #: probability a non-sequential access depends on the previous one
    #: (pointer chasing); only the window core model enforces this
    dependency_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("phase length must be >= 1")
        if self.working_set < 64:
            raise ValueError("working set must hold at least one line")
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise ValueError("sequential_fraction must be in [0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_access_fraction <= 1.0:
            raise ValueError("hot_access_fraction must be in [0, 1]")
        if not 0.0 < self.hot_set_fraction <= 1.0:
            raise ValueError("hot_set_fraction must be in (0, 1]")
        if not 0.0 <= self.dependency_fraction <= 1.0:
            raise ValueError("dependency_fraction must be in [0, 1]")


@dataclass(frozen=True)
class BenchmarkProfile:
    """A named benchmark: an ordered list of phases plus an address base."""

    name: str
    phases: Sequence[PhaseProfile] = field(default_factory=tuple)
    #: base byte address of the benchmark's memory region
    base_address: int = 0
    #: memory-level parallelism the core sustains for this program
    mlp: int = 4

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"benchmark {self.name!r} has no phases")
        if self.mlp < 1:
            raise ValueError("mlp must be >= 1")

    @property
    def total_events(self) -> int:
        return sum(phase.length for phase in self.phases)


class SyntheticTrace:
    """Deterministic, replayable trace synthesised from a profile."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 1) -> None:
        self.profile = profile
        self.seed = seed

    def __len__(self) -> int:
        return self.profile.total_events

    def __iter__(self) -> Iterator[TraceEvent]:
        key = (self.profile, self.seed)
        try:
            cached = _TRACE_MEMO.get(key)
        except TypeError:
            # Profiles holding an unhashable phase container (e.g. a list)
            # simply skip the memo.
            return self._generate()
        if cached is None:
            cached = tuple(self._generate())
            _TRACE_MEMO[key] = cached
            if len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
                _TRACE_MEMO.popitem(last=False)
        return iter(cached)

    def _generate(self) -> Iterator[TraceEvent]:
        # zlib.crc32 is stable across processes (unlike builtin hash()).
        name_hash = zlib.crc32(self.profile.name.encode("utf-8"))
        rng = random.Random((self.seed << 16) ^ name_hash)
        for phase in self.profile.phases:
            yield from self._phase_events(phase, rng)

    def _phase_events(self, phase: PhaseProfile,
                      rng: random.Random) -> Iterator[TraceEvent]:
        base = self.profile.base_address
        lines = max(1, phase.working_set // 64)
        hot_lines = max(1, int(lines * phase.hot_set_fraction))
        cursor = base
        in_burst = True
        # Per-event exit probability of each Markov state.
        leave_burst = 1.0 / max(1.0, phase.burst_length)
        leave_idle = 1.0 / max(1.0, phase.idle_length)
        for _ in range(phase.length):
            mean_gap = phase.burst_gap if in_burst else phase.idle_gap
            # Geometric-ish gap with the requested mean, floored at 0.
            gap = int(rng.expovariate(1.0 / mean_gap)) if mean_gap > 0 else 0
            # Hot-set re-touches correlate with the burst state: bursts
            # model loop-nest reuse (short inter-arrival, cache-friendly),
            # idle-state wandering is compulsory/cold traffic.  This is
            # what makes a larger LLC remove the *short-gap* requests and
            # shift the surviving distribution right (Figure 2).
            hot_probability = phase.hot_access_fraction \
                * (1.5 if in_burst else 0.25)
            depends = False
            if rng.random() < phase.sequential_fraction:
                cursor += phase.stride
                if cursor >= base + phase.working_set:
                    cursor = base
                address = cursor
            elif rng.random() < hot_probability:
                address = base + 64 * rng.randrange(hot_lines)
                depends = rng.random() < phase.dependency_fraction
            else:
                address = base + 64 * rng.randrange(lines)
                cursor = address
                depends = rng.random() < phase.dependency_fraction
            is_write = rng.random() < phase.write_fraction
            yield TraceEvent(gap, address, is_write, depends)
            if in_burst:
                if rng.random() < leave_burst:
                    in_burst = False
            else:
                if rng.random() < leave_idle:
                    in_burst = True


def _idle_phase(length: int = 400) -> PhaseProfile:
    """A near-idle stretch: the thread trickles occasional accesses.

    Models pipeline-stage imbalance in threaded programs -- the situation
    where "some threads are idle or cannot use up their credits within a
    replenishment window" (Section IV-H).
    """
    return PhaseProfile(length=length, burst_gap=200.0, idle_gap=800.0,
                        burst_length=2.0, idle_length=30.0,
                        working_set=64 * 1024, sequential_fraction=0.9,
                        write_fraction=0.1)


def thread_traces(profile: BenchmarkProfile, threads: int,
                  seed: int = 1) -> List[SyntheticTrace]:
    """Per-thread traces for a multi-threaded program (Section IV-H).

    Threads share the program's address region (so they share LLC capacity
    the way x264/ferret threads do) and run *staggered* schedules: the
    phase order rotates per thread and an idle stage is inserted at a
    thread-specific position, so at any time some threads burst while
    others are near-idle -- the demand imbalance the shared-vs-per-thread
    MITTS study relies on.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    traces = []
    for t in range(threads):
        rotated = [profile.phases[(i + t) % len(profile.phases)]
                   for i in range(len(profile.phases))]
        # Insert the idle stage at a per-thread position (threads > 1
        # only: a single thread is just the program).
        if threads > 1:
            slot = t % (len(rotated) + 1)
            rotated.insert(slot, _idle_phase())
        shifted = BenchmarkProfile(name=f"{profile.name}#t{t}",
                                   phases=tuple(rotated),
                                   base_address=profile.base_address,
                                   mlp=profile.mlp)
        traces.append(SyntheticTrace(shifted, seed=seed + 101 * t))
    return traces
