"""Trace representation: the unit of work a simulated core replays.

A trace is a sequence of :class:`TraceEvent` -- ``work`` compute cycles
followed by one memory access to ``address``.  Traces must be *replayable*:
iterating twice yields the identical sequence, so a program's run alone and
its run in a shared system replay the same work (the basis of the
``T_shared / T_single`` slowdown metrics).
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Sequence


class TraceEvent(NamedTuple):
    """``work`` compute cycles, then an access to byte ``address``.

    ``depends`` marks the access as data-dependent on the previous event
    (a pointer chase): the instruction-window core model cannot dispatch
    it until the previous access's data has returned.  The simple core
    model ignores the flag (its MLP cap plays the same role).
    """

    work: int
    address: int
    is_write: bool
    depends: bool = False


class ListTrace:
    """A fixed, in-memory trace (used heavily by the tests)."""

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self._events: List[TraceEvent] = list(events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


def uniform_trace(count: int, gap: int, stride: int = 64,
                  base: int = 0, is_write: bool = False) -> ListTrace:
    """A perfectly regular trace: constant gap, sequential lines.

    This is the "constant memory traffic" pattern at the top of Figure 1 --
    its inter-arrival distribution is a single pulse.
    """
    if count < 0 or gap < 0:
        raise ValueError("count and gap must be non-negative")
    return ListTrace([TraceEvent(gap, base + i * stride, is_write)
                      for i in range(count)])


def bursty_trace(bursts: int, burst_len: int, burst_gap: int,
                 idle_gap: int, stride: int = 64,
                 base: int = 0) -> ListTrace:
    """Alternating burst/idle trace: the middle pattern of Figure 1.

    Its inter-arrival distribution has two pulses: one at ``burst_gap`` and
    one at ``idle_gap``.
    """
    events = []
    address = base
    for _ in range(bursts):
        for i in range(burst_len):
            gap = idle_gap if i == 0 else burst_gap
            events.append(TraceEvent(gap, address, False))
            address += stride
    return ListTrace(events)
