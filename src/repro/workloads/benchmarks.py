"""Per-benchmark synthetic profiles (SPECint 2006, PARSEC, Apache, mail).

Each profile substitutes for a GEM5-captured trace of the real benchmark.
Parameters are calibrated to the benchmark's published memory character --
the properties MITTS's results actually depend on:

* **memory intensity** -- working set vs. the 32KB L1 / 64KB-1MB LLC of
  Table II decides the off-chip request rate (mcf, libquantum, omnetpp
  memory-bound; sjeng, gobmk, hmmer cache-resident);
* **burstiness** -- the burst/idle Markov parameters (Apache and the bhm
  mail server are request-driven and extremely bursty; libquantum streams
  uniformly), which Figure 1 argues is exactly what a single average
  bandwidth number cannot express;
* **locality** -- sequential fraction controls DRAM row-buffer hits
  (libquantum ~ streaming; mcf/astar pointer-chase);
* **MLP** -- how many misses the core overlaps, i.e. latency sensitivity.

Each benchmark owns a disjoint 64 MB address region so multi-program mixes
interfere in the shared LLC through capacity/bandwidth, not aliasing.
"""

from __future__ import annotations

from typing import Dict, List

from .generator import BenchmarkProfile, PhaseProfile, SyntheticTrace

_REGION = 1 << 26  # 64 MB per benchmark

KB = 1024
MB = 1024 * 1024


def _phases(*specs: dict) -> tuple:
    return tuple(PhaseProfile(**spec) for spec in specs)


_PROFILES: Dict[str, BenchmarkProfile] = {}

#: Temporal locality per benchmark: (hot_access_fraction, hot_set_fraction).
#: The hot subset is sized to exceed the 32KB L1 but fit a reasonable LLC,
#: so these benchmarks are *cache-sensitive*: they hit in the LLC when run
#: alone and lose those hits when co-runners pollute it -- the interference
#: channel Section IV-D's advantage 1 is about.  Streaming (libquantum) and
#: tiny-footprint (sjeng, gobmk, hmmer) benchmarks need no explicit hot set.
_HOT_SETS: Dict[str, tuple] = {
    "mcf": (0.5, 0.006),
    "omnetpp": (0.55, 0.008),
    "bzip": (0.75, 0.035),
    "gcc": (0.8, 0.04),
    "astar": (0.8, 0.025),
    "h264ref": (0.6, 0.035),
    "apache": (0.65, 0.025),
    "bhm_mail": (0.6, 0.017),
    "bodytrack": (0.6, 0.025),
    "ferret": (0.6, 0.025),
    "x264": (0.6, 0.025),
}


#: Pointer-chase intensity per benchmark: the fraction of non-sequential
#: accesses that are data-dependent on their predecessor.  Only the
#: instruction-window core model enforces dependencies; the simple model's
#: per-benchmark ``mlp`` knob encodes the same latency sensitivity.
_DEPENDENCIES: Dict[str, float] = {
    "mcf": 0.5,
    "omnetpp": 0.5,
    "astar": 0.7,
    "gcc": 0.3,
    "gobmk": 0.3,
    "sjeng": 0.3,
    "bzip": 0.1,
    "apache": 0.2,
    "bhm_mail": 0.2,
    "ferret": 0.2,
    "bodytrack": 0.2,
}


def _register(name: str, mlp: int, *phase_specs: dict) -> None:
    index = len(_PROFILES)
    hot = _HOT_SETS.get(name)
    dependency = _DEPENDENCIES.get(name)
    for spec in phase_specs:
        if hot is not None:
            spec.setdefault("hot_access_fraction", hot[0])
            spec.setdefault("hot_set_fraction", hot[1])
        if dependency is not None:
            spec.setdefault("dependency_fraction", dependency)
    _PROFILES[name] = BenchmarkProfile(
        name=name, phases=_phases(*phase_specs),
        base_address=index * _REGION, mlp=mlp)


# --- SPECint 2006 ----------------------------------------------------------

_register(
    "mcf", 6,
    dict(length=2500, burst_gap=2, idle_gap=25, burst_length=50,
         idle_length=6, working_set=8 * MB, sequential_fraction=0.15,
         write_fraction=0.3),
    dict(length=2000, burst_gap=3, idle_gap=40, burst_length=30,
         idle_length=10, working_set=6 * MB, sequential_fraction=0.2,
         write_fraction=0.25),
)

_register(
    "libquantum", 8,
    dict(length=12000, burst_gap=1, idle_gap=8, burst_length=150,
         idle_length=4, working_set=4 * MB, sequential_fraction=0.95,
         write_fraction=0.15),
    dict(length=8000, burst_gap=2, idle_gap=12, burst_length=100,
         idle_length=5, working_set=4 * MB, sequential_fraction=0.9,
         write_fraction=0.15),
)

_register(
    "omnetpp", 4,
    dict(length=2200, burst_gap=3, idle_gap=35, burst_length=40,
         idle_length=10, working_set=6 * MB, sequential_fraction=0.25,
         write_fraction=0.3),
    dict(length=1800, burst_gap=2, idle_gap=60, burst_length=25,
         idle_length=15, working_set=5 * MB, sequential_fraction=0.2,
         write_fraction=0.3),
)

_register(
    "bzip", 4,
    dict(length=2000, burst_gap=2, idle_gap=150, burst_length=60,
         idle_length=30, working_set=768 * KB, sequential_fraction=0.7,
         write_fraction=0.35),
    dict(length=1500, burst_gap=4, idle_gap=100, burst_length=40,
         idle_length=25, working_set=512 * KB, sequential_fraction=0.75,
         write_fraction=0.35),
)

_register(
    "gcc", 3,
    dict(length=1500, burst_gap=4, idle_gap=80, burst_length=25,
         idle_length=20, working_set=640 * KB, sequential_fraction=0.4,
         write_fraction=0.3),
    dict(length=1500, burst_gap=3, idle_gap=50, burst_length=35,
         idle_length=15, working_set=768 * KB, sequential_fraction=0.35,
         write_fraction=0.3),
    dict(length=1200, burst_gap=6, idle_gap=120, burst_length=20,
         idle_length=30, working_set=512 * KB, sequential_fraction=0.45,
         write_fraction=0.3),
)

_register(
    "astar", 2,
    dict(length=2000, burst_gap=3, idle_gap=45, burst_length=30,
         idle_length=12, working_set=1 * MB, sequential_fraction=0.25,
         write_fraction=0.2),
    dict(length=1600, burst_gap=4, idle_gap=70, burst_length=20,
         idle_length=18, working_set=768 * KB, sequential_fraction=0.3,
         write_fraction=0.2),
)

_register(
    "gobmk", 2,
    dict(length=1500, burst_gap=8, idle_gap=120, burst_length=15,
         idle_length=35, working_set=256 * KB, sequential_fraction=0.35,
         write_fraction=0.25),
    dict(length=1200, burst_gap=10, idle_gap=160, burst_length=12,
         idle_length=40, working_set=192 * KB, sequential_fraction=0.4,
         write_fraction=0.25),
)

_register(
    "sjeng", 2,
    dict(length=1500, burst_gap=10, idle_gap=150, burst_length=12,
         idle_length=40, working_set=128 * KB, sequential_fraction=0.3,
         write_fraction=0.2),
)

_register(
    "h264ref", 6,
    dict(length=2000, burst_gap=2, idle_gap=100, burst_length=80,
         idle_length=50, working_set=768 * KB, sequential_fraction=0.8,
         write_fraction=0.25),
    dict(length=1500, burst_gap=3, idle_gap=140, burst_length=60,
         idle_length=60, working_set=512 * KB, sequential_fraction=0.85,
         write_fraction=0.25),
)

_register(
    "hmmer", 4,
    dict(length=1500, burst_gap=6, idle_gap=40, burst_length=40,
         idle_length=15, working_set=64 * KB, sequential_fraction=0.9,
         write_fraction=0.2),
)

# --- Server workloads ------------------------------------------------------

_register(
    "apache", 4,
    dict(length=2000, burst_gap=2, idle_gap=400, burst_length=30,
         idle_length=8, working_set=1 * MB, sequential_fraction=0.45,
         write_fraction=0.3),
    dict(length=1500, burst_gap=2, idle_gap=300, burst_length=40,
         idle_length=10, working_set=1536 * KB, sequential_fraction=0.4,
         write_fraction=0.3),
)

_register(
    "bhm_mail", 4,
    dict(length=2000, burst_gap=1, idle_gap=600, burst_length=50,
         idle_length=6, working_set=1536 * KB, sequential_fraction=0.5,
         write_fraction=0.4),
    dict(length=1500, burst_gap=2, idle_gap=450, burst_length=60,
         idle_length=8, working_set=1 * MB, sequential_fraction=0.55,
         write_fraction=0.4),
)

# --- PARSEC (lower overall memory intensity, Section IV-G2) ----------------

_register(
    "blackscholes", 4,
    dict(length=1500, burst_gap=8, idle_gap=60, burst_length=30,
         idle_length=20, working_set=512 * KB, sequential_fraction=0.9,
         write_fraction=0.2),
)

_register(
    "bodytrack", 4,
    dict(length=1500, burst_gap=5, idle_gap=90, burst_length=25,
         idle_length=25, working_set=1 * MB, sequential_fraction=0.6,
         write_fraction=0.25),
    dict(length=1200, burst_gap=7, idle_gap=70, burst_length=20,
         idle_length=20, working_set=768 * KB, sequential_fraction=0.65,
         write_fraction=0.25),
)

_register(
    "ferret", 4,
    dict(length=1500, burst_gap=4, idle_gap=110, burst_length=35,
         idle_length=25, working_set=1 * MB, sequential_fraction=0.5,
         write_fraction=0.25),
    dict(length=1200, burst_gap=6, idle_gap=80, burst_length=25,
         idle_length=20, working_set=768 * KB, sequential_fraction=0.55,
         write_fraction=0.25),
    dict(length=1200, burst_gap=5, idle_gap=140, burst_length=30,
         idle_length=30, working_set=1 * MB, sequential_fraction=0.6,
         write_fraction=0.25),
)

_register(
    "x264", 6,
    dict(length=1800, burst_gap=2, idle_gap=130, burst_length=70,
         idle_length=45, working_set=1 * MB, sequential_fraction=0.8,
         write_fraction=0.3),
    dict(length=1400, burst_gap=3, idle_gap=180, burst_length=50,
         idle_length=55, working_set=640 * KB, sequential_fraction=0.75,
         write_fraction=0.3),
)

_register(
    "streamcluster", 6,
    dict(length=6000, burst_gap=3, idle_gap=30, burst_length=90,
         idle_length=12, working_set=2 * MB, sequential_fraction=0.9,
         write_fraction=0.15),
)

_register(
    "swaptions", 2,
    dict(length=1200, burst_gap=12, idle_gap=150, burst_length=10,
         idle_length=40, working_set=128 * KB, sequential_fraction=0.7,
         write_fraction=0.2),
)


SPEC_BENCHMARKS = ("mcf", "libquantum", "omnetpp", "bzip", "gcc", "astar",
                   "gobmk", "sjeng", "h264ref", "hmmer")
PARSEC_BENCHMARKS = ("blackscholes", "bodytrack", "ferret", "x264",
                     "streamcluster", "swaptions")
SERVER_BENCHMARKS = ("apache", "bhm_mail")


def available_benchmarks() -> List[str]:
    """Names of all registered benchmark profiles."""
    return sorted(_PROFILES)


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {available_benchmarks()}"
        ) from None


def trace_for(name: str, seed: int = 1) -> SyntheticTrace:
    """A replayable synthetic trace for the named benchmark."""
    return SyntheticTrace(profile(name), seed=seed)
