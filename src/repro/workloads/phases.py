"""Online program-phase detection.

The phase-based online GA of Section IV-D reconfigures MITTS "at the
beginning of each phase so that it can adapt to program phase change".
The paper divides applications into five fixed phases; a deployed system
needs to *detect* phases instead.  :class:`PhaseDetector` implements the
standard windowed approach: sample a behaviour vector (memory request
rate, stall fraction) each window and signal a phase change when the
vector moves more than a threshold (relative Manhattan distance) from the
running phase centroid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(slots=True)
class PhaseSample:
    """Behaviour vector for one observation window."""

    request_rate: float
    stall_fraction: float

    def as_vector(self) -> List[float]:
        return [self.request_rate, self.stall_fraction]


@dataclass(slots=True)
class PhaseDetector:
    """Windowed phase-change detector over behaviour vectors.

    A phase change is declared when a sample's relative distance from the
    current phase centroid exceeds ``threshold`` for ``confirm``
    consecutive windows (hysteresis against one-off spikes).
    """

    threshold: float = 0.5
    confirm: int = 2
    #: samples aggregated into the current phase centroid
    _centroid: Optional[List[float]] = None
    _samples_in_phase: int = 0
    _deviant_streak: int = 0
    #: total phase changes declared
    changes: int = field(default=0)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.confirm < 1:
            raise ValueError("confirm must be >= 1")

    def _distance(self, vector: Sequence[float]) -> float:
        assert self._centroid is not None
        total = 0.0
        for value, center in zip(vector, self._centroid):
            scale = max(abs(center), 1e-9)
            total += abs(value - center) / scale
        return total / len(vector)

    def observe(self, sample: PhaseSample) -> bool:
        """Feed one window's sample; returns True on a phase change."""
        vector = sample.as_vector()
        if self._centroid is None:
            self._centroid = list(vector)
            self._samples_in_phase = 1
            return False
        if self._distance(vector) > self.threshold:
            self._deviant_streak += 1
            if self._deviant_streak >= self.confirm:
                self._centroid = list(vector)
                self._samples_in_phase = 1
                self._deviant_streak = 0
                self.changes += 1
                return True
            return False
        self._deviant_streak = 0
        # Running mean keeps the centroid tracking slow drift.
        self._samples_in_phase += 1
        weight = 1.0 / self._samples_in_phase
        self._centroid = [
            (1 - weight) * center + weight * value
            for center, value in zip(self._centroid, vector)]
        return False


class SystemPhaseMonitor:
    """Samples a :class:`~repro.sim.system.SimSystem` into a detector.

    Attach with ``monitor = SystemPhaseMonitor(system, window=5000)``;
    ``monitor.changes_at`` records the cycles at which any core changed
    phase, and an optional callback fires on each change (the hook the
    phase-based online GA uses to trigger a new CONFIG_PHASE).
    """

    __slots__ = ("system", "window", "on_change", "detectors",
                 "_snapshots", "changes_at")

    def __init__(self, system, window: int = 5_000,
                 threshold: float = 0.6, confirm: int = 2,
                 on_change=None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.system = system
        self.window = window
        self.on_change = on_change
        self.detectors = [PhaseDetector(threshold=threshold,
                                        confirm=confirm)
                          for _ in system.cores]
        self._snapshots = [core.snapshot() for core in system.stats.cores]
        self.changes_at: List[int] = []
        system.every(window, self._tick)

    def _tick(self) -> None:
        changed = False
        for index, core in enumerate(self.system.stats.cores):
            snap = core.snapshot()
            delta = {key: snap[key] - self._snapshots[index][key]
                     for key in snap}
            self._snapshots[index] = snap
            stall = (delta["memory_stall_cycles"]
                     + delta["shaper_stall_cycles"])
            sample = PhaseSample(
                request_rate=delta["dram_requests"] / self.window,
                stall_fraction=min(1.0, stall / self.window))
            if self.detectors[index].observe(sample):
                changed = True
        if changed:
            self.changes_at.append(self.system.engine.now)
            if self.on_change is not None:
                self.on_change()
