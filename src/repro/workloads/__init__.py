"""Workload substrate: synthetic, replayable benchmark traces."""

from .benchmarks import (PARSEC_BENCHMARKS, SERVER_BENCHMARKS,
                         SPEC_BENCHMARKS, available_benchmarks, profile,
                         trace_for)
from .generator import (BenchmarkProfile, PhaseProfile, SyntheticTrace,
                        thread_traces)
from .phases import PhaseDetector, PhaseSample, SystemPhaseMonitor
from .traceio import dump_trace, load_trace, record_benchmark
from .mixes import (EIGHT_PROGRAM_WORKLOADS, FOUR_PROGRAM_WORKLOADS,
                    WORKLOADS, workload_names, workload_traces)
from .trace import ListTrace, TraceEvent, bursty_trace, uniform_trace

__all__ = [
    "BenchmarkProfile",
    "EIGHT_PROGRAM_WORKLOADS",
    "FOUR_PROGRAM_WORKLOADS",
    "ListTrace",
    "PARSEC_BENCHMARKS",
    "PhaseDetector",
    "PhaseSample",
    "PhaseProfile",
    "SERVER_BENCHMARKS",
    "SPEC_BENCHMARKS",
    "SyntheticTrace",
    "SystemPhaseMonitor",
    "TraceEvent",
    "WORKLOADS",
    "available_benchmarks",
    "bursty_trace",
    "dump_trace",
    "load_trace",
    "profile",
    "record_benchmark",
    "thread_traces",
    "trace_for",
    "uniform_trace",
    "workload_names",
    "workload_traces",
]
