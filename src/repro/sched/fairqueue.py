"""Fair-queuing memory scheduler [Nesbit et al., MICRO 2006].

Start-time fair queuing adapted to the memory controller: each core owns a
virtual clock that advances by the (bank-state-dependent) estimated cost of
every request it gets serviced.  The scheduler always serves the backlogged
core with the smallest virtual clock, so each thread receives its allocated
1/N fraction of the memory system "regardless of the load placed by other
threads" -- and within the chosen core, row hits go first so fairness costs
as little throughput as possible.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.memctrl import MemoryController
from ..sim.request import MemoryRequest
from .base import MemoryScheduler


class FairQueueScheduler(MemoryScheduler):
    """Per-core virtual-time fair queuing."""

    name = "FairQueue"

    __slots__ = ("shares", "virtual_time", "_vnow", "_was_backlogged")

    def __init__(self, num_cores: int,
                 shares: Optional[List[float]] = None) -> None:
        super().__init__(num_cores)
        if shares is None:
            shares = [1.0] * num_cores
        if len(shares) != num_cores:
            raise ValueError("one share per core required")
        if any(s <= 0 for s in shares):
            raise ValueError("shares must be positive")
        self.shares = list(shares)
        self.virtual_time: List[float] = [0.0] * num_cores
        #: system virtual clock: start tag of the most recent service
        self._vnow = 0.0
        self._was_backlogged: set = set()

    def _cost(self, request: MemoryRequest,
              controller: MemoryController) -> float:
        timing = controller.dram.timing
        if controller.dram.would_row_hit(request.address):
            return float(timing.row_hit_latency)
        return float(timing.row_conflict_latency)

    def select(self, queue, now, controller):
        if not queue:
            return None
        grouped = self.by_core(queue)
        # Start-time fair queuing: a core that just became backlogged has
        # its clock raised to the system virtual clock, so idle periods
        # are not banked as service credit.
        for core in grouped:
            if core not in self._was_backlogged \
                    and self.virtual_time[core] < self._vnow:
                self.virtual_time[core] = self._vnow
        self._was_backlogged = set(grouped)
        core = min(grouped, key=lambda c: (self.virtual_time[c], c))
        self._vnow = max(self._vnow, self.virtual_time[core])
        request = self.row_hit_first(grouped[core], controller)
        self.virtual_time[core] += (self._cost(request, controller)
                                    / self.shares[core])
        return request
