"""ATLAS: Adaptive per-Thread Least-Attained-Service scheduling
[Kim et al., HPCA 2010].

Reference [9] of the paper.  Each long quantum, threads are ranked by the
memory service they have *attained* so far (exponentially decayed across
quanta); threads that have attained the least service get the highest
priority for the next quantum.  Light threads therefore fly through the
memory system while heavy streamers queue behind them -- strong system
throughput, weaker fairness, exactly the profile the MITTS comparison
narrative assigns to application-aware rankers.
"""

from __future__ import annotations

from typing import List

from ..sim.request import MemoryRequest
from .base import MemoryScheduler


class AtlasScheduler(MemoryScheduler):
    """Least-attained-service ranking with exponential history decay."""

    name = "ATLAS"

    __slots__ = ("quantum", "decay", "attained", "_this_quantum",
                 "_quantum_end", "_order")

    def __init__(self, num_cores: int, quantum: int = 20_000,
                 decay: float = 0.875) -> None:
        super().__init__(num_cores)
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self.quantum = quantum
        self.decay = decay
        #: decayed attained service per core
        self.attained: List[float] = [0.0] * num_cores
        self._this_quantum: List[float] = [0.0] * num_cores
        self._quantum_end = quantum
        self._order: List[int] = list(range(num_cores))

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        super().on_complete(request, now)
        if 0 <= request.core_id < self.num_cores:
            service = max(1, now - request.dram_start_cycle)
            self._this_quantum[request.core_id] += service

    def _roll_quantum(self, now: int) -> None:
        while now >= self._quantum_end:
            for core in range(self.num_cores):
                self.attained[core] = (self.decay * self.attained[core]
                                       + (1 - self.decay)
                                       * self._this_quantum[core])
            self._this_quantum = [0.0] * self.num_cores
            # Least attained service first.
            self._order = sorted(range(self.num_cores),
                                 key=lambda c: (self.attained[c], c))
            self._quantum_end += self.quantum

    def select(self, queue, now, controller):
        if not queue:
            return None
        self._roll_quantum(now)
        grouped = self.by_core(queue)
        for core in self._order:
            if core in grouped:
                return self.row_hit_first(grouped[core], controller)
        return self.row_hit_first(queue, controller)
