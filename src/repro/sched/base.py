"""Common machinery for memory-controller scheduling policies.

Every comparator from Section IV-D implements
:class:`~repro.sim.memctrl.MemorySchedulerProtocol`; this module adds the
bookkeeping they share -- per-core service counters and helper selection
primitives (oldest request, row-hit preference).
"""

from __future__ import annotations

import operator
from typing import List, Optional

from ..sim.memctrl import MemoryController, MemorySchedulerProtocol
from ..sim.request import MemoryRequest

#: arrival-order key, built once: C-level attribute access beats a
#: per-call ``lambda r: (r.mc_arrival_cycle, r.req_id)`` in the hot scan
_ARRIVAL_ORDER = operator.attrgetter("mc_arrival_cycle", "req_id")


class MemoryScheduler(MemorySchedulerProtocol):
    """Base scheduler with per-core serviced-request accounting."""

    name = "base"

    __slots__ = ("num_cores", "serviced")

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.num_cores = num_cores
        #: demand requests serviced per core over the whole run
        self.serviced: List[int] = [0] * num_cores

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        if 0 <= request.core_id < self.num_cores:
            self.serviced[request.core_id] += 1

    # ------------------------------------------------------------------
    # selection helpers

    @staticmethod
    def oldest(requests: List[MemoryRequest]) -> Optional[MemoryRequest]:
        if not requests:
            return None
        return min(requests, key=_ARRIVAL_ORDER)

    @staticmethod
    def row_hit_first(requests: List[MemoryRequest],
                      controller: MemoryController
                      ) -> Optional[MemoryRequest]:
        """Oldest row-hitting request, else oldest overall (FR-FCFS order)."""
        if not requests:
            return None
        hits = [r for r in requests
                if controller.dram.would_row_hit(r.address)]
        return MemoryScheduler.oldest(hits or requests)

    def by_core(self, queue: List[MemoryRequest]) -> dict:
        grouped: dict = {}
        for request in queue:
            grouped.setdefault(request.core_id, []).append(request)
        return grouped


class FcfsScheduler(MemoryScheduler):
    """First-come first-served: the simplest (and least fair under row
    locality) baseline."""

    name = "FCFS"

    __slots__ = ()

    def select(self, queue, now, controller):
        return self.oldest(queue)


class FrFcfsScheduler(MemoryScheduler):
    """FR-FCFS [Rixner et al., ISCA 2000]: row hits first, then oldest.

    Maximises DRAM throughput but "unfairly favors applications with higher
    row-buffer hits or higher memory intensity" (Section V) -- the standard
    unmanaged baseline of Figures 12/13.
    """

    name = "FR-FCFS"

    __slots__ = ()

    def select(self, queue, now, controller):
        return self.row_hit_first(queue, controller)
