"""Comparator memory schedulers and the MITTS+MISE hybrid.

The Section IV-D comparison set (FR-FCFS, FairQueue, TCM, FST, MemGuard,
MISE) plus the related-work schedulers the paper discusses (STFM, PAR-BS,
ATLAS).
"""

from .atlas import AtlasScheduler
from .base import FcfsScheduler, FrFcfsScheduler, MemoryScheduler
from .fairqueue import FairQueueScheduler
from .fst import FstController
from .hybrid import build_hybrid
from .memguard import MemGuardScheduler
from .mise import MiseScheduler
from .parbs import ParbsScheduler
from .stfm import StfmScheduler
from .tcm import TcmScheduler

__all__ = [
    "AtlasScheduler",
    "FairQueueScheduler",
    "FcfsScheduler",
    "FrFcfsScheduler",
    "FstController",
    "MemGuardScheduler",
    "MemoryScheduler",
    "MiseScheduler",
    "ParbsScheduler",
    "StfmScheduler",
    "TcmScheduler",
    "build_hybrid",
]
