"""STFM: Stall-Time Fair Memory scheduling [Mutlu & Moscibroda, MICRO'07].

Referenced in Section V: STFM "attempts to estimate each application's
slowdown, aiming to improve fairness by prioritizing the most slowed down
application".  Per thread it tracks

* ``T_shared`` -- memory stall time actually experienced, and
* ``T_alone`` -- an estimate of the stall time it would have experienced
  alone (here: requests times the unloaded service latency, scaled by the
  thread's MLP),

and computes the slowdown ratio ``S = T_shared / T_alone``.  When the
ratio between the most and least slowed threads exceeds a threshold
``alpha``, the scheduler prioritises the most-slowed thread's requests;
otherwise it falls back to plain FR-FCFS for throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.request import MemoryRequest
from .base import MemoryScheduler


class StfmScheduler(MemoryScheduler):
    """Stall-time fairness via slowdown-ratio thresholding."""

    name = "STFM"

    __slots__ = ("alpha", "mlp", "_shared_time", "_alone_time",
                 "_unloaded_latency")

    def __init__(self, num_cores: int, alpha: float = 1.1,
                 mlp: int = 4) -> None:
        super().__init__(num_cores)
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1.0")
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.alpha = alpha
        self.mlp = mlp
        #: accumulated shared-mode memory time per core
        self._shared_time: List[float] = [0.0] * num_cores
        #: accumulated estimated alone-mode memory time per core
        self._alone_time: List[float] = [0.0] * num_cores
        self._unloaded_latency: Optional[float] = None

    def _baseline(self, controller) -> float:
        if self._unloaded_latency is None:
            timing = controller.dram.timing
            self._unloaded_latency = float(timing.row_closed_latency)
        return self._unloaded_latency

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        super().on_complete(request, now)
        core = request.core_id
        if not 0 <= core < self.num_cores:
            return
        observed = max(0, now - request.mc_arrival_cycle)
        self._shared_time[core] += observed / self.mlp
        if self._unloaded_latency is not None:
            self._alone_time[core] += self._unloaded_latency / self.mlp

    def slowdown(self, core: int) -> float:
        alone = self._alone_time[core]
        if alone <= 0:
            return 1.0
        return max(1.0, self._shared_time[core] / alone)

    def unfairness(self) -> float:
        slowdowns = [self.slowdown(c) for c in range(self.num_cores)]
        return max(slowdowns) / max(1.0, min(slowdowns))

    def select(self, queue, now, controller):
        if not queue:
            return None
        self._baseline(controller)
        if self.unfairness() > self.alpha:
            grouped: Dict[int, list] = self.by_core(queue)
            worst = max(grouped, key=lambda c: (self.slowdown(c), -c))
            return self.row_hit_first(grouped[worst], controller)
        return self.row_hit_first(queue, controller)
