"""Fairness via Source Throttling [Ebrahimi et al., ASPLOS 2010].

FST is not a memory-controller policy: like MITTS it acts at the *source*,
periodically estimating per-application slowdown and throttling the cores
that cause interference.  The controller here installs a
:class:`~repro.core.limiter.StaticLimiter` at every core and runs an epoch
loop: estimate slowdowns from observed excess memory latency, compute
system unfairness, then throttle the aggressor (the least-slowed, most
request-intensive core) or gradually release throttles when the system is
fair.  The paper's Section III-A comparison point: "Unlike FST, MITTS not
only controls the rate ... but also controls the distribution of request
inter-arrival times."

Slowdown estimation substitutes the original's interference-cycle counting
with excess-latency accounting (observed average request latency over the
unloaded latency, scaled by the core's outstanding-miss parallelism); this
preserves the control loop's inputs at request-level fidelity.
"""

from __future__ import annotations

from typing import List

from ..core.limiter import StaticLimiter
from ..sim.system import SimSystem


class FstController:
    """Source-throttling feedback controller attached to a SimSystem."""

    __slots__ = ("system", "epoch", "unfairness_threshold",
                 "throttle_step", "release_step", "max_interval",
                 "limiters", "_last_snapshot", "slowdown_estimates",
                 "throttle_events")

    def __init__(self, system: SimSystem, epoch: int = 10_000,
                 unfairness_threshold: float = 1.08,
                 throttle_step: float = 1.5,
                 release_step: float = 0.9,
                 max_interval: int = 500) -> None:
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        if unfairness_threshold <= 1.0:
            raise ValueError("unfairness threshold must exceed 1.0")
        self.system = system
        self.epoch = epoch
        self.unfairness_threshold = unfairness_threshold
        self.throttle_step = throttle_step
        self.release_step = release_step
        self.max_interval = max_interval
        num_cores = len(system.cores)
        self.limiters: List[StaticLimiter] = []
        for core_id in range(num_cores):
            limiter = StaticLimiter(0)
            system.set_limiter(core_id, limiter)
            self.limiters.append(limiter)
        self._last_snapshot = [core.snapshot()
                               for core in system.stats.cores]
        self.slowdown_estimates: List[float] = [1.0] * num_cores
        self.throttle_events = 0
        system.every(epoch, self._tick)

    def _unloaded_latency(self) -> float:
        timing = self.system.config.timing
        return (self.system.config.llc_hit_latency
                + timing.row_closed_latency)

    def _tick(self) -> None:
        cores = self.system.stats.cores
        baseline = self._unloaded_latency()
        rates = []
        for index, core in enumerate(cores):
            snap = core.snapshot()
            delta = {k: snap[k] - self._last_snapshot[index][k]
                     for k in snap}
            self._last_snapshot[index] = snap
            requests = max(1, delta["dram_requests"])
            avg_latency = delta["total_latency"] / requests
            excess = max(0.0, avg_latency - baseline)
            mlp = self.system.cores[index].mlp
            # Interference cycles the core could not hide, per epoch cycle,
            # plus the stall its own throttle imposed -- the latter is the
            # negative feedback that stops FST from over-throttling.
            interference = excess * delta["dram_requests"] / max(1, mlp)
            throttle_stall = delta["shaper_stall_cycles"] / max(1, mlp)
            self.slowdown_estimates[index] = \
                1.0 + (interference + throttle_stall) / self.epoch
            rates.append(delta["dram_requests"])

        slowest = max(self.slowdown_estimates)
        fastest = max(1.0, min(self.slowdown_estimates))
        unfairness = slowest / fastest
        if unfairness > self.unfairness_threshold:
            self._throttle_aggressor(rates)
        else:
            self._release_all()
        for port in self.system.ports:
            port.kick()

    def _throttle_aggressor(self, rates: List[float]) -> None:
        """Throttle the least-slowed core with the highest request rate."""
        candidates = sorted(
            range(len(rates)),
            key=lambda c: (self.slowdown_estimates[c], -rates[c]))
        aggressor = candidates[0]
        limiter = self.limiters[aggressor]
        new_interval = max(1, int(max(limiter.interval, 8)
                                  * self.throttle_step))
        limiter.set_interval(min(self.max_interval, new_interval))
        self.throttle_events += 1

    def _release_all(self) -> None:
        for limiter in self.limiters:
            limiter.set_interval(int(limiter.interval * self.release_step))
