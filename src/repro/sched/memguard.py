"""MemGuard [Yun/Caccamo et al., RTAS 2013]: bandwidth reservation.

Memory bandwidth is split into a *guaranteed* part -- each core reserves a
per-period request budget -- and a *best-effort* part.  Requests from cores
within budget have strict priority; once a core exhausts its reservation
its requests are served only when no reserved request is waiting (this is
the reclaiming that keeps the reserved-but-unused bandwidth utilised).

As Section V notes, MemGuard "does not account for system fairness as a
demanding application can potentially get the most memory bandwidth" -- the
best-effort pool is first-come-first-served, which the evaluation exposes.
"""

from __future__ import annotations

from typing import List, Optional

from .base import MemoryScheduler


class MemGuardScheduler(MemoryScheduler):
    """Per-period guaranteed budgets with best-effort reclaiming."""

    name = "MemGuard"

    __slots__ = ("period", "guaranteed_fraction", "_budgets", "_used",
                 "_period_end", "_auto_budget")

    def __init__(self, num_cores: int, period: int = 10_000,
                 budgets: Optional[List[int]] = None,
                 guaranteed_fraction: float = 0.5) -> None:
        super().__init__(num_cores)
        if period < 1:
            raise ValueError("period must be >= 1")
        if not 0.0 < guaranteed_fraction <= 1.0:
            raise ValueError("guaranteed_fraction must be in (0, 1]")
        self.period = period
        self.guaranteed_fraction = guaranteed_fraction
        self._budgets = list(budgets) if budgets is not None else None
        self._used = [0] * num_cores
        self._period_end = period
        self._auto_budget = None

    def _auto_budgets(self, controller) -> List[int]:
        """Equal split of a conservative guaranteed service rate.

        The sustainable worst-case rate is one burst slot per tBL on the
        data bus; reserving ``guaranteed_fraction`` of it mirrors the
        guaranteed/best-effort split of the original system.
        """
        if self._auto_budget is None:
            slots = self.period // controller.dram.timing.t_bl
            total = max(self.num_cores,
                        int(slots * self.guaranteed_fraction))
            self._auto_budget = [total // self.num_cores] * self.num_cores
        return self._auto_budget

    def budgets(self, controller) -> List[int]:
        if self._budgets is not None:
            return self._budgets
        return self._auto_budgets(controller)

    def _roll_period(self, now: int) -> None:
        if now >= self._period_end:
            periods = (now - self._period_end) // self.period + 1
            self._period_end += periods * self.period
            self._used = [0] * self.num_cores

    def select(self, queue, now, controller):
        if not queue:
            return None
        self._roll_period(now)
        budgets = self.budgets(controller)
        reserved = [r for r in queue
                    if self._used[r.core_id] < budgets[r.core_id]]
        pick_from = reserved or queue
        request = self.row_hit_first(pick_from, controller)
        if request is not None:
            self._used[request.core_id] += 1
        return request

    def used_this_period(self) -> List[int]:
        """Per-core requests charged against the current period (tests)."""
        return list(self._used)
