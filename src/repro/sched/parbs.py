"""PAR-BS: Parallelism-Aware Batch Scheduling [Mutlu et al., ISCA 2008].

Reference [8] of the paper.  The controller forms *batches*: it marks up
to ``cap`` oldest requests per (core, bank) pair, then services marked
requests before any unmarked one -- a starvation-freedom guarantee.
Within a batch, threads are ranked shortest-job-first (fewest marked
requests first: the "max-total" rule approximated by total marked count)
so that each thread's bank-level parallelism is serviced together, and
row hits are preferred among equal-rank candidates.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..sim.request import MemoryRequest
from .base import MemoryScheduler


class ParbsScheduler(MemoryScheduler):
    """Batch-based scheduling with shortest-job-first thread ranking."""

    name = "PAR-BS"

    __slots__ = ("cap", "batches_formed", "_marked", "_rank")

    def __init__(self, num_cores: int, cap: int = 5) -> None:
        super().__init__(num_cores)
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.cap = cap
        self._marked: Set[int] = set()
        self._rank: Dict[int, int] = {}
        self.batches_formed = 0

    def _form_batch(self, queue: List[MemoryRequest], controller) -> None:
        """Mark up to ``cap`` oldest requests per (core, bank)."""
        per_core_bank: Dict[tuple, List[MemoryRequest]] = {}
        for request in queue:
            bank = controller.dram.mapper.bank_index(request.address)
            key = (request.core_id, bank)
            per_core_bank.setdefault(key, []).append(request)
        self._marked = set()
        marked_per_core: Dict[int, int] = {}
        # sorted() pins the marking order to (core, bank) rather than dict
        # insertion history, keeping batch formation order-explicit (SIM004)
        for (core, _bank), requests in sorted(per_core_bank.items()):
            requests.sort(key=lambda r: r.mc_arrival_cycle)
            for request in requests[:self.cap]:
                self._marked.add(request.req_id)
                marked_per_core[core] = marked_per_core.get(core, 0) + 1
        # Shortest job first: fewest marked requests -> highest priority.
        order = sorted(marked_per_core, key=lambda c: (marked_per_core[c],
                                                       c))
        self._rank = {core: position for position, core in
                      enumerate(order)}
        self.batches_formed += 1

    def select(self, queue, now, controller):
        if not queue:
            return None
        marked = [r for r in queue if r.req_id in self._marked]
        if not marked:
            self._form_batch(queue, controller)
            marked = [r for r in queue if r.req_id in self._marked]
        if not marked:
            return self.row_hit_first(queue, controller)
        best_rank = min(self._rank.get(r.core_id, self.num_cores)
                        for r in marked)
        candidates = [r for r in marked
                      if self._rank.get(r.core_id, self.num_cores)
                      == best_rank]
        chosen = self.row_hit_first(candidates, controller)
        self._marked.discard(chosen.req_id)
        return chosen
