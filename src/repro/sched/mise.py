"""MISE [Subramanian et al., HPCA 2013]: slowdown-estimation scheduling.

MISE estimates each application's slowdown as the ratio of its
*uninterfered* request service rate to its *shared* service rate.  The
uninterfered rate is measured online: each interval begins with one
measurement epoch per core during which that core's requests get highest
priority at the controller.  For the rest of the interval the scheduler
prioritises the application with the highest estimated slowdown, which
simultaneously improves fairness and bounds worst-case slowdown.

The paper's suggested parameters (Section IV-D) are an epoch of 10000
cycles and an interval of 5 million cycles; the interval default here is
scaled down to match the scaled ROIs (DESIGN.md section 6) while keeping
the epoch:interval structure.
"""

from __future__ import annotations

from typing import List, Optional

from .base import MemoryScheduler


class MiseScheduler(MemoryScheduler):
    """Epoch-based slowdown estimation with highest-slowdown-first service."""

    name = "MISE"

    __slots__ = ("epoch", "interval", "_interval_start", "_epoch_counts",
                 "_epoch_start", "_epoch_index", "_alone_rate",
                 "_shared_counts", "_shared_cycles", "slowdowns",
                 "_priority_core")

    def __init__(self, num_cores: int, epoch: int = 10_000,
                 interval: Optional[int] = None) -> None:
        super().__init__(num_cores)
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        self.epoch = epoch
        # Default interval: measurement epochs plus an equal shared stretch,
        # structurally matching the paper's 10k/5M at reduced scale.
        self.interval = interval if interval is not None \
            else epoch * (2 * num_cores)
        if self.interval < epoch * (num_cores + 1):
            raise ValueError("interval too short for measurement epochs")
        self._interval_start = 0
        self._epoch_counts = [0] * num_cores
        self._epoch_start = 0
        self._epoch_index = 0
        self._alone_rate: List[float] = [0.0] * num_cores
        self._shared_counts = [0] * num_cores
        self._shared_cycles = 0
        self.slowdowns: List[float] = [1.0] * num_cores
        #: core currently given highest priority (measurement or policy)
        self._priority_core: Optional[int] = 0

    # ------------------------------------------------------------------

    def _advance_clock(self, now: int) -> None:
        while now >= self._epoch_start + self.epoch:
            self._finish_epoch()
        if now >= self._interval_start + self.interval:
            self._finish_interval(now)

    def _finish_epoch(self) -> None:
        end = self._epoch_start + self.epoch
        if self._epoch_index < self.num_cores:
            core = self._epoch_index
            self._alone_rate[core] = self._epoch_counts[core] / self.epoch
        else:
            for core in range(self.num_cores):
                self._shared_counts[core] += self._epoch_counts[core]
            self._shared_cycles += self.epoch
        self._epoch_counts = [0] * self.num_cores
        self._epoch_start = end
        self._epoch_index += 1
        if self._epoch_index < self.num_cores:
            self._priority_core = self._epoch_index
        else:
            self._priority_core = self._policy_priority()

    def _finish_interval(self, now: int) -> None:
        if self._shared_cycles > 0:
            for core in range(self.num_cores):
                shared_rate = self._shared_counts[core] / self._shared_cycles
                alone = self._alone_rate[core]
                if shared_rate > 0 and alone > 0:
                    self.slowdowns[core] = max(1.0, alone / shared_rate)
                else:
                    self.slowdowns[core] = 1.0
        self._interval_start = now
        self._epoch_start = now
        self._epoch_index = 0
        self._epoch_counts = [0] * self.num_cores
        self._shared_counts = [0] * self.num_cores
        self._shared_cycles = 0
        self._priority_core = 0

    def _policy_priority(self) -> Optional[int]:
        """Most-slowed-down application gets priority (fairness goal)."""
        worst = max(range(self.num_cores), key=lambda c: self.slowdowns[c])
        if self.slowdowns[worst] <= 1.0:
            return None
        return worst

    # ------------------------------------------------------------------

    def on_complete(self, request, now) -> None:
        super().on_complete(request, now)
        if 0 <= request.core_id < self.num_cores:
            self._epoch_counts[request.core_id] += 1

    def select(self, queue, now, controller):
        if not queue:
            return None
        self._advance_clock(now)
        if self._priority_core is not None:
            mine = [r for r in queue if r.core_id == self._priority_core]
            if mine:
                return self.row_hit_first(mine, controller)
        return self.row_hit_first(queue, controller)

    @property
    def priority_core(self) -> Optional[int]:
        """Currently prioritised core (measurement rotation or policy)."""
        return self._priority_core
