"""Thread Cluster Memory scheduling [Kim et al., MICRO 2010].

Every quantum, threads are ranked by memory intensity and split into a
*latency-sensitive* cluster (the least intensive threads, up to a
``ClusterThresh`` fraction of total bandwidth -- 2/N per the paper and
Section IV-D's configuration) and a *bandwidth-sensitive* cluster.  The
latency cluster gets strict priority, ordered least-intensive first; the
bandwidth cluster is periodically shuffled so its threads take turns being
prioritised.

Section II-A's critique is observable in this implementation: clustering
is driven by measured request rates, so a high-intensity thread with a
quiet quantum can land in the latency cluster and be unfairly prioritised.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from .base import MemoryScheduler


class TcmScheduler(MemoryScheduler):
    """TCM with periodic re-clustering and bandwidth-cluster shuffling."""

    name = "TCM"

    __slots__ = ("quantum", "shuffle_period", "cluster_thresh", "_rng",
                 "_quantum_end", "_shuffle_end", "_serviced_this_quantum",
                 "_rank", "_latency_cluster", "_bandwidth_cluster")

    def __init__(self, num_cores: int, quantum: int = 20_000,
                 shuffle_period: int = 800,
                 cluster_thresh: Optional[float] = None,
                 seed: int = 7) -> None:
        super().__init__(num_cores)
        if quantum < 1 or shuffle_period < 1:
            raise ValueError("quantum and shuffle_period must be >= 1")
        self.quantum = quantum
        self.shuffle_period = shuffle_period
        #: paper-suggested ClusterThresh = 2/N
        self.cluster_thresh = (cluster_thresh if cluster_thresh is not None
                               else 2.0 / num_cores)
        self._rng = random.Random(seed)
        self._quantum_end = quantum
        self._shuffle_end = shuffle_period
        self._serviced_this_quantum = [0] * num_cores
        #: rank position per core; lower = higher priority
        self._rank: Dict[int, int] = {c: c for c in range(num_cores)}
        self._latency_cluster = set(range(num_cores))
        self._bandwidth_cluster: List[int] = []

    def on_complete(self, request, now) -> None:
        super().on_complete(request, now)
        if 0 <= request.core_id < self.num_cores:
            self._serviced_this_quantum[request.core_id] += 1

    def _recluster(self, now: int) -> None:
        total = sum(self._serviced_this_quantum)
        order = sorted(range(self.num_cores),
                       key=lambda c: self._serviced_this_quantum[c])
        self._latency_cluster = set()
        consumed = 0
        for core in order:
            usage = self._serviced_this_quantum[core]
            if total == 0 or (consumed + usage) <= self.cluster_thresh * total:
                self._latency_cluster.add(core)
                consumed += usage
            else:
                break
        self._bandwidth_cluster = [c for c in order
                                   if c not in self._latency_cluster]
        self._assign_ranks(order)
        self._serviced_this_quantum = [0] * self.num_cores
        self._quantum_end = now + self.quantum

    def _assign_ranks(self, intensity_order: List[int]) -> None:
        """Latency cluster ranked least-intensive-first, then BW cluster."""
        rank = 0
        for core in intensity_order:
            if core in self._latency_cluster:
                self._rank[core] = rank
                rank += 1
        for core in self._bandwidth_cluster:
            self._rank[core] = rank
            rank += 1

    def _shuffle(self, now: int) -> None:
        """Insertion-shuffle of the bandwidth cluster's relative order."""
        if len(self._bandwidth_cluster) > 1:
            self._rng.shuffle(self._bandwidth_cluster)
            base = len(self._latency_cluster)
            for offset, core in enumerate(self._bandwidth_cluster):
                self._rank[core] = base + offset
        self._shuffle_end = now + self.shuffle_period

    def select(self, queue, now, controller):
        if not queue:
            return None
        if now >= self._quantum_end:
            self._recluster(now)
        if now >= self._shuffle_end:
            self._shuffle(now)
        grouped = self.by_core(queue)
        core = min(grouped, key=lambda c: (self._rank.get(c, c), c))
        return self.row_hit_first(grouped[core], controller)

    @property
    def latency_cluster(self) -> set:
        """Cores currently classified latency-sensitive (for tests)."""
        return set(self._latency_cluster)
