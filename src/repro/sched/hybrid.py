"""MITTS + MISE hybrid (Section IV-E).

The hybrid combines per-core MITTS shapers at the source with MISE as the
centralised memory-controller policy ("as MISE performed best on
average").  There is no new mechanism -- the composition is the point: the
shapers police each core's inter-arrival distribution before requests ever
reach the controller, and MISE arbitrates among what remains.  The paper
measures an additional ~4%/5% throughput/fairness gain over MITTS alone,
implying "MITTS complements existing centralized controllers".
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.bins import BinConfig
from ..core.shaper import MittsShaper
from .mise import MiseScheduler


def build_hybrid(num_cores: int,
                 bin_configs: Sequence[BinConfig],
                 epoch: int = 10_000,
                 interval: int = None):
    """Construct the (scheduler, limiters) pair for a MITTS+MISE system.

    Returns a :class:`~repro.sched.mise.MiseScheduler` and one
    :class:`~repro.core.shaper.MittsShaper` per core, ready to pass to
    :class:`~repro.sim.system.SimSystem`.
    """
    if len(bin_configs) != num_cores:
        raise ValueError("one bin configuration per core is required")
    scheduler = MiseScheduler(num_cores, epoch=epoch, interval=interval)
    limiters: List[MittsShaper] = [
        MittsShaper(config,
                    phase=core_id * config.replenish_period() // num_cores)
        for core_id, config in enumerate(bin_configs)]
    return scheduler, limiters
