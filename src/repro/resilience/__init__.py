"""``repro.resilience`` -- checkpoint/resume, starvation detection, chaos.

Long sweeps toward the ROADMAP's production-scale north star must survive
two failure families without recomputing from cycle 0:

* **infrastructure faults** (killed workers, timeouts, corrupted cache
  entries) -- transient, handled by checkpoint/resume
  (:mod:`repro.resilience.checkpoint`) plus the runner's retry machinery;
* **degenerate configurations** (zero-credit or otherwise starving MITTS
  genomes) -- deterministic, detected in simulated time by the
  forward-progress watchdog (:mod:`repro.resilience.watchdog`) and
  reported as a structured :class:`StarvationError` that is scored, not
  retried.

:mod:`repro.resilience.chaos` is the proof: a seeded fault-injection
harness that kills workers mid-job, corrupts cache entries, throws at a
chosen event, and attempts clock skew / duplicate events, asserting the
recovery path fires for every fault class.  Run it via the tests or
``python -m repro.resilience --chaos`` (the chaos module imports the
runner and simulator, so it is loaded lazily -- importing this package
stays cheap for the simulator core).
"""

from .checkpoint import (CHECKPOINT_VERSION, CheckpointError,
                         DEFAULT_CHECKPOINT_INTERVAL, checkpoint_scope,
                         discard_checkpoint, job_checkpoint_path,
                         load_checkpoint, read_checkpoint_meta,
                         run_with_checkpoints, save_checkpoint)
from .watchdog import (ForwardProgressWatchdog, StarvationError,
                       WatchdogConfig)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "ForwardProgressWatchdog",
    "StarvationError",
    "WatchdogConfig",
    "checkpoint_scope",
    "discard_checkpoint",
    "job_checkpoint_path",
    "load_checkpoint",
    "read_checkpoint_meta",
    "run_with_checkpoints",
    "save_checkpoint",
]
