"""Seeded fault-injection harness: prove the recovery paths actually fire.

Robustness code that is never exercised is decoration.  This module
deterministically injects one fault per failure class the resilience
stack claims to handle and asserts the corresponding detection/recovery
mechanism engages:

==================  =====================================================
fault class         recovery path proven
==================  =====================================================
``worker-kill``     ``os._exit`` mid-job breaks the process pool; the
                    runner charges the in-flight attempt, rebuilds the
                    pool, retries, and the sweep still succeeds
``cache-corrupt``   a flipped byte in a stored cache entry fails the
                    integrity digest; the entry is discarded and the
                    value recomputed, never trusted
``event-bomb``      an exception thrown at a chosen simulated cycle kills
                    the run after a periodic checkpoint; resuming from
                    the checkpoint reproduces the undisturbed run
                    fingerprint-for-fingerprint
``clock-skew``      scheduling into the past clamps to ``now`` (never
                    time-travels); a float cycle is rejected by the
                    runtime contracts
``duplicate-event`` the same callback scheduled twice at one cycle runs
                    exactly twice, in FIFO order, identically across runs
``starvation``      a zero-credit shaper raises ``StarvationError``
                    within the watchdog window instead of hanging
``fabric-steal``    a campaign worker dies holding a claim (its lease
                    left dangling, exactly the ``kill -9`` footprint);
                    a second pool steals the job after lease expiry and
                    the merged results database is bit-identical to a
                    serial drain
``fabric-torn-``    result writes fail mid-rename (tmp debris, EIO);
``rename``          verified writes retry until the commit lands,
                    ``fabric doctor`` sweeps the debris, and the
                    database is bit-identical to a clean drain
``fabric-disk-``    ENOSPC raised on claim creates and result writes;
``full``            the drain loop re-polls and the campaign still
                    completes bit-identically once space "returns"
``fabric-stale-``   reads served the previous version of a file (NFS
``read``            attribute-cache lie); the read-back verify detects
                    the stale echo and rewrites until the commit proves
                    durable
``fabric-poison``   a job that deterministically raises is quarantined
                    to the dead-letter directory on its *first* failure
                    (never retried), the campaign terminates
                    ``complete-degraded``, serial and pooled drains are
                    fingerprint-identical, and ``requeue`` makes the
                    job runnable again
``fabric-``         a supervised pool is hard-killed after its first
``supervisor``      claim; the supervisor's liveness probe sees the
                    exit, restarts it with backoff, and the campaign
                    completes bit-identically to a serial drain
==================  =====================================================

Every fault parameter (kill target, corrupted byte, bomb cycle) is drawn
from a ``random.Random(seed)``, so a failing chaos run reproduces exactly
from its seed.  Shipped as a pytest suite (``tests/test_resilience_chaos``)
and a CLI (``python -m repro.resilience --chaos``).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from typing import Callable, List

from ..analysis import contracts
from ..core.bins import BinConfig
from ..core.shaper import MittsShaper
from ..runner import JobSpec, ResultCache, Runner, RunnerConfig
from ..sim.engine import Engine
from ..sim.system import SCALED_MULTI_CONFIG, SimSystem
from ..workloads.mixes import workload_traces
from .checkpoint import read_checkpoint_meta, run_with_checkpoints
from .watchdog import StarvationError, WatchdogConfig


class ChaosFault(RuntimeError):
    """The injected failure itself (thrown by the event bomb)."""


@dataclass(frozen=True)
class ChaosOutcome:
    """Result of one injected fault: did its recovery path engage?"""

    fault: str
    passed: bool
    detail: str


# ----------------------------------------------------------------------
# module-level job functions (workers import these by path)


def chaos_echo(value):
    """Trivial well-behaved job (control group for pool recovery)."""
    return value


def chaos_exit_once(marker_path, value):
    """Kill the worker outright on the first attempt, succeed after.

    ``os._exit`` bypasses all exception handling -- the pool itself
    breaks, which is exactly the fault the runner's rebuild path covers.
    """
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("killed")
        os._exit(23)
    return value


def chaos_poison(value):
    """Deterministic poison: negative values always raise ValueError
    (the runner taxonomy's deterministic lineage), so retrying is
    provably futile -- the quarantine contract under test."""
    if value < 0:
        raise ValueError(f"poison value {value}")
    return value


def chaos_slow_echo(value, delay=0.4):
    """Echo after a short delay -- slow enough that a supervised fleet
    is still mid-campaign when its first casualty is noticed."""
    from ..runner import wallclock

    wallclock.sleep(delay)
    return value


# ----------------------------------------------------------------------
# simulated-system helpers


def _make_system() -> SimSystem:
    """Small deterministic multicore mix (cheap enough to run repeatedly)."""
    return SimSystem(workload_traces(1, seed=11),
                     config=SCALED_MULTI_CONFIG)


class _EventBomb:
    """Callback that raises :class:`ChaosFault` the first time it runs.

    The "first time" latch is a filesystem marker, so the bomb is inert
    on the resumed run (its event is restored from the checkpoint's heap
    and fires again) -- modelling a transient mid-run fault.  Whether
    armed or spent, the callback never touches simulator state, so the
    disturbed-then-resumed run is statistically identical to an
    undisturbed one.
    """

    __slots__ = ("marker_path",)

    def __init__(self, marker_path: str) -> None:
        self.marker_path = marker_path

    def __call__(self) -> None:
        if not os.path.exists(self.marker_path):
            # The marker file IS the fault model: it must survive the
            # checkpoint/restore boundary, which simulator state cannot.
            with open(self.marker_path, "w",  # simlint: disable=SIM011
                      encoding="utf-8") as handle:
                handle.write("detonated")
            raise ChaosFault(f"event bomb detonated "
                             f"(marker {self.marker_path!r})")


class _CycleRecorder:
    """Appends the engine's cycle at each invocation (ordering probes)."""

    __slots__ = ("engine", "fired_at")

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.fired_at: List[int] = []

    def __call__(self) -> None:
        self.fired_at.append(self.engine.now)


# ----------------------------------------------------------------------
# the fault classes


def fault_worker_kill(rng: random.Random, workdir: str) -> ChaosOutcome:
    """Kill one pool worker mid-job; the sweep must still complete."""
    marker = os.path.join(workdir, "kill-marker")
    victim = rng.randrange(3)
    specs = []
    for index in range(3):
        if index == victim:
            specs.append(JobSpec.create(
                f"kill[{index}]", "repro.resilience.chaos:chaos_exit_once",
                marker, index * 10))
        else:
            specs.append(JobSpec.create(
                f"kill[{index}]", "repro.resilience.chaos:chaos_echo",
                index * 10))
    with Runner(RunnerConfig(jobs=2, retries=2, backoff=0.01)) as runner:
        sweep = runner.run(specs)
    values = [sweep[spec.job_id].value for spec in specs]
    attempts = sweep[f"kill[{victim}]"].attempts
    ok = values == [0, 10, 20] and attempts >= 2
    return ChaosOutcome(
        "worker-kill", ok,
        f"victim=kill[{victim}] attempts={attempts} values={values}")


def fault_cache_corruption(rng: random.Random, workdir: str) -> ChaosOutcome:
    """Flip one byte of a stored cache entry; it must be discarded."""
    cache = ResultCache(os.path.join(workdir, "cache"),
                        fingerprint="chaos-fixed")
    spec = JobSpec.create("corrupt", "repro.resilience.chaos:chaos_echo",
                          1234, seed=rng.randrange(1 << 16))
    cache.store(spec, 1234)
    path = cache.entry_path(spec)
    raw = bytearray(path.read_bytes())
    offset = rng.randrange(len(raw))
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))

    hit = cache.load(spec)
    discarded = hit is None and cache.stats.corrupt == 1
    cache.store(spec, 1234)
    recovered = cache.load(spec)
    ok = discarded and recovered is not None and recovered.value == 1234
    return ChaosOutcome(
        "cache-corrupt", ok,
        f"flipped byte {offset}/{len(raw)}; discarded={discarded}, "
        f"recomputed value={getattr(recovered, 'value', None)}")


def fault_event_bomb(rng: random.Random, workdir: str) -> ChaosOutcome:
    """Crash mid-run after a checkpoint; resume must match undisturbed."""
    cycles, interval = 60_000, 20_000
    bomb_cycle = rng.randrange(45_000, 55_000)
    marker = os.path.join(workdir, "bomb-marker")
    checkpoint = os.path.join(workdir, "bomb.ckpt")

    def make_armed() -> SimSystem:
        system = _make_system()
        system.engine.schedule(bomb_cycle, _EventBomb(marker))
        return system

    # Reference: same bomb event, pre-spent marker, uninterrupted run.
    with open(marker, "w", encoding="utf-8") as handle:
        handle.write("pre-spent")
    reference = make_armed()
    reference.run(cycles)
    expected = reference.stats.fingerprint()
    os.unlink(marker)

    detonated = False
    try:
        run_with_checkpoints(make_armed, cycles, path=checkpoint,
                             interval=interval)
    except ChaosFault:
        detonated = True
    if not detonated:
        return ChaosOutcome("event-bomb", False,
                            f"bomb at {bomb_cycle} never detonated")
    resumed_from = read_checkpoint_meta(checkpoint)["cycle"]
    system = run_with_checkpoints(make_armed, cycles, path=checkpoint,
                                  interval=interval)
    ok = (system.stats.fingerprint() == expected
          and 0 < resumed_from < bomb_cycle)
    return ChaosOutcome(
        "event-bomb", ok,
        f"bomb at {bomb_cycle}, resumed from checkpointed cycle "
        f"{resumed_from}, fingerprint match={ok}")


def fault_clock_skew(rng: random.Random, workdir: str) -> ChaosOutcome:
    """Past and float scheduling attempts must be clamped / rejected."""
    engine = Engine()
    recorder = _CycleRecorder(engine)
    target = rng.randrange(2_000, 5_000)
    engine.schedule(target, recorder)
    engine.run(until=target + 1)
    # Attempt to schedule an event in the past: must clamp to now.
    engine.schedule(target - rng.randrange(1, target), recorder)
    engine.run(until=target + 10)
    clamped = recorder.fired_at == [target, target + 1]

    violations: List[str] = []
    with contracts.enabled_scope():
        checked = Engine()
        with contracts.observing(lambda error: violations.append(str(error))):
            try:
                # Deliberate contract violation -- the fault under test.
                checked.schedule(float(target),  # simlint: disable=SIM003
                                 recorder)
                rejected = False
            except contracts.ContractViolation:
                rejected = True
    ok = clamped and rejected and len(violations) == 1
    return ChaosOutcome(
        "clock-skew", ok,
        f"past event clamped={clamped} (fired at {recorder.fired_at}); "
        f"float cycle rejected={rejected}, observed={len(violations)}")


def fault_duplicate_events(rng: random.Random, workdir: str) -> ChaosOutcome:
    """Duplicate same-cycle events run exactly twice, FIFO, repeatably."""
    when = rng.randrange(100, 1_000)

    def burst() -> List[int]:
        engine = Engine()
        recorder = _CycleRecorder(engine)
        engine.schedule(when, recorder)
        engine.schedule(when, recorder)  # the duplicate attempt
        engine.run(until=when + 1)
        return recorder.fired_at

    first, second = burst(), burst()
    ok = first == second == [when, when]
    return ChaosOutcome(
        "duplicate-event", ok,
        f"fired at {first} vs {second} (want [{when}, {when}] twice)")


def fault_starvation(rng: random.Random, workdir: str) -> ChaosOutcome:
    """A zero-credit shaper must raise within the watchdog window."""
    traces = workload_traces(1, seed=11)
    limiters = [MittsShaper(BinConfig.from_credits([0] * 10))
                for _ in traces]
    system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                       limiters=limiters)
    config = WatchdogConfig(check_period=1_000, stall_threshold=8_000)
    system.attach_watchdog(config)
    try:
        system.run(60_000)
    except StarvationError as exc:
        cycle = exc.diagnostics["cycle"]
        window = config.stall_threshold + 2 * config.check_period
        shapers = [core["shaper"]["stall_forever"]
                   for core in exc.diagnostics["cores"]]
        ok = cycle <= window and all(shapers)
        return ChaosOutcome(
            "starvation", ok,
            f"raised at cycle {cycle} (window {window}); "
            f"stall_forever={shapers}")
    return ChaosOutcome("starvation", False,
                        "zero-credit run completed without StarvationError")


def fault_fabric_steal(rng: random.Random, workdir: str) -> ChaosOutcome:
    """A dead campaign worker's claim must be stolen, not waited on.

    The victim is modelled by its exact post-``kill -9`` footprint: a
    claim file with a short lease that is never renewed or completed.
    A live pool must sit out the lease, steal the job, finish the
    campaign, and merge a database bit-identical to a serial drain.
    """
    from ..fabric import (CampaignQueue, ResultsDb, parse_manifest,
                          run_campaign_serial, work_campaign)

    manifest = parse_manifest({
        "name": "chaos-steal",
        "fn": "repro.resilience.chaos:chaos_echo",
        "grid": {"value": [rng.randrange(1 << 16) for _ in range(4)]},
    })
    serial_queue = CampaignQueue.submit(
        os.path.join(workdir, "serial"), manifest)
    run_campaign_serial(serial_queue)

    fabric_root = os.path.join(workdir, "fabric")
    fabric_queue = CampaignQueue.submit(fabric_root, manifest)
    victim_claim = fabric_queue.claim_next("chaos-victim",
                                           lease_seconds=0.5)
    if victim_claim is None:
        return ChaosOutcome("fabric-steal", False,
                            "victim could not claim a job")
    counters = work_campaign(fabric_queue, worker="chaos-survivor",
                             jobs=1, pool=False, lease_seconds=0.5,
                             poll_seconds=0.05)

    with ResultsDb(os.path.join(workdir, "serial.sqlite")) as db:
        db.merge_queue(serial_queue)
        serial_print = db.fingerprint(serial_queue.campaign_id)
    with ResultsDb(os.path.join(workdir, "fabric.sqlite")) as db:
        db.merge_queue(fabric_queue)
        fabric_print = db.fingerprint(fabric_queue.campaign_id)

    ok = (counters["stolen"] >= 1 and counters["failed"] == 0
          and fabric_queue.is_drained()
          and serial_print == fabric_print)
    return ChaosOutcome(
        "fabric-steal", ok,
        f"victim held job {victim_claim.index}; survivor executed "
        f"{counters['executed']} ({counters['stolen']} stolen); "
        f"fingerprint match={serial_print == fabric_print}")


def _merge_print(db_path: str, queue) -> str:
    """Merge one queue into a fresh database; return its fingerprint."""
    from ..fabric import ResultsDb

    with ResultsDb(db_path) as db:
        db.merge_queue(queue)
        return db.fingerprint(queue.campaign_id)


def fault_fabric_torn_rename(rng: random.Random,
                             workdir: str) -> ChaosOutcome:
    """Result renames tear mid-commit; verified writes must converge.

    The first two write attempts fail like a crash between tmp-write
    and rename (debris left, EIO raised); the campaign must still drain
    bit-identically to a clean serial run, and ``fabric doctor`` must
    sweep the debris.
    """
    from ..fabric import (CampaignQueue, FaultPlan, FaultyFS, diagnose,
                          parse_manifest, run_campaign_serial)

    manifest = parse_manifest({
        "name": "chaos-torn",
        "fn": "repro.resilience.chaos:chaos_echo",
        "grid": {"value": [rng.randrange(1 << 16) for _ in range(4)]},
    })
    serial_queue = CampaignQueue.submit(
        os.path.join(workdir, "serial"), manifest)
    run_campaign_serial(serial_queue)
    serial_print = _merge_print(os.path.join(workdir, "serial.sqlite"),
                                serial_queue)

    chaos_queue = CampaignQueue.submit(
        os.path.join(workdir, "chaos"), manifest)
    shim = FaultyFS(FaultPlan(seed=rng.randrange(1 << 16), rate=1.0,
                              faults=("torn-rename",), limit=2),
                    inner=chaos_queue.storage)
    chaos_queue.storage = shim
    counters = run_campaign_serial(chaos_queue, worker="chaos-torn")
    chaos_print = _merge_print(os.path.join(workdir, "chaos.sqlite"),
                               chaos_queue)

    # Triage with real storage: the debris must be found and swept.
    clean_queue = CampaignQueue(os.path.join(workdir, "chaos"),
                                chaos_queue.campaign_id)
    report = diagnose(clean_queue, repair=True)
    debris = report["by_category"].get("debris", 0)
    after = diagnose(clean_queue)
    ok = (counters["failed"] == 0 and chaos_queue.is_drained()
          and serial_print == chaos_print
          and shim.injected.get("torn-rename", 0) == 2
          and debris >= 1 and after["clean"])
    return ChaosOutcome(
        "fabric-torn-rename", ok,
        f"{shim.injected.get('torn-rename', 0)} torn rename(s); "
        f"fingerprint match={serial_print == chaos_print}; "
        f"doctor swept {debris} debris file(s), clean={after['clean']}")


def fault_fabric_disk_full(rng: random.Random,
                           workdir: str) -> ChaosOutcome:
    """ENOSPC on claims and result writes; the drain must ride it out.

    The injection budget (``limit=4``) is strictly below the verified
    write's retry budget, so the campaign provably terminates once the
    disk "heals" -- the recovery claim is that no ENOSPC burst below
    that budget can cost completeness or bits.
    """
    from ..fabric import (CampaignQueue, FaultPlan, FaultyFS,
                          parse_manifest, run_campaign_serial,
                          work_campaign)

    manifest = parse_manifest({
        "name": "chaos-enospc",
        "fn": "repro.resilience.chaos:chaos_echo",
        "grid": {"value": [rng.randrange(1 << 16) for _ in range(6)]},
    })
    serial_queue = CampaignQueue.submit(
        os.path.join(workdir, "serial"), manifest)
    run_campaign_serial(serial_queue)
    serial_print = _merge_print(os.path.join(workdir, "serial.sqlite"),
                                serial_queue)

    chaos_queue = CampaignQueue.submit(
        os.path.join(workdir, "chaos"), manifest)
    shim = FaultyFS(FaultPlan(seed=rng.randrange(1 << 16), rate=0.6,
                              faults=("enospc",), limit=4),
                    inner=chaos_queue.storage)
    chaos_queue.storage = shim
    counters = work_campaign(chaos_queue, worker="chaos-enospc", jobs=1,
                             pool=False, lease_seconds=3600.0,
                             poll_seconds=0.05)
    chaos_print = _merge_print(os.path.join(workdir, "chaos.sqlite"),
                               chaos_queue)
    ok = (counters["failed"] == 0 and chaos_queue.is_drained()
          and serial_print == chaos_print
          and shim.injected.get("enospc", 0) >= 1)
    return ChaosOutcome(
        "fabric-disk-full", ok,
        f"{shim.injected.get('enospc', 0)} ENOSPC injection(s) over "
        f"{shim.operations} op(s); drained={chaos_queue.is_drained()}; "
        f"fingerprint match={serial_print == chaos_print}")


def fault_fabric_stale_read(rng: random.Random,
                            workdir: str) -> ChaosOutcome:
    """Reads served yesterday's bytes; the read-back verify must catch it.

    First a whole campaign drains behind a stale-read shim
    (bit-identical to serial), then the lie is staged directly: a file
    with a committed previous version is rewritten while the next read
    returns the old content -- the verified write must detect the stale
    echo and converge on the new bytes instead of declaring success.
    """
    from ..fabric import (CampaignQueue, FaultPlan, FaultyFS,
                          parse_manifest, run_campaign_serial)

    manifest = parse_manifest({
        "name": "chaos-stale",
        "fn": "repro.resilience.chaos:chaos_echo",
        "grid": {"value": [rng.randrange(1 << 16) for _ in range(4)]},
    })
    serial_queue = CampaignQueue.submit(
        os.path.join(workdir, "serial"), manifest)
    run_campaign_serial(serial_queue)
    serial_print = _merge_print(os.path.join(workdir, "serial.sqlite"),
                                serial_queue)

    chaos_queue = CampaignQueue.submit(
        os.path.join(workdir, "chaos"), manifest)
    drain_shim = FaultyFS(FaultPlan(seed=rng.randrange(1 << 16),
                                    rate=0.5, faults=("stale-read",)),
                          inner=chaos_queue.storage)
    chaos_queue.storage = drain_shim
    counters = run_campaign_serial(chaos_queue, worker="chaos-stale")
    chaos_print = _merge_print(os.path.join(workdir, "chaos.sqlite"),
                               chaos_queue)

    # Stage the attribute-cache lie on a rewritten file.
    probe_shim = FaultyFS(FaultPlan(seed=rng.randrange(1 << 16),
                                    rate=1.0, faults=("stale-read",),
                                    limit=1))
    chaos_queue.storage = probe_shim
    probe = chaos_queue.directory / "stale-probe.json"
    probe_shim.write_atomic(probe, '{"version": 1}')
    chaos_queue._write_verified(probe, {"version": 2}, "result")
    committed = probe.read_text(encoding="utf-8")
    converged = json.loads(committed) == {"version": 2}
    ok = (counters["failed"] == 0 and chaos_queue.is_drained()
          and serial_print == chaos_print
          and probe_shim.injected.get("stale-read", 0) == 1
          and converged)
    return ChaosOutcome(
        "fabric-stale-read", ok,
        f"drain match={serial_print == chaos_print} "
        f"({drain_shim.injected.get('stale-read', 0)} stale drain "
        f"read(s)); staged lie detected and "
        f"converged={converged}")


def fault_fabric_poison(rng: random.Random, workdir: str) -> ChaosOutcome:
    """A deterministic crasher must dead-letter on first failure.

    One grid value is poison (always raises ValueError).  Serial and
    pooled drains must both terminate ``complete-degraded`` with
    exactly the poison job quarantined after a *single* attempt, with
    identical database fingerprints; ``requeue`` must return the job to
    the runnable pool, and re-draining must re-quarantine it without
    disturbing the fingerprint.
    """
    from ..fabric import (CampaignQueue, ResultsDb, parse_manifest,
                          run_campaign_serial, work_campaign)
    from ..fabric.queue import DISPOSITION_DEGRADED, REASON_DETERMINISTIC

    values = [rng.randrange(1, 1 << 16) for _ in range(4)]
    poison_at = rng.randrange(len(values))
    values[poison_at] = -values[poison_at]
    manifest = parse_manifest({
        "name": "chaos-poison",
        "fn": "repro.resilience.chaos:chaos_poison",
        "grid": {"value": values},
    })

    serial_queue = CampaignQueue.submit(
        os.path.join(workdir, "serial"), manifest)
    serial_counters = run_campaign_serial(serial_queue)
    serial_print = _merge_print(os.path.join(workdir, "serial.sqlite"),
                                serial_queue)

    fabric_queue = CampaignQueue.submit(
        os.path.join(workdir, "fabric"), manifest)
    fabric_counters = work_campaign(fabric_queue, worker="chaos-poison",
                                    jobs=2, pool=True,
                                    wait_for_drain=True)
    fabric_print = _merge_print(os.path.join(workdir, "fabric.sqlite"),
                                fabric_queue)

    poison_record = fabric_queue.load_result(poison_at) or {}
    first_failure_only = poison_record.get("attempts") == 1

    # The escape hatch: requeue, then re-drain re-quarantines.
    diagnosis = fabric_queue.requeue(poison_at)
    requeued_runnable = not fabric_queue.is_drained()
    work_campaign(fabric_queue, worker="chaos-poison-2", jobs=1,
                  pool=False, wait_for_drain=True)
    with ResultsDb(os.path.join(workdir, "fabric2.sqlite")) as db:
        db.merge_queue(fabric_queue)
        requeued_print = db.fingerprint(fabric_queue.campaign_id)

    ok = (serial_counters["disposition"] == DISPOSITION_DEGRADED
          and fabric_counters["disposition"] == DISPOSITION_DEGRADED
          and serial_queue.dead_letter_indices() == [poison_at]
          and fabric_queue.dead_letter_indices() == [poison_at]
          and first_failure_only
          and diagnosis.reason == REASON_DETERMINISTIC
          and requeued_runnable
          and serial_print == fabric_print == requeued_print)
    return ChaosOutcome(
        "fabric-poison", ok,
        f"poison at index {poison_at}; attempts="
        f"{poison_record.get('attempts')}; dead-letter "
        f"{fabric_queue.dead_letter_indices()}; requeue reason="
        f"{diagnosis.reason}; fingerprints match="
        f"{serial_print == fabric_print == requeued_print}")


def fault_fabric_supervisor(rng: random.Random,
                            workdir: str) -> ChaosOutcome:
    """A supervised pool dies; the liveness probe must restart it.

    Pool 0's first incarnation hard-exits after its first claim (the
    ``kill -9`` footprint).  The supervisor must notice the exit,
    restart the slot with backoff, and the fleet must finish the
    campaign bit-identically to a serial drain.
    """
    from ..fabric import (CampaignQueue, parse_manifest,
                          run_campaign_serial, run_supervisor)

    manifest = parse_manifest({
        "name": "chaos-fleet",
        "fn": "repro.resilience.chaos:chaos_slow_echo",
        "grid": {"value": [rng.randrange(1 << 16) for _ in range(6)]},
    })
    serial_queue = CampaignQueue.submit(
        os.path.join(workdir, "serial"), manifest)
    run_campaign_serial(serial_queue)
    serial_print = _merge_print(os.path.join(workdir, "serial.sqlite"),
                                serial_queue)

    fleet_queue = CampaignQueue.submit(
        os.path.join(workdir, "fleet"), manifest)
    report = run_supervisor(
        fleet_queue, pools=2, jobs=1, lease_seconds=2.0,
        seed=rng.randrange(1 << 16), backoff_seconds=0.2,
        first_spawn_extra=("--die-after-claims", "1"),
        timeout=120.0, echo=lambda *_args: None)
    fleet_print = _merge_print(os.path.join(workdir, "fleet.sqlite"),
                               fleet_queue)
    ok = (report["disposition"] == "complete"
          and report["restarts"] >= 1
          and 137 in report["exit_codes"]["0"]
          and fleet_queue.is_drained()
          and serial_print == fleet_print)
    return ChaosOutcome(
        "fabric-supervisor", ok,
        f"disposition={report['disposition']}, "
        f"restarts={report['restarts']}, pool-0 exits="
        f"{report['exit_codes']['0']}; fingerprint "
        f"match={serial_print == fleet_print}")


FAULTS: List[Callable[[random.Random, str], ChaosOutcome]] = [
    fault_worker_kill,
    fault_cache_corruption,
    fault_event_bomb,
    fault_clock_skew,
    fault_duplicate_events,
    fault_starvation,
    fault_fabric_steal,
    fault_fabric_torn_rename,
    fault_fabric_disk_full,
    fault_fabric_stale_read,
    fault_fabric_poison,
    fault_fabric_supervisor,
]


def run_chaos_suite(seed: int, workdir: str) -> List[ChaosOutcome]:
    """Run every fault class with parameters drawn from ``seed``.

    A fault function that *itself* crashes (as opposed to detecting a
    missed recovery) is reported as a failed outcome, not an aborted
    suite -- the harness must be more robust than the code it attacks.
    """
    outcomes: List[ChaosOutcome] = []
    for fault in FAULTS:
        rng = random.Random((seed, fault.__name__).__repr__())
        fault_dir = os.path.join(workdir, fault.__name__)
        os.makedirs(fault_dir, exist_ok=True)
        try:
            outcomes.append(fault(rng, fault_dir))
        except Exception as exc:
            outcomes.append(ChaosOutcome(
                fault.__name__.replace("fault_", "").replace("_", "-"),
                False, f"harness error: {type(exc).__name__}: {exc}"))
    return outcomes
