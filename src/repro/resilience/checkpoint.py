"""Checkpoint/restore for a live :class:`~repro.sim.system.SimSystem`.

A checkpoint is the *entire* simulator object graph -- event heap,
core/cache/LLC/MC/DRAM state, shapers and credit counters, statistics,
and the per-system :class:`~repro.sim.request.RequestIdAllocator` --
pickled at a cycle boundary (between ``system.run`` calls, never
mid-event).  Whole-graph serialisation is what makes resume *bit-exact*:
there is no hand-written save/restore list to fall out of sync with a new
component, and the golden-fingerprint tests prove a resumed run
reproduces an uninterrupted one hash-for-hash
(``tests/test_resilience_checkpoint.py``).

On-disk format (versioned + checksummed, modelled on the result cache)::

    repro-checkpoint-v1\n
    <sha256 hex of meta+body>\n
    <one-line JSON meta: version, cycle, cores, pending_events>\n
    <pickle body>

Writes are atomic (temp file + ``os.replace``), so a reader can only ever
observe a complete checkpoint; a truncated or bit-rotted file fails the
digest and raises :class:`CheckpointError` -- callers (the runner, the
chaos suite) treat that as "no checkpoint" and recompute from cycle 0.

Two restore caveats, both behaviour-preserving:

* the engine re-captures the contracts flag at load time, so a checkpoint
  saved with contracts off resumes checked under ``REPRO_CONTRACTS=1``
  (and vice versa);
* callbacks bound via :func:`repro.analysis.contracts.hot_bind` restore
  as whatever variant was bound at construction time -- the decorated and
  raw variants are observationally identical, so fingerprints agree.

This module also hosts the *ambient job checkpoint path*: the runner
assigns each job a deterministic checkpoint file (keyed by spec hash) and
publishes it here; simulation entry points that opt into periodic
checkpointing call :func:`run_with_checkpoints`, which picks the path up
without threading it through every call signature.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from ..analysis import contracts

#: bump when the on-disk layout (not the pickled schema) changes
CHECKPOINT_VERSION = 1
_MAGIC = b"repro-checkpoint-v1\n"

#: default cycles between periodic checkpoints in run_with_checkpoints
DEFAULT_CHECKPOINT_INTERVAL = 50_000


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or trusted."""


# ----------------------------------------------------------------------
# save / load


def save_checkpoint(system, path) -> None:
    """Atomically serialise ``system`` to ``path``.

    Call between ``system.run`` invocations (at a cycle boundary): the
    event heap is consistent there, and resuming replays the remaining
    events in exactly the order the uninterrupted run would have.
    """
    try:
        body = pickle.dumps(system, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        # Most commonly an unpicklable workload iterator (a generator
        # trace); surface *what* blocked the checkpoint, not a bare
        # pickle traceback deep inside the object graph.
        raise CheckpointError(
            f"system is not checkpointable: {type(exc).__name__}: {exc}"
        ) from exc
    meta = json.dumps(
        {"version": CHECKPOINT_VERSION,
         "cycle": system.engine.now,
         "cores": len(system.cores),
         "pending_events": system.engine.pending_events},
        sort_keys=True, separators=(",", ":")).encode("ascii")
    digest = hashlib.sha256(meta + b"\n" + body).hexdigest().encode("ascii")

    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(_MAGIC + digest + b"\n" + meta + b"\n" + body)
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path!r}: {exc}"
                              ) from exc


def _parse(raw: bytes, path: str):
    if not raw.startswith(_MAGIC):
        raise CheckpointError(f"{path!r} is not a repro checkpoint "
                              f"(bad magic)")
    rest = raw[len(_MAGIC):]
    digest, separator, payload = rest.partition(b"\n")
    if not separator:
        raise CheckpointError(f"{path!r} is truncated (no digest line)")
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        raise CheckpointError(f"{path!r} failed its integrity check "
                              f"(truncated or corrupted)")
    meta_line, separator, body = payload.partition(b"\n")
    if not separator:
        raise CheckpointError(f"{path!r} is truncated (no meta line)")
    try:
        meta = json.loads(meta_line)
    except ValueError as exc:
        raise CheckpointError(f"{path!r} has unreadable metadata: {exc}"
                              ) from exc
    version = meta.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path!r} is checkpoint version {version!r}; this build "
            f"reads version {CHECKPOINT_VERSION}")
    return meta, body


def read_checkpoint_meta(path) -> dict:
    """The checkpoint's metadata (version, cycle, cores, pending_events)
    without unpickling the body -- cheap enough for progress reporting."""
    path = os.fspath(path)
    try:
        raw = open(path, "rb").read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}"
                              ) from exc
    meta, _body = _parse(raw, path)
    return meta


def load_checkpoint(path):
    """Restore a system saved with :func:`save_checkpoint`.

    Verifies magic, version, and integrity digest before unpickling, and
    refreshes the engine's captured contracts flag so the resumed run
    honours the *current* ``REPRO_CONTRACTS`` setting.
    """
    path = os.fspath(path)
    try:
        raw = open(path, "rb").read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}"
                              ) from exc
    meta, body = _parse(raw, path)
    try:
        system = pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(
            f"{path!r} passed its digest but failed to unpickle "
            f"({type(exc).__name__}: {exc}); was it written by an "
            f"incompatible source tree?") from exc
    if system.engine.now != meta.get("cycle"):
        raise CheckpointError(
            f"{path!r} metadata says cycle {meta.get('cycle')} but the "
            f"restored engine is at {system.engine.now}")
    # The engine captures the contracts flag at construction; a restored
    # engine must reflect the *current* process's setting instead.
    system.engine._contracts = contracts.is_enabled()
    return system


def discard_checkpoint(path) -> None:
    """Best-effort removal of a checkpoint that is no longer needed."""
    if path is None:
        return
    try:
        os.unlink(os.fspath(path))
    except OSError:
        # Never written, already cleaned up, or unwritable directory --
        # in every case the job's result is already safe.
        return


# ----------------------------------------------------------------------
# ambient per-job checkpoint path (set by the runner, read by jobs)

_job_checkpoint_path: Optional[str] = None


def job_checkpoint_path() -> Optional[str]:
    """The checkpoint file assigned to the currently executing job, if
    the runner was configured with a checkpoint directory."""
    return _job_checkpoint_path


@contextmanager
def checkpoint_scope(path: Optional[str]) -> Iterator[None]:
    """Publish ``path`` as the ambient job checkpoint for a block.

    Used by the runner's worker (and inline path) around each job call;
    ``None`` is allowed and simply leaves the ambient path empty.
    """
    global _job_checkpoint_path
    previous = _job_checkpoint_path
    _job_checkpoint_path = path
    try:
        yield
    finally:
        _job_checkpoint_path = previous


# ----------------------------------------------------------------------
# periodic checkpointing driver


def run_with_checkpoints(make_system: Callable[[], object], cycles: int,
                         path: Optional[str] = None,
                         interval: int = DEFAULT_CHECKPOINT_INTERVAL):
    """Run a simulation to absolute cycle ``cycles`` with periodic saves.

    If ``path`` (default: the ambient :func:`job_checkpoint_path`) holds a
    valid checkpoint, the run resumes from it instead of calling
    ``make_system``; a corrupt or version-mismatched file is discarded
    and the run restarts from cycle 0.  The system is saved every
    ``interval`` simulated cycles, so a killed worker loses at most one
    interval of work.  Chunked execution is bit-identical to a single
    ``run(cycles)`` call: the engine's horizon is exclusive, so repeated
    runs with increasing horizons never execute an event twice.

    Returns the finished system (the checkpoint file, if any, is left for
    the caller -- the runner's worker deletes it on job success).
    """
    if interval < 1:
        raise ValueError("interval must be >= 1")
    if path is None:
        path = job_checkpoint_path()

    system = None
    if path is not None and os.path.exists(path):
        try:
            system = load_checkpoint(path)
        except CheckpointError:
            discard_checkpoint(path)
    if system is None:
        system = make_system()

    while system.engine.now < cycles:
        chunk = min(interval, cycles - system.engine.now)
        system.run(chunk)
        if path is not None and system.engine.now < cycles:
            save_checkpoint(system, path)
    return system
