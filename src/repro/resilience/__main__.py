"""CLI entry point: ``python -m repro.resilience``.

Two subcommands, both exiting nonzero on any failure so CI can gate on
them directly:

``--chaos``
    Run the seeded fault-injection suite (:mod:`repro.resilience.chaos`)
    in a temporary directory and print one PASS/FAIL line per fault
    class.  ``--seed`` reproduces an exact failing run.

``--selfcheck``
    Checkpoint a small simulation mid-run, reload it, and verify the
    resumed run's fingerprint matches an uninterrupted one -- a fast
    smoke of the save/load path alone.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile


def _selfcheck() -> int:
    from ..sim.system import SCALED_MULTI_CONFIG, SimSystem
    from ..workloads.mixes import workload_traces
    from .checkpoint import (discard_checkpoint, load_checkpoint,
                             read_checkpoint_meta, save_checkpoint)

    cycles, split = 40_000, 17_000

    def make_system() -> SimSystem:
        return SimSystem(workload_traces(1, seed=11),
                         config=SCALED_MULTI_CONFIG)

    reference = make_system()
    reference.run(cycles)
    expected = reference.stats.fingerprint()

    with tempfile.TemporaryDirectory(prefix="repro-selfcheck-") as workdir:
        path = os.path.join(workdir, "selfcheck.ckpt")
        system = make_system()
        system.run(split)
        save_checkpoint(system, path)
        meta = read_checkpoint_meta(path)
        resumed = load_checkpoint(path)
        resumed.run(cycles - split)  # SimSystem.run is relative
        actual = resumed.stats.fingerprint()
        discard_checkpoint(path)

    ok = actual == expected and meta["cycle"] == split
    print(f"checkpoint selfcheck: saved at cycle {meta['cycle']}, "
          f"resumed to {cycles}, fingerprint "
          f"{'matches' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _chaos(seed: int) -> int:
    from .chaos import run_chaos_suite

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        outcomes = run_chaos_suite(seed, workdir)
    failed = [outcome for outcome in outcomes if not outcome.passed]
    for outcome in outcomes:
        status = "PASS" if outcome.passed else "FAIL"
        print(f"[{status}] {outcome.fault}: {outcome.detail}")
    print(f"chaos suite (seed {seed}): "
          f"{len(outcomes) - len(failed)}/{len(outcomes)} fault classes "
          f"recovered")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="fault-injection and checkpoint smoke tests")
    parser.add_argument("--chaos", action="store_true",
                        help="run the seeded fault-injection suite")
    parser.add_argument("--selfcheck", action="store_true",
                        help="checkpoint/resume round-trip smoke test")
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos suite seed (default: 7)")
    args = parser.parse_args(argv)
    if not (args.chaos or args.selfcheck):
        parser.error("nothing to do: pass --chaos and/or --selfcheck")
    status = 0
    if args.selfcheck:
        status = max(status, _selfcheck())
    if args.chaos:
        status = max(status, _chaos(args.seed))
    return status


if __name__ == "__main__":
    sys.exit(main())
