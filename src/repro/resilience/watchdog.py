"""Forward-progress watchdog: detect starvation instead of hanging.

MITTS shaping is starvation-prone by construction: a bin configuration
whose credits never cover a core's inter-arrival profile stalls that core
until replenishment, and a degenerate (zero-credit) configuration stalls
it forever.  Before this module, such a configuration surfaced only as a
wall-clock timeout that threw the whole simulation away.  The watchdog
turns the hang into a *structured, deterministic* failure: a cheap
in-engine monitor that checks per-core retire progress and
memory-controller dequeue progress every ``check_period`` cycles and
raises :class:`StarvationError` -- carrying a full diagnostic snapshot --
once a core with pending memory work has made no progress for
``stall_threshold`` cycles.

The watchdog is an *observer*: its periodic events read simulator state
and never mutate it, so attaching one cannot change simulation results
(extra events only consume sequence numbers; the relative order of all
other events is preserved).  This is pinned against the golden
fingerprints by ``tests/test_resilience_watchdog.py``.

Because the check runs in simulated time, the verdict is deterministic:
the same configuration starves at the same cycle on every run, which is
why the runner treats :class:`StarvationError` as non-retryable (see
``repro.runner.engine``) and the GA scores it as a penalized fitness
instead of re-simulating (``repro.tuning.objectives``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class StarvationError(RuntimeError):
    """A simulated core (or the memory controller) stopped making progress.

    ``diagnostics`` is a plain-data snapshot taken at detection time:
    per-core stall ages, shaper bin/credit state, and the memory
    controller's queue -- everything needed to explain *why* the
    configuration starved without re-running the simulation.
    """

    def __init__(self, message: str, diagnostics: Optional[dict] = None):
        super().__init__(message)
        self.diagnostics = diagnostics if diagnostics is not None else {}

    def __reduce__(self):
        # Keep the diagnostics attached across pickling (process pools).
        return (type(self), (self.args[0], self.diagnostics))


@dataclass(frozen=True, slots=True)
class WatchdogConfig:
    """Forward-progress thresholds, in simulated cycles.

    ``stall_threshold`` must comfortably exceed the longest *legitimate*
    stall: a populated bin configuration always progresses within one
    replenishment period (aging makes any populated bin reachable), and
    periods under the paper's 10x10-cycle geometry are a few thousand
    cycles at most.  The default leaves an order of magnitude of slack.
    """

    #: how often the watchdog samples progress counters
    check_period: int = 5_000
    #: cycles without progress (while work is pending) that count as starved
    stall_threshold: int = 40_000

    def __post_init__(self) -> None:
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")
        if self.stall_threshold < self.check_period:
            raise ValueError("stall_threshold must be >= check_period")


class ForwardProgressWatchdog:
    """Periodic in-engine monitor of retire and MC-dequeue progress.

    Attach via :meth:`repro.sim.system.SimSystem.attach_watchdog`.  The
    watchdog travels with the system through checkpoints (it is part of
    the pickled object graph and its pending check event sits in the
    event heap), so a resumed run keeps the same protection.
    """

    __slots__ = ("system", "config", "_active", "_last_retired",
                 "_stall_since", "_last_dispatched", "_mc_stall_since")

    def __init__(self, system, config: Optional[WatchdogConfig] = None):
        self.system = system
        self.config = config if config is not None else WatchdogConfig()
        self._active = False
        self._last_retired: List[int] = []
        self._stall_since: List[int] = []
        self._last_dispatched = 0
        self._mc_stall_since = 0

    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Baseline the progress counters and schedule the first check."""
        engine = self.system.engine
        now = engine.now
        self._active = True
        self._last_retired = list(self.system.stats.progress_vector())
        self._stall_since = [now] * len(self._last_retired)
        self._last_dispatched = self.system.mc.dispatched
        self._mc_stall_since = now
        engine.schedule_in(self.config.check_period, self._check)

    def detach(self) -> None:
        """Stop monitoring; the pending check becomes a no-op."""
        self._active = False

    # ------------------------------------------------------------------

    def _check(self) -> None:
        """One watchdog tick: read-only except for the watchdog's own
        bookkeeping, so simulation results are unaffected."""
        if not self._active:
            return
        system = self.system
        engine = system.engine
        now = engine.now
        threshold = self.config.stall_threshold

        starved_cores: List[int] = []
        retired = system.stats.progress_vector()
        for core_id, count in enumerate(retired):
            if count != self._last_retired[core_id]:
                self._last_retired[core_id] = count
                self._stall_since[core_id] = now
                continue
            # No retires since the last sample: only suspicious while the
            # core actually has memory work pending (a drained trace or a
            # compute-heavy phase is legitimate quiet).
            pending = (system.ports[core_id].occupancy > 0
                       or len(system.cores[core_id].outstanding) > 0)
            if pending and now - self._stall_since[core_id] >= threshold:
                starved_cores.append(core_id)

        mc = system.mc
        mc_starved = False
        if mc.dispatched != self._last_dispatched:
            self._last_dispatched = mc.dispatched
            self._mc_stall_since = now
        elif (len(mc.queue) + len(mc.overflow) > 0
              and now - self._mc_stall_since >= threshold):
            mc_starved = True

        if starved_cores or mc_starved:
            raise StarvationError(self._message(starved_cores, mc_starved,
                                                now),
                                  diagnostics=self.snapshot())
        engine.schedule_in(self.config.check_period, self._check)

    def _message(self, starved_cores: List[int], mc_starved: bool,
                 now: int) -> str:
        parts = []
        if starved_cores:
            ages = [now - self._stall_since[core_id]
                    for core_id in starved_cores]
            parts.append(f"core(s) {starved_cores} retired nothing for "
                         f"{max(ages)} cycles with memory work pending")
        if mc_starved:
            parts.append(f"memory controller dispatched nothing for "
                         f"{now - self._mc_stall_since} cycles with a "
                         f"non-empty queue")
        return (f"starvation detected at cycle {now}: "
                + "; ".join(parts))

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data diagnostic snapshot of everything starvation-relevant."""
        system = self.system
        now = system.engine.now
        cores = []
        for core_id, stats in enumerate(system.stats.cores):
            port = system.ports[core_id]
            limiter = port.limiter
            diagnostics = getattr(limiter, "diagnostics", None)
            cores.append({
                "core_id": core_id,
                "retired": stats.retired,
                "stall_age": now - self._stall_since[core_id],
                "port_occupancy": port.occupancy,
                "outstanding_misses": len(system.cores[core_id].outstanding),
                "shaper": diagnostics() if diagnostics is not None else None,
            })
        mc = system.mc
        return {
            "cycle": now,
            "cores": cores,
            "mc": {
                "queue_depth": len(mc.queue),
                "overflow_depth": len(mc.overflow),
                "inflight": mc._inflight,
                "dispatched": mc.dispatched,
                "stall_age": now - self._mc_stall_since,
            },
        }
