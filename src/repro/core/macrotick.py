"""Macro-tick shaper replenishment: one vectorized step per ``T_r`` window.

The heap kernel replenishes lazily: every shaper applies its
:class:`~repro.core.replenish.ResetReplenisher` clock inside
``earliest_issue``/``issue`` calls, so a system with N shapers performs N
independent catch-up computations scattered through the window.  MITTS
itself is epoch-structured -- hardware resets every bin register at each
``T_r`` boundary (Algorithm 1) -- and that maps onto a single batched
update: at each common boundary, advance *every* shaper one window in one
``np.minimum(counts + caps, caps)`` over the (cores x bins) credit matrix.

**Equivalence argument** (why the pump is bit-neutral): for the reset
policy, ``apply_until(state, t)`` at or past a boundary performs
``state.replenish()`` (counts := K) and advances the clock past ``t``;
crossing several boundaries collapses into one reset because a reset is
idempotent.  Every shaper decision (``earliest_issue``, ``issue``) applies
the clock *before* reading credits, and method-2 refunds saturate at ``K``,
so eagerly performing the boundary reset at the boundary cycle instead of
at the next decision point yields the same counter values at every decision
point -- the only observable difference is raw mid-window introspection of
``state.counts`` between a boundary and the first decision after it, which
no simulated behaviour consumes.  The pump therefore fires exactly at the
common boundary, resets the whole matrix, and advances every replenisher
clock by one period; shapers whose clock was already advanced lazily in the
same window are recognised and skipped.

The pump attaches only when the configuration is provably eligible: every
port holds a :class:`~repro.core.shaper.MittsShaper` using hybrid method 2
with a plain :class:`~repro.core.replenish.ResetReplenisher`, and all
shapers share one period and one (phase-aligned) next boundary.  Staggered
phases (the anti-lockstep configuration) have no common boundary, so they
keep the lazy path.  Eligibility is re-validated at every tick: the online
tuner may swap limiters mid-run (``set_limiter``/``reconfigure``), and on
any mismatch the pump simply goes dormant -- lazy application is always
correct, so a dormant pump never breaks a run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .replenish import ResetReplenisher
from .shaper import MittsShaper

try:  # pragma: no cover - numpy ships with the toolchain
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class MacroTickPump:
    """Vectorized per-window replenisher for a system's MITTS shapers.

    Build via :meth:`attach`; instances self-schedule on the system's
    engine and are picklable (checkpoints taken between ticks restore the
    pending tick event).
    """

    __slots__ = ("system", "period", "_tick_cb")

    def __init__(self, system, period: int) -> None:
        self.system = system
        self.period = period
        self._tick_cb = self._tick

    # ------------------------------------------------------------------
    # eligibility

    @staticmethod
    def eligible(system) -> Optional[Tuple[int, int]]:
        """``(period, next_boundary)`` shared by all shapers, or ``None``."""
        period = None
        boundary = None
        for port in system.ports:
            limiter = port.limiter
            if type(limiter) is not MittsShaper:
                return None
            if limiter.method != MittsShaper.METHOD_DEDUCT_REFUND:
                return None
            replenisher = limiter.replenisher
            if type(replenisher) is not ResetReplenisher:
                return None
            if period is None:
                period = replenisher.period
                boundary = replenisher._next
            elif (replenisher.period != period
                  or replenisher._next != boundary):
                return None
        if period is None:
            return None
        return period, boundary

    @classmethod
    def attach(cls, system, mode: str = "auto") -> Optional["MacroTickPump"]:
        """Create and schedule a pump for ``system`` if eligible.

        ``mode``: ``"auto"`` attaches when eligible, ``"force"`` raises
        ``ValueError`` when the configuration is not eligible (explicit
        opt-in diagnostics), ``"off"`` never attaches.
        """
        if mode == "off":
            return None
        if mode not in ("auto", "force"):
            raise ValueError(f"unknown macro_tick mode {mode!r}; "
                             f"known: ('auto', 'force', 'off')")
        found = cls.eligible(system)
        if found is None:
            if mode == "force":
                raise ValueError(
                    "macro_tick='force' requires every port limiter to be "
                    "a method-2 MittsShaper with a ResetReplenisher sharing "
                    "one period and one aligned boundary")
            return None
        period, boundary = found
        pump = cls(system, period)
        system.engine.schedule(boundary, pump._tick_cb)
        return pump

    # ------------------------------------------------------------------
    # the tick

    def _due_shapers(self, now: int) -> Optional[List[MittsShaper]]:
        """Shapers whose boundary is ``now``; ``None`` = gate failed."""
        period = self.period
        due: List[MittsShaper] = []
        for port in self.system.ports:
            limiter = port.limiter
            if type(limiter) is not MittsShaper \
                    or limiter.method != MittsShaper.METHOD_DEDUCT_REFUND:
                return None
            replenisher = limiter.replenisher
            if type(replenisher) is not ResetReplenisher \
                    or replenisher.period != period:
                return None
            if replenisher._next == now:
                due.append(limiter)
            elif replenisher._next != now + period:
                # Reconfigured to a different phase: no common boundary.
                return None
        return due

    def _tick(self) -> None:
        now = self.system.engine.now
        due = self._due_shapers(now)
        if due is None:
            # Configuration drifted away (limiter swap/reconfigure): go
            # dormant without touching any state -- the lazy per-shaper
            # path remains correct for whatever is installed now.
            return
        boundary = now + self.period
        if due:
            rows = self._replenished_rows(due)
            for shaper, row in zip(due, rows):
                # Same effect as state.replenish() + one apply_until step.
                shaper.state.counts = row
                shaper.replenisher._next = boundary
        self.system.engine.schedule(boundary, self._tick_cb)

    @staticmethod
    def _replenished_rows(due: List[MittsShaper]) -> List[List[int]]:
        """Post-boundary counters for every due shaper, one batched op."""
        caps = [list(shaper.state.config.credits) for shaper in due]
        if _np is not None and len({len(row) for row in caps}) == 1:
            caps_matrix = _np.array(caps, dtype=_np.int64)
            counts_matrix = _np.array([shaper.state.counts for shaper in due],
                                      dtype=_np.int64)
            # Reset replenishment refills every bin to its cap; counts are
            # within [0, K], so the saturating add lands exactly on K.
            refilled = _np.minimum(counts_matrix + caps_matrix, caps_matrix)
            return refilled.tolist()
        return caps
