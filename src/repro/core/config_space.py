"""Bin-configuration space utilities: constraints and static baselines.

Section IV-C compares MITTS against static provisioning *at equal average
inter-arrival time and equal average bandwidth*:

    I_avg = sum(n_i * t_i) / sum(n_i) = I_static
    B_avg = sum(n_i) / P            = B_static

This module provides the constraint checks, a repair operator that projects
an arbitrary credit vector onto the constraint surface (used by the GA so
every genome stays comparable to the static baseline), and enumeration of
the single-bin static configurations searched in Section IV-G3.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence

from .bins import BinConfig, BinSpec


def validate_credit_vector(credits: Sequence[int], spec: BinSpec,
                           core: Optional[int] = None) -> None:
    """Reject credit vectors that cannot drive a live shaper.

    Raises :class:`ValueError` naming the offending bins -- and, when
    ``core`` is given, the core the vector belongs to -- so a bad config
    fails loudly at construction time instead of surfacing minutes later
    as a silent stall (all-zero credits) or dead weight (credits in bins
    the geometry cannot reach).  Multi-core callers (the GA's genome
    validation, scenario builders) should pass ``core`` so the message
    pinpoints both coordinates of the offending entry.  Checks, in order:

    * vector length matches the ``spec.num_bins`` geometry -- extra
      entries would be *unreachable* bins (no inter-arrival time maps to
      them), missing entries leave bins unconfigured;
    * no bin holds a negative or over-``max_credits`` count;
    * at least one bin holds a credit -- a zero-credit shaper stalls its
      core forever (``stall_forever``), which is a configuration error,
      not a simulation result.
    """
    where = "" if core is None else f"core {core}: "
    vector = list(credits)
    if len(vector) != spec.num_bins:
        if len(vector) > spec.num_bins:
            extra = list(range(spec.num_bins, len(vector)))
            raise ValueError(
                f"{where}credit vector has {len(vector)} entries but the "
                f"geometry has {spec.num_bins} bins: bin(s) {extra} are "
                f"unreachable (no inter-arrival time maps beyond bin "
                f"{spec.num_bins - 1})")
        missing = list(range(len(vector), spec.num_bins))
        raise ValueError(
            f"{where}credit vector has {len(vector)} entries but the "
            f"geometry has {spec.num_bins} bins: bin(s) {missing} are "
            f"unconfigured")
    negative = [index for index, count in enumerate(vector) if count < 0]
    if negative:
        raise ValueError(f"{where}bin(s) {negative} hold negative credits")
    over = [index for index, count in enumerate(vector)
            if count > spec.max_credits]
    if over:
        raise ValueError(
            f"{where}bin(s) {over} exceed the {spec.max_credits}-credit "
            f"register limit")
    if not any(vector):
        raise ValueError(
            f"{where}all bins 0..{spec.num_bins - 1} hold zero credits: "
            f"a zero-credit shaper stalls its core forever")


def validate_bin_config(config: BinConfig,
                        core: Optional[int] = None) -> BinConfig:
    """Validate and pass through a :class:`BinConfig` (fluent use)."""
    validate_credit_vector(config.credits, config.spec, core=core)
    return config


def interval_for_bandwidth(bandwidth_bytes_per_sec: float,
                           clock_hz: float = 2.4e9,
                           line_bytes: int = 64) -> float:
    """Average request interval (cycles) equivalent to a bandwidth."""
    if bandwidth_bytes_per_sec <= 0:
        raise ValueError("bandwidth must be positive")
    requests_per_sec = bandwidth_bytes_per_sec / line_bytes
    return clock_hz / requests_per_sec


def bandwidth_for_interval(interval_cycles: float,
                           clock_hz: float = 2.4e9,
                           line_bytes: int = 64) -> float:
    """Bandwidth (bytes/sec) of one request every ``interval_cycles``."""
    if interval_cycles <= 0:
        raise ValueError("interval must be positive")
    return clock_hz / interval_cycles * line_bytes


def matches_static(config: BinConfig, static_interval: float,
                   total_credits: int,
                   interval_tolerance: float = 0.10,
                   credit_tolerance: float = 0.10) -> bool:
    """Does ``config`` match the static baseline's I_avg and B_avg?

    Bandwidth equality over a common period reduces to equal total credits;
    interval equality is checked against ``static_interval`` within a
    relative tolerance (bin centres quantise I_avg, so exact equality is
    generally unattainable).
    """
    if config.total_credits == 0:
        return False
    credit_err = abs(config.total_credits - total_credits) / max(1, total_credits)
    if credit_err > credit_tolerance:
        return False
    interval_err = abs(config.average_interval() - static_interval) / static_interval
    return interval_err <= interval_tolerance


def repair_to_constraints(credits: Sequence[int], spec: BinSpec,
                          static_interval: float,
                          total_credits: int) -> BinConfig:
    """Project a credit vector onto the equal-I_avg / equal-B_avg surface.

    Two-step repair used by the constrained GA of Section IV-C:

    1. rescale so the total equals ``total_credits`` (bandwidth equality);
    2. shift weight between the fastest and slowest populated bins until
       the average interval lands within quantisation distance of
       ``static_interval``.
    """
    vector = [max(0, int(c)) for c in credits]
    if len(vector) != spec.num_bins:
        raise ValueError("credit vector length mismatch")
    if sum(vector) == 0:
        vector = [1] * spec.num_bins

    # Step 1: match total credits.
    vector = _rescale_total(vector, total_credits, spec)

    # Step 2: nudge the average interval towards the target.
    config = BinConfig(spec=spec, credits=tuple(vector))
    step_budget = 4 * total_credits
    centers = spec.centers
    while step_budget > 0:
        current = config.average_interval()
        error = current - static_interval
        if abs(error) <= spec.interval_length / 2:
            break
        vector = list(config.credits)
        if error > 0:
            moved = _move_credit(vector, from_slow=True, centers=centers)
        else:
            moved = _move_credit(vector, from_slow=False, centers=centers)
        if not moved:
            break
        config = BinConfig(spec=spec, credits=tuple(vector))
        step_budget -= 1
    return config


def _rescale_total(vector: List[int], target: int, spec: BinSpec) -> List[int]:
    """Scale ``vector`` to sum exactly to ``target`` (largest-remainder)."""
    total = sum(vector)
    if total == 0:
        raise ValueError("cannot rescale a zero vector")
    scaled = [c * target / total for c in vector]
    floored = [min(spec.max_credits, int(math.floor(s))) for s in scaled]
    remainder = target - sum(floored)
    # Distribute the remainder to the largest fractional parts.
    order = sorted(range(len(vector)),
                   key=lambda i: scaled[i] - math.floor(scaled[i]),
                   reverse=True)
    idx = 0
    while remainder > 0 and idx < 10 * len(vector):
        i = order[idx % len(vector)]
        if floored[i] < spec.max_credits:
            floored[i] += 1
            remainder -= 1
        idx += 1
    return floored


def _move_credit(vector: List[int], from_slow: bool,
                 centers: Sequence[float]) -> bool:
    """Move one credit between extreme populated bins to shift I_avg.

    ``from_slow=True`` moves a credit from the slowest populated bin to the
    fastest bin (reduces I_avg); ``False`` does the opposite.  Returns
    whether a move happened.
    """
    populated = [i for i, c in enumerate(vector) if c > 0]
    if not populated:
        return False
    if from_slow:
        source = populated[-1]
        dest = 0
    else:
        source = populated[0]
        dest = len(vector) - 1
    if source == dest:
        return False
    vector[source] -= 1
    vector[dest] += 1
    return True


def static_configs(spec: BinSpec,
                   max_credits: Optional[int] = None
                   ) -> Iterator[BinConfig]:
    """All single-bin configurations (the Section IV-G3 baseline space).

    Yields configurations with ``c`` credits in exactly one bin for every
    bin index and every power-of-two-ish credit count up to ``max_credits``.
    The exhaustive per-credit sweep is exponential; the geometric ladder
    covers the same dynamic range the way the paper's search effectively
    does (performance/cost is smooth in credit count).
    """
    if max_credits is None:
        max_credits = spec.max_credits
    count = 1
    ladder = []
    while count <= max_credits:
        ladder.append(count)
        count *= 2
    if ladder[-1] != max_credits:
        ladder.append(max_credits)
    for index in range(spec.num_bins):
        for credits in ladder:
            yield BinConfig.single_bin(index, credits, spec)


def static_config_for_bandwidth(spec: BinSpec,
                                bandwidth_bytes_per_sec: float,
                                clock_hz: float = 2.4e9,
                                line_bytes: int = 64) -> BinConfig:
    """Single-bin config whose rate approximates a target bandwidth.

    Picks the bin whose centre is closest to the equivalent interval and
    fills it with enough credits to sustain the rate across a period.
    """
    interval = interval_for_bandwidth(bandwidth_bytes_per_sec, clock_hz,
                                      line_bytes)
    index = min(range(spec.num_bins),
                key=lambda i: abs(spec.center(i) - interval))
    credits = max(1, min(spec.max_credits,
                         round(spec.max_credits / (index + 1) / 4)))
    return BinConfig.single_bin(index, credits, spec)
