"""Bin-based credit pricing (Section IV-G).

Credits in faster bins enable higher instantaneous bandwidth and are priced
higher.  Following Figure 17's caption: the price of a credit is
proportional to the bandwidth it stands for, and high-request-rate credits
are additionally penalised by the linear scale factor ``2 - t_i / t_N``
(2x at the fastest bin, approaching 1x at the slowest).

The paper's IaaS exchange rate (Section IV-G): one processor core costs the
same as 1.6 GB/s of memory bandwidth.  At 2.4 GHz and 64-byte lines that
converts to CORE_PRICE units used by :mod:`repro.cloud`.
"""

from __future__ import annotations

from typing import Sequence

from .bins import BinConfig, BinSpec


#: Section IV-G: a core costs the same as this much bandwidth (bytes/sec).
CORE_EQUIVALENT_BANDWIDTH = 1.6e9
#: Table II core clock.
CORE_CLOCK_HZ = 2.4e9


def burst_penalty(spec: BinSpec, index: int) -> float:
    """Linear penalty ``2 - t_i / t_N`` for high-request-rate credits."""
    t_i = spec.center(index)
    t_n = spec.center(spec.num_bins - 1)
    return 2.0 - t_i / t_n


def credit_price(spec: BinSpec, index: int, line_bytes: int = 64) -> float:
    """Price of one credit in ``bin_i``.

    Base price is the bandwidth the credit stands for (bytes/cycle at the
    bin's nominal spacing), scaled by the burst penalty.  Units are
    "bandwidth-equivalents"; :func:`config_price` sums them and
    :mod:`repro.cloud` converts to core-equivalents.
    """
    bandwidth = line_bytes / spec.center(index)
    return bandwidth * burst_penalty(spec, index)


def config_price(config: BinConfig, line_bytes: int = 64) -> float:
    """Total price of an allocation on the *instantaneous* scale.

    Sums :func:`credit_price` over the credits.  This is the relative
    scale used for market reserve prices; for absolute perf/cost use
    :func:`config_price_core_equivalents`, which prices the bandwidth the
    allocation actually delivers per period.
    """
    return sum(n * credit_price(config.spec, i, line_bytes)
               for i, n in enumerate(config.credits))


def config_price_core_equivalents(config: BinConfig,
                                  line_bytes: int = 64) -> float:
    """Price in units of 'one core' via the 1.6 GB/s exchange rate.

    What a customer actually receives from ``n_i`` credits is ``n_i``
    transactions per replenishment period -- an average bandwidth of
    ``n_i * line_bytes / T_r`` -- delivered at ``bin_i``'s instantaneous
    rate.  The price is therefore the *delivered average bandwidth*
    (converted to core-equivalents at 1.6 GB/s per core) scaled by the
    Section IV-G1 burst penalty ``2 - t_i / t_N`` of the bin it sits in:
    bursty bandwidth costs up to twice bulk bandwidth of the same average
    rate.
    """
    total = config.total_credits
    if total == 0:
        return 0.0
    period = config.replenish_period()
    spec = config.spec
    price = 0.0
    for index, credits in enumerate(config.credits):
        if credits == 0:
            continue
        avg_bandwidth = credits * line_bytes / period  # bytes/cycle
        bytes_per_second = avg_bandwidth * CORE_CLOCK_HZ
        price += (bytes_per_second / CORE_EQUIVALENT_BANDWIDTH
                  * burst_penalty(spec, index))
    return price


def price_vector(spec: BinSpec, line_bytes: int = 64) -> Sequence[float]:
    """Per-bin credit prices, cheapest last."""
    return [credit_price(spec, i, line_bytes) for i in range(spec.num_bins)]
