"""Congestion feedback: global backpressure to the MITTS units.

Section III-C sketches, and leaves to future work, "more complex schemes
... which communicate short-term congestion to the MITTS units which then
proportionally scale-down resources until the congestion is resolved".
This module implements that scheme: a :class:`CongestionController`
watches the memory controller's transaction-queue occupancy and, when it
stays above a high-water mark, multiplicatively scales every shaper's
credit allocation down; when the queue drains below a low-water mark the
allocations recover toward their purchased configuration.

The controller only ever scales *down* from the purchased allocation --
tenants never receive more than they bought -- so it composes with the
IaaS provisioning story.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.bins import BinConfig
from ..core.shaper import MittsShaper
from ..sim.system import SimSystem


class CongestionController:
    """Watches MC queue depth and proportionally throttles all shapers."""

    __slots__ = ("system", "epoch", "high_water", "low_water",
                 "scale_down", "recover", "floor", "nominal",
                 "current_scale", "scale_down_events", "_peak_since_tick")

    def __init__(self, system: SimSystem, epoch: int = 2_000,
                 high_water: int = 24, low_water: int = 8,
                 scale_down: float = 0.7, recover: float = 1.2,
                 floor: float = 0.1) -> None:
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        if not 0 < scale_down < 1:
            raise ValueError("scale_down must be in (0, 1)")
        if recover <= 1:
            raise ValueError("recover must exceed 1")
        if not 0 < floor <= 1:
            raise ValueError("floor must be in (0, 1]")
        if low_water >= high_water:
            raise ValueError("low_water must be below high_water")
        self.system = system
        self.epoch = epoch
        self.high_water = high_water
        self.low_water = low_water
        self.scale_down = scale_down
        self.recover = recover
        self.floor = floor
        #: purchased (nominal) configuration per core
        self.nominal: List[Optional[BinConfig]] = []
        for port in system.ports:
            limiter = port.limiter
            self.nominal.append(limiter.config
                                if isinstance(limiter, MittsShaper)
                                else None)
        #: current multiplicative scale applied to every shaper
        self.current_scale = 1.0
        self.scale_down_events = 0
        self._peak_since_tick = 0
        system.every(epoch, self._tick)
        self._watch_queue()

    def _watch_queue(self) -> None:
        """Sample queue depth at a fine grain via the engine clock."""
        depth = len(self.system.mc.queue) + len(self.system.mc.overflow)
        if depth > self._peak_since_tick:
            self._peak_since_tick = depth
        self.system.engine.schedule_in(max(1, self.epoch // 8),
                                       self._watch_queue)

    def _tick(self) -> None:
        peak = self._peak_since_tick
        self._peak_since_tick = 0
        if peak >= self.high_water:
            new_scale = max(self.floor, self.current_scale * self.scale_down)
            if new_scale < self.current_scale:
                self.current_scale = new_scale
                self.scale_down_events += 1
                self._apply()
        elif peak <= self.low_water and self.current_scale < 1.0:
            self.current_scale = min(1.0, self.current_scale * self.recover)
            self._apply()

    def _apply(self) -> None:
        """Install scaled allocations *on the nominal period*.

        Scaling credits alone would scale T_r with them and leave the
        enforced average rate unchanged; pinning the replenishment period
        to the purchased configuration's makes the scale factor a true
        bandwidth multiplier.
        """
        from ..core.replenish import ResetReplenisher

        now = self.system.engine.now
        for core_id, nominal in enumerate(self.nominal):
            if nominal is None:
                continue
            limiter = self.system.limiter(core_id)
            if not isinstance(limiter, MittsShaper):
                continue
            scaled = nominal.scaled(self.current_scale)
            if scaled.total_credits == 0:
                scaled = nominal.scaled(self.floor)
            if scaled.total_credits == 0:
                continue
            limiter.reconfigure(scaled, now=now, reset_credits=False)
            period = nominal.replenish_period()
            phase = core_id * period // max(1, len(self.nominal))
            limiter.replenisher = ResetReplenisher(scaled, period=period,
                                                   phase=phase)
            limiter.replenisher.reset_clock(now)
            self.system.ports[core_id].kick()
