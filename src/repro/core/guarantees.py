"""Worst-case service guarantees of a bin configuration.

Section IV-F positions MITTS for real-time systems: "MITTS could be
applied to real-time systems to provide better application memory
bandwidth isolation while maintaining efficiency."  A real-time argument
needs *bounds*, not averages.  This module derives, analytically from a
:class:`~repro.core.bins.BinConfig` under reset replenishment:

* the guaranteed number of requests serviceable in any replenishment
  period (trivially ``sum K_i``),
* the worst-case shaper delay of a single request, and
* the worst-case completion time of a burst of ``k`` back-to-back
  requests.

Bounds assume the shaper is the only constraint (the paper's isolation
setting: downstream bandwidth has been provisioned, Section III-C).
"""

from __future__ import annotations

import math
from typing import List

from .bins import BinConfig


def guaranteed_requests_per_period(config: BinConfig) -> int:
    """Requests the allocation guarantees per replenishment period."""
    return config.total_credits


def worst_case_single_delay(config: BinConfig) -> int:
    """Worst-case shaper delay of one request (cycles).

    The adversarial case: every credit of the period is already spent and
    the request arrived immediately after a release, so it must wait for
    the next replenishment boundary (up to a full period) and then age
    into the fastest populated bin.
    """
    if config.total_credits == 0:
        raise ValueError("a zero-credit allocation has no service bound")
    spec = config.spec
    fastest = next(i for i, c in enumerate(config.credits) if c > 0)
    return config.replenish_period() + spec.lower_edge(fastest)


def worst_case_burst_completion(config: BinConfig, burst: int) -> int:
    """Worst-case cycles to release a burst of ``burst`` requests.

    Pessimistic release schedule: the burst arrives right after all
    credits were drained, waits a full period, then each period releases
    the allocation's credits at their bins' nominal spacing, fastest bins
    first (the shaper's own deduction preference).
    """
    if burst < 1:
        raise ValueError("burst must be >= 1")
    if config.total_credits == 0:
        raise ValueError("a zero-credit allocation has no service bound")
    period = config.replenish_period()
    full_periods = (burst - 1) // config.total_credits
    remaining = burst - full_periods * config.total_credits
    # Within the final period: spend credits fastest-first.
    spend_time = 0.0
    spec = config.spec
    left = remaining
    for index, credits in enumerate(config.credits):
        take = min(left, credits)
        spend_time += take * spec.center(index)
        left -= take
        if left == 0:
            break
    return int(period + full_periods * period + math.ceil(spend_time))


def sustainable_bandwidth(config: BinConfig,
                          line_bytes: int = 64) -> float:
    """Long-run guaranteed bandwidth (bytes/cycle): credits per period."""
    period = config.replenish_period()
    return config.total_credits * line_bytes / period


def service_curve(config: BinConfig, horizons: List[int]) -> List[int]:
    """Guaranteed serviced requests by each horizon (a network-calculus
    style lower service curve under reset replenishment)."""
    period = config.replenish_period()
    total = config.total_credits
    curve = []
    for horizon in horizons:
        if horizon < 0:
            raise ValueError("horizons must be non-negative")
        # Conservative: a full period may elapse before the first
        # replenishment, and each completed period thereafter guarantees
        # one allocation's worth of service.
        curve.append(max(0, horizon // period) * total)
    return curve
