"""MITTS core: bins, credits, the traffic shaper, pricing, and area model."""

from .area import MittsAreaModel, PUBLISHED_AREA_MM2, PUBLISHED_CORE_FRACTION
from .congestion import CongestionController
from .bins import (BinConfig, BinSpec, DEFAULT_INTERVAL_LENGTH,
                   DEFAULT_MAX_CREDITS, DEFAULT_NUM_BINS)
from .config_space import (bandwidth_for_interval, interval_for_bandwidth,
                           matches_static, repair_to_constraints,
                           static_config_for_bandwidth, static_configs)
from .credits import CreditState
from .guarantees import (guaranteed_requests_per_period, service_curve,
                         sustainable_bandwidth, worst_case_burst_completion,
                         worst_case_single_delay)
from .limiter import (NoLimiter, SourceLimiter, StaticLimiter,
                      TokenBucketLimiter)
from .pricing import (burst_penalty, config_price,
                      config_price_core_equivalents, credit_price,
                      price_vector, CORE_EQUIVALENT_BANDWIDTH)
from .replenish import RateReplenisher, ReplenishPolicy, ResetReplenisher
from .shaper import MittsShaper

__all__ = [
    "BinConfig",
    "BinSpec",
    "CORE_EQUIVALENT_BANDWIDTH",
    "CongestionController",
    "CreditState",
    "DEFAULT_INTERVAL_LENGTH",
    "DEFAULT_MAX_CREDITS",
    "DEFAULT_NUM_BINS",
    "MittsAreaModel",
    "MittsShaper",
    "NoLimiter",
    "PUBLISHED_AREA_MM2",
    "PUBLISHED_CORE_FRACTION",
    "RateReplenisher",
    "ReplenishPolicy",
    "ResetReplenisher",
    "SourceLimiter",
    "StaticLimiter",
    "TokenBucketLimiter",
    "bandwidth_for_interval",
    "guaranteed_requests_per_period",
    "service_curve",
    "sustainable_bandwidth",
    "worst_case_burst_completion",
    "worst_case_single_delay",
    "burst_penalty",
    "config_price",
    "config_price_core_equivalents",
    "credit_price",
    "interval_for_bandwidth",
    "matches_static",
    "price_vector",
    "repair_to_constraints",
    "static_config_for_bandwidth",
    "static_configs",
]
