"""Runtime credit state for one MITTS shaper instance.

Separated from :class:`~repro.core.bins.BinConfig` (the immutable purchased
allocation) so the shaper can mutate counters, roll back on LLC hits, and be
swapped to a new configuration mid-run by the online tuner without losing
the distinction between "what was bought" and "what is left".
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import contracts
from .bins import BinConfig


def _credits_within_bounds(state: "CreditState") -> bool:
    """every bin credit count stays within [0, K_i]"""
    return all(0 <= count <= limit for count, limit
               in zip(state.counts, state._config.credits))


def _one_counter_per_bin(state: "CreditState") -> bool:
    """one credit counter per configured bin"""
    return len(state.counts) == state._config.spec.num_bins


class CreditState:
    """Mutable per-bin credit counters mirroring the hardware registers.

    The hardware holds one register per bin for the current count ``n_i``
    and one per bin for the replenish value ``K_i``; this class is exactly
    those two register files plus deduct/refund/replenish operations.
    """

    __slots__ = ("_config", "counts")

    def __init__(self, config: BinConfig) -> None:
        self._config = config
        self.counts: List[int] = list(config.credits)

    @property
    def config(self) -> BinConfig:
        return self._config

    @contracts.invariant(_credits_within_bounds, _one_counter_per_bin)
    def reconfigure(self, config: BinConfig, reset: bool = True) -> None:
        """Install a new allocation (OS writing the config registers).

        With ``reset`` the current counters are reset to the new ``K``;
        otherwise they are clamped into the new bounds and keep their value,
        which is what a mid-period register write would observe.
        """
        if config.spec.num_bins != self._config.spec.num_bins:
            raise ValueError("cannot reconfigure to a different bin count")
        self._config = config
        if reset:
            self.counts = list(config.credits)
        else:
            self.counts = [min(count, limit)
                           for count, limit in zip(self.counts, config.credits)]

    @contracts.invariant(_credits_within_bounds, _one_counter_per_bin)
    def replenish(self) -> None:
        """Algorithm 1: reset every ``n_i`` to ``K_i``."""
        self.counts = list(self._config.credits)

    def available(self, bin_index: int) -> int:
        return self.counts[bin_index]

    def total_available(self) -> int:
        return sum(self.counts)

    def find_deductible(self, bin_index: int) -> Optional[int]:
        """Find the bin a request in ``bin_index`` may take a credit from.

        A request may use a credit from its own bin or any *faster* bin
        (smaller index): "there are credits available in bins whose ``t_i``
        is smaller" (Section IV-G1).  We scan from the request's own bin
        downward so the cheapest sufficient credit is consumed first and
        expensive burst credits are preserved for genuinely bursty requests.
        Returns the bin index, or ``None`` if no eligible bin has credits.
        """
        for index in range(min(bin_index, len(self.counts) - 1), -1, -1):
            if self.counts[index] > 0:
                return index
        return None

    @contracts.invariant(_credits_within_bounds, _one_counter_per_bin)
    def deduct(self, bin_index: int) -> None:
        """Consume one credit from ``bin_index``."""
        if self.counts[bin_index] <= 0:
            raise ValueError(f"bin {bin_index} has no credits to deduct")
        self.counts[bin_index] -= 1

    @contracts.invariant(_credits_within_bounds, _one_counter_per_bin)
    def refund(self, bin_index: int) -> None:
        """Return one credit (hybrid method 2: the L1 miss was an LLC hit).

        Refunds saturate at the configured ``K_i`` like the 10-bit hardware
        registers would.
        """
        limit = self._config.credits[bin_index]
        if self.counts[bin_index] < limit:
            self.counts[bin_index] += 1

    def snapshot(self) -> List[int]:
        """Copy of the live counters (starvation diagnostics; a copy so
        diagnostic consumers can never alias the hardware registers)."""
        return list(self.counts)

    def next_available_bin_at_or_above(self, bin_index: int) -> Optional[int]:
        """Smallest bin index >= ``bin_index`` holding credits.

        Used to compute how long a stalled request must age before its
        inter-arrival time reaches a bin that can pay for it.
        """
        for index in range(bin_index, len(self.counts)):
            if self.counts[index] > 0:
                return index
        return None
