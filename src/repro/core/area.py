"""Analytic hardware-cost model for one MITTS unit (Section III-E).

The paper enumerates the storage and logic in each MITTS module:

* one register per bin holding the current credit count ``n_i``,
* one register per bin holding the replenish value ``K_i``,
* a register for the replenishment period ``T_r`` and counter ``T_c``,
* a counter tracking the inter-arrival period since the last transaction,
* a tag-indexed pending table storing a bin number per in-flight L1 miss,
* a subtractor, an adder, and a zero detector.

Each credit register is 10 bits (max 1024 credits).  The tape-out measured
0.0035 mm^2 in IBM 32nm SOI -- under 0.9% of an OpenSPARC-T1-derived core.
We reproduce the bit inventory exactly and calibrate an area-per-bit
constant against the published 0.0035 mm^2 so alternative geometries (more
bins, deeper pending tables) can be costed.
"""

from __future__ import annotations

import math
from typing import Optional
from dataclasses import dataclass

from .bins import BinSpec


#: published area of the default 10-bin unit, IBM 32nm SOI
PUBLISHED_AREA_MM2 = 0.0035
#: published bound relative to the 25-core chip's core area
PUBLISHED_CORE_FRACTION = 0.009


@dataclass(frozen=True)
class MittsAreaModel:
    """Storage/logic inventory and calibrated area estimate."""

    spec: BinSpec = None
    #: maximum in-flight L1->LLC requests (sizes the pending table); the
    #: Table II configuration has 8 MSHRs per core.
    pending_entries: int = 8
    #: arithmetic + control overhead, as equivalent storage bits
    logic_equivalent_bits: int = 64

    def __post_init__(self) -> None:
        if self.spec is None:
            object.__setattr__(self, "spec", BinSpec())

    @property
    def credit_register_bits(self) -> int:
        """Bits per credit register: ceil(log2(max_credits)) (10 by default)."""
        return max(1, math.ceil(math.log2(self.spec.max_credits)))

    @property
    def bin_index_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.spec.num_bins)))

    @property
    def period_counter_bits(self) -> int:
        """T_r register + T_c counter; sized for the largest period."""
        max_period = self.spec.max_credits * sum(
            int(t) + 1 for t in (self.spec.center(i)
                                 for i in range(self.spec.num_bins)))
        return 2 * max(1, math.ceil(math.log2(max_period + 1)))

    @property
    def interarrival_counter_bits(self) -> int:
        """Counts cycles since the last transaction; saturates at last bin."""
        max_interval = self.spec.lower_edge(self.spec.num_bins - 1) \
            + self.spec.interval_length
        return max(1, math.ceil(math.log2(max_interval + 1)))

    @property
    def storage_bits(self) -> int:
        """Total storage bits in one MITTS unit."""
        per_bin = 2 * self.credit_register_bits  # n_i and K_i registers
        bins = self.spec.num_bins * per_bin
        pending = self.pending_entries * self.bin_index_bits
        return (bins + pending + self.period_counter_bits
                + self.interarrival_counter_bits)

    @property
    def total_equivalent_bits(self) -> int:
        return self.storage_bits + self.logic_equivalent_bits

    def area_mm2(self) -> float:
        """Area estimate calibrated so the default geometry = 0.0035 mm^2."""
        reference = MittsAreaModel()
        per_bit = PUBLISHED_AREA_MM2 / reference.total_equivalent_bits
        return self.total_equivalent_bits * per_bit

    def core_fraction(self,
                      core_area_mm2: Optional[float] = None) -> float:
        """MITTS area as a fraction of a core.

        With no argument, the reference core area is back-derived from the
        published <0.9% bound on the default unit.
        """
        if core_area_mm2 is None:
            core_area_mm2 = PUBLISHED_AREA_MM2 / PUBLISHED_CORE_FRACTION
        return self.area_mm2() / core_area_mm2

    def inventory(self) -> dict:
        """Human-readable component breakdown (for the hw-cost table)."""
        return {
            "bins": self.spec.num_bins,
            "credit_register_bits": self.credit_register_bits,
            "bin_storage_bits": self.spec.num_bins * 2 * self.credit_register_bits,
            "pending_table_bits": self.pending_entries * self.bin_index_bits,
            "period_counter_bits": self.period_counter_bits,
            "interarrival_counter_bits": self.interarrival_counter_bits,
            "logic_equivalent_bits": self.logic_equivalent_bits,
            "total_bits": self.total_equivalent_bits,
            "area_mm2": self.area_mm2(),
            "core_fraction": self.core_fraction(),
        }
