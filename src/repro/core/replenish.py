"""Credit replenishment policies.

The paper's hardware uses *reset-based* replenishment (Algorithm 1): a
register holds the period ``T_r``, a counter ``T_c`` counts it down, and at
each boundary every ``n_i`` is reset to ``K_i``.  A rate-based drip variant
is provided as an ablation (DESIGN.md item 2): it divides the period into
slices and tops bins up incrementally, trading burst capacity for
smoothness the way a token bucket with a small bucket would.

Policies are applied *lazily*: the simulator calls ``apply_until(state,
now)`` before reading credit counters, and ``next_boundary()`` to know when
a stalled request might become issuable again.
"""

from __future__ import annotations

from typing import Optional

from .bins import BinConfig
from .credits import CreditState


class ReplenishPolicy:
    """Base class: owns the period bookkeeping.

    ``phase`` offsets the first boundary backwards (modulo the period) so
    that co-running shapers do not replenish in lockstep -- synchronized
    boundaries make every core spend its burst credits at the same instant,
    the short-term congestion Section III-C discusses.
    """

    __slots__ = ("period", "_next")

    def __init__(self, config: BinConfig, period: Optional[int] = None,
                 phase: int = 0) -> None:
        self.period = period if period is not None else config.replenish_period()
        if self.period < 1:
            raise ValueError("replenishment period must be >= 1 cycle")
        self._next = self.period - (phase % self.period)

    def next_boundary(self) -> int:
        """Cycle of the next replenishment event."""
        return self._next

    def reset_clock(self, now: int) -> None:
        """Restart the period from ``now`` (used on reconfiguration)."""
        self._next = now + self.period

    def apply_until(self, state: CreditState, now: int) -> None:
        """Apply all replenishment boundaries at or before ``now``."""
        raise NotImplementedError

    def clone(self) -> "ReplenishPolicy":
        """Independent copy with identical clock state.

        The shaper probes future release times on cloned policy + credit
        state so speculation never perturbs the live clock.
        """
        raise NotImplementedError


class ResetReplenisher(ReplenishPolicy):
    """Algorithm 1: at each period boundary reset all ``n_i`` to ``K_i``.

    Because a reset is idempotent, crossing several boundaries at once
    collapses into a single reset; only the clock needs to catch up.
    """

    __slots__ = ()

    def apply_until(self, state: CreditState, now: int) -> None:
        if now < self._next:
            return
        state.replenish()
        periods_crossed = (now - self._next) // self.period + 1
        self._next += periods_crossed * self.period

    def clone(self) -> "ResetReplenisher":
        copy = ResetReplenisher.__new__(ResetReplenisher)
        copy.period = self.period
        copy._next = self._next
        return copy


class RateReplenisher(ReplenishPolicy):
    """Drip credits in ``slices`` installments across the period.

    Budget-neutral with the reset policy: each period adds exactly ``K_i``
    credits to ``bin_i``, spread across the slices by a largest-remainder
    schedule (slice ``s`` adds ``K_i*(s+1)//slices - K_i*s//slices``).
    Counters still saturate at ``K_i``, so unspent installments are lost --
    that loss of banked burst capacity is precisely the tradeoff against
    Algorithm 1's reset.
    """

    __slots__ = ("slices", "_slice_period", "_slice_index")

    def __init__(self, config: BinConfig, period: Optional[int] = None,
                 slices: int = 8, phase: int = 0) -> None:
        super().__init__(config, period)
        if slices < 1:
            raise ValueError("slices must be >= 1")
        self.slices = slices
        self._slice_period = max(1, self.period // slices)
        self._next = self._slice_period - (phase % self._slice_period)
        self._slice_index = 0

    def reset_clock(self, now: int) -> None:
        self._next = now + self._slice_period
        self._slice_index = 0

    def apply_until(self, state: CreditState, now: int) -> None:
        while self._next <= now:
            limits = state.config.credits
            s = self._slice_index
            for index, limit in enumerate(limits):
                installment = (limit * (s + 1) // self.slices
                               - limit * s // self.slices)
                state.counts[index] = min(limit,
                                          state.counts[index] + installment)
            self._slice_index = (s + 1) % self.slices
            self._next += self._slice_period

    def clone(self) -> "RateReplenisher":
        copy = RateReplenisher.__new__(RateReplenisher)
        copy.period = self.period
        copy.slices = self.slices
        copy._slice_period = self._slice_period
        copy._next = self._next
        copy._slice_index = self._slice_index
        return copy
