"""Source rate limiters: the interface MITTS plugs into, plus baselines.

Everything that throttles a core at the source -- MITTS itself, the static
single-rate limiter it is compared against in Section IV-C, FST's throttle,
and MemGuard's per-core budget -- implements :class:`SourceLimiter` so the
core model is policy-agnostic.
"""

from __future__ import annotations

from typing import Optional


class SourceLimiter:
    """Decides when a core's L1 miss may proceed towards the LLC.

    The contract is two-phase: the core model asks :meth:`earliest_issue`
    for the first cycle at which a queued request could be released, then
    calls :meth:`issue` at that cycle to commit (consuming whatever budget
    the policy tracks).  LLC hit/miss feedback arrives asynchronously via
    :meth:`on_llc_response` (the hybrid design of Section III-D).
    """

    __slots__ = ()

    def earliest_issue(self, now: int) -> Optional[int]:
        """First cycle >= ``now`` a request may be released.

        ``None`` means the limiter can never release under its current
        configuration (e.g. a zero-credit allocation); the caller should
        park the request until :meth:`reconfigure`.
        """
        raise NotImplementedError

    def issue(self, cycle: int, req_id: int = -1) -> None:
        """Commit a release at ``cycle`` (must be >= the advertised time)."""
        raise NotImplementedError

    def on_llc_response(self, req_id: int, was_hit: bool) -> None:
        """LLC hit/miss feedback; default limiters ignore it."""

    def stall_forever(self) -> bool:
        """True if the current configuration can never release a request."""
        return False


class NoLimiter(SourceLimiter):
    """Pass-through: requests release immediately (unshaped baseline)."""

    __slots__ = ()

    def earliest_issue(self, now: int) -> Optional[int]:
        return now

    def issue(self, cycle: int, req_id: int = -1) -> None:
        return None


class StaticLimiter(SourceLimiter):
    """The paper's static comparator: a constant request rate.

    "The static allocation mimics a less sophisticated memory system limiter
    that can limit a program's memory requests at or below a constant rate
    but cannot take into account inter-arrival times" (Section IV-C).
    Implemented as a minimum spacing of ``interval`` cycles between
    consecutive releases.
    """

    __slots__ = ("interval", "_last_release")

    def __init__(self, interval: int) -> None:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self.interval = interval
        self._last_release: Optional[int] = None

    def earliest_issue(self, now: int) -> Optional[int]:
        if self._last_release is None:
            return now
        return max(now, self._last_release + self.interval)

    def issue(self, cycle: int, req_id: int = -1) -> None:
        earliest = self.earliest_issue(cycle)
        if cycle < earliest:
            raise ValueError(f"issue at {cycle} before earliest {earliest}")
        self._last_release = cycle

    def set_interval(self, interval: int) -> None:
        """Adjust the rate (used by FST-style dynamic throttling)."""
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self.interval = interval


class TokenBucketLimiter(SourceLimiter):
    """Classic token bucket (Related Work): rate plus bounded burst.

    One token accrues every ``fill_interval`` cycles up to ``capacity``;
    each release consumes a token.  With ``capacity=1`` this is the static
    limiter.  Provided as a reference point between the static limiter and
    full distribution shaping.
    """

    __slots__ = ("fill_interval", "capacity", "_tokens", "_last_update")

    def __init__(self, fill_interval: int, capacity: int) -> None:
        if fill_interval < 1:
            raise ValueError("fill_interval must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.fill_interval = fill_interval
        self.capacity = capacity
        self._tokens = float(capacity)
        self._last_update = 0

    def _accrue(self, now: int) -> None:
        elapsed = now - self._last_update
        if elapsed > 0:
            self._tokens = min(self.capacity,
                               self._tokens + elapsed / self.fill_interval)
            self._last_update = now

    def earliest_issue(self, now: int) -> Optional[int]:
        self._accrue(now)
        if self._tokens >= 1.0:
            return now
        deficit = 1.0 - self._tokens
        return now + max(1, -(-int(deficit * self.fill_interval) // 1))

    def issue(self, cycle: int, req_id: int = -1) -> None:
        self._accrue(cycle)
        if self._tokens < 1.0 - 1e-9:
            raise ValueError("no token available at issue time")
        self._tokens -= 1.0
