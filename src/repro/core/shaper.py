"""The MITTS traffic shaper (the paper's primary contribution).

One :class:`MittsShaper` sits at each core between the L1 cache and the
(possibly distributed) shared LLC.  It measures the inter-arrival time of
outgoing memory requests, maps each request to a credit bin, and delays the
request whenever no bin at its inter-arrival time or faster holds a credit.
A delayed request *ages*: as it waits, its inter-arrival time grows, so it
may eventually match a farther-out (slower) bin that still has credits --
exactly the behaviour of Figure 6.

Both hybrid accounting methods of Section III-D are implemented:

* **Method 2** (used in the 25-core tape-out, the default): assume every L1
  miss is an LLC miss and deduct immediately; on an LLC *hit* notification,
  refund the credit to the bin it came from (a per-request pending table
  stores the bin number).
* **Method 1**: record a timestamp per L1 miss, and only deduct once the
  LLC confirms a miss, using the inter-arrival time between confirmed LLC
  misses.  Issue decisions still consult the (lagging) counters, so this
  variant is "slightly aggressive" exactly as the paper describes.
"""

from __future__ import annotations

from typing import Dict, Optional

from .bins import BinConfig
from .credits import CreditState
from .limiter import SourceLimiter
from .replenish import ReplenishPolicy, ResetReplenisher


class MittsShaper(SourceLimiter):
    """Bin-based inter-arrival-time traffic shaper for one core."""

    __slots__ = ("state", "replenisher", "method", "_last_release",
                 "_pending_bin", "_pending_stamp", "_last_confirmed_miss",
                 "released", "stalled_requests", "total_stall_cycles",
                 "refunds")

    METHOD_TIMESTAMP = 1
    METHOD_DEDUCT_REFUND = 2

    def __init__(self, config: BinConfig,
                 replenisher: ReplenishPolicy = None,
                 method: int = METHOD_DEDUCT_REFUND,
                 phase: int = 0) -> None:
        """``phase`` staggers this shaper's replenishment boundary so
        co-running shapers do not burst in lockstep (see
        :class:`~repro.core.replenish.ReplenishPolicy`)."""
        if method not in (self.METHOD_TIMESTAMP, self.METHOD_DEDUCT_REFUND):
            raise ValueError(f"unknown hybrid method {method}")
        self.state = CreditState(config)
        self.replenisher = replenisher or ResetReplenisher(config,
                                                           phase=phase)
        self.method = method
        #: cycle of the last released request (inter-arrival reference);
        #: boots "long ago" so the first request lands in the slowest bin.
        self._last_release: Optional[int] = None
        #: method 2: req_id -> bin the credit was deducted from
        self._pending_bin: Dict[int, int] = {}
        #: method 1: req_id -> release timestamp
        self._pending_stamp: Dict[int, int] = {}
        #: method 1: timestamp of the previous *confirmed* LLC miss
        self._last_confirmed_miss: Optional[int] = None
        # --- statistics ---
        self.released = 0
        self.stalled_requests = 0
        self.total_stall_cycles = 0
        self.refunds = 0

    # ------------------------------------------------------------------
    # configuration

    @property
    def config(self) -> BinConfig:
        return self.state.config

    @property
    def spec(self):
        return self.state.config.spec

    def reconfigure(self, config: BinConfig, now: int = 0,
                    reset_credits: bool = True) -> None:
        """Install a new bin allocation (OS/hypervisor register write)."""
        self.state.reconfigure(config, reset=reset_credits)
        self.replenisher = type(self.replenisher)(config)
        self.replenisher.reset_clock(now)

    def stall_forever(self) -> bool:
        return self.config.total_credits == 0

    # ------------------------------------------------------------------
    # issue path

    def _interarrival(self, cycle: int) -> int:
        if self._last_release is None:
            # Counter has been running since boot: slowest bin.
            return self.spec.lower_edge(self.spec.num_bins - 1)
        return cycle - self._last_release

    def bin_at(self, cycle: int) -> int:
        """Bin a request released at ``cycle`` would fall into."""
        return self.spec.bin_for_interarrival(self._interarrival(cycle))

    def earliest_issue(self, now: int) -> Optional[int]:
        """First cycle >= ``now`` at which a release is permitted.

        Walks forward through aging steps (a stalled request's growing
        inter-arrival time reaching a farther populated bin) and
        replenishment boundaries.  The walk probes *copies* of the credit
        state and replenishment clock -- speculating about the future must
        never advance the live clock, or a request issuing earlier than
        the probed boundary would leave the clock a period ahead of
        simulated time.
        """
        if self.stall_forever():
            return None
        # Catch the live state up to real time first (always safe).
        self.replenisher.apply_until(self.state, now)
        if self.state.find_deductible(self.bin_at(now)) is not None:
            # Fast exit: a credit is available right now.  The probe loop's
            # first iteration (clone, no-op apply, same find_deductible)
            # would return ``now``; skip the two state copies per call.
            return now

        probe_state = CreditState(self.config)
        probe_state.counts = list(self.state.counts)
        probe_policy = self.replenisher.clone()
        # Enough steps for every aging edge plus a full period of drip
        # slices, with slack; the reset policy needs only a handful.
        slices = getattr(probe_policy, "slices", 1)
        max_steps = 4 * (self.spec.num_bins + slices) + 16

        t = now
        for _ in range(max_steps):
            probe_policy.apply_until(probe_state, t)
            bin_index = self.bin_at(t)
            if probe_state.find_deductible(bin_index) is not None:
                return t
            candidates = []
            next_bin = probe_state.next_available_bin_at_or_above(
                bin_index + 1)
            if next_bin is not None and self._last_release is not None:
                candidates.append(self._last_release
                                  + self.spec.lower_edge(next_bin))
            candidates.append(probe_policy.next_boundary())
            future = [c for c in candidates if c > t]
            if not future:
                return None
            t = min(future)
        return None

    def issue(self, cycle: int, req_id: int = -1) -> None:
        """Commit a release at ``cycle``; deducts per the active method."""
        self.replenisher.apply_until(self.state, cycle)
        bin_index = self.bin_at(cycle)
        if self.method == self.METHOD_DEDUCT_REFUND:
            source = self.state.find_deductible(bin_index)
            if source is None:
                raise ValueError(
                    f"no credit available at cycle {cycle} (bin {bin_index})")
            self.state.deduct(source)
            if req_id >= 0:
                self._pending_bin[req_id] = source
        else:
            if req_id >= 0:
                self._pending_stamp[req_id] = cycle
        self._last_release = cycle
        self.released += 1

    def record_stall(self, cycles: int) -> None:
        """Bookkeeping hook for the core model."""
        if cycles > 0:
            self.stalled_requests += 1
            self.total_stall_cycles += cycles

    # ------------------------------------------------------------------
    # LLC feedback (hybrid operation, Section III-D)

    def on_llc_response(self, req_id: int, was_hit: bool) -> None:
        if self.method == self.METHOD_DEDUCT_REFUND:
            bin_index = self._pending_bin.pop(req_id, None)
            if bin_index is None:
                return
            if was_hit:
                self.state.refund(bin_index)
                self.refunds += 1
        else:
            stamp = self._pending_stamp.pop(req_id, None)
            if stamp is None:
                return
            if was_hit:
                return
            # Confirmed LLC miss: deduct using the inter-arrival time
            # between confirmed misses (timestamp comparison of method 1).
            if self._last_confirmed_miss is None:
                interarrival = self.spec.lower_edge(self.spec.num_bins - 1)
            else:
                interarrival = max(0, stamp - self._last_confirmed_miss)
            self._last_confirmed_miss = stamp
            bin_index = self.spec.bin_for_interarrival(interarrival)
            source = self.state.find_deductible(bin_index)
            if source is not None:
                self.state.deduct(source)

    # ------------------------------------------------------------------
    # introspection

    @property
    def pending_entries(self) -> int:
        """Occupancy of the pending table (sizes the hardware structure)."""
        return len(self._pending_bin) + len(self._pending_stamp)

    def credit_counts(self):
        """Copy of the live per-bin counters."""
        return self.state.snapshot()

    def credit_occupancy(self):
        """Per-bin ``(n_i, K_i)`` pairs -- the bound checker's probe.

        The analytic oracle (:mod:`repro.validate.bounds`) asserts
        ``n_i <= K_i`` for every bin from *outside* the credit machinery,
        so the check stays meaningful even when the contracts invariants
        inside :class:`~repro.core.credits.CreditState` are compiled out.
        Reads copies only; never perturbs the registers.
        """
        return list(zip(self.state.snapshot(), self.config.credits))

    def diagnostics(self) -> dict:
        """Plain-data state snapshot for starvation diagnostics.

        Consumed by the forward-progress watchdog when it raises
        :class:`~repro.resilience.watchdog.StarvationError`: enough to
        explain a stall (which bins are empty, what was bought, how many
        requests are parked) without re-running the simulation.
        """
        return {
            "method": self.method,
            "credits": self.state.snapshot(),
            "limits": list(self.config.credits),
            "total_credits": self.config.total_credits,
            "stall_forever": self.stall_forever(),
            "pending_entries": self.pending_entries,
            "released": self.released,
            "stalled_requests": self.stalled_requests,
            "total_stall_cycles": self.total_stall_cycles,
            "refunds": self.refunds,
        }
