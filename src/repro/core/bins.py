"""Bin geometry and configuration for the MITTS traffic shaper.

Terminology follows Table I of the paper:

==========  ==================================================================
``N``       total number of bins
``L``       time-interval length of each bin (10 CPU cycles in the paper)
``t_i``     inter-arrival time represented by ``bin_i``; requests with
            inter-arrival time in ``[t_i - L/2, t_i + L/2)`` fall into it
``n_i``     number of credits currently in ``bin_i``
``K_i``     number of credits replenished into ``bin_i`` each period
``T_r``     overall replenishment period
==========  ==================================================================

``BinSpec`` holds the geometry (N, L and the derived ``t_i`` centres);
``BinConfig`` adds a concrete credit allocation ``K`` and the derived
average-interval / average-bandwidth maths used throughout Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


#: paper default: ten bins of ten CPU cycles each
DEFAULT_NUM_BINS = 10
DEFAULT_INTERVAL_LENGTH = 10
#: the tape-out sizes each credit register at 10 bits
DEFAULT_MAX_CREDITS = 1024


@dataclass(frozen=True, slots=True)
class BinSpec:
    """Geometry of the shaper's bins: how inter-arrival time is quantised.

    ``t_i = L/2 + i*L`` so that bin 0 covers ``[0, L)``, bin 1 covers
    ``[L, 2L)`` and so on; the final bin is open-ended on the right (any
    request slower than the last bin edge matches the last bin).
    """

    num_bins: int = DEFAULT_NUM_BINS
    interval_length: int = DEFAULT_INTERVAL_LENGTH
    max_credits: int = DEFAULT_MAX_CREDITS

    def __post_init__(self) -> None:
        if self.num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        if self.interval_length < 1:
            raise ValueError("interval_length must be >= 1")
        if self.max_credits < 1:
            raise ValueError("max_credits must be >= 1")

    def center(self, index: int) -> float:
        """``t_i``, the representative inter-arrival time of ``bin_i``."""
        if not 0 <= index < self.num_bins:
            raise IndexError(f"bin index {index} out of range")
        return self.interval_length / 2 + index * self.interval_length

    @property
    def centers(self) -> Tuple[float, ...]:
        """All ``t_i`` values."""
        return tuple(self.center(i) for i in range(self.num_bins))

    def lower_edge(self, index: int) -> int:
        """Smallest inter-arrival time that falls in ``bin_index``."""
        if not 0 <= index < self.num_bins:
            raise IndexError(f"bin index {index} out of range")
        return index * self.interval_length

    def bin_for_interarrival(self, interarrival: int) -> int:
        """Which bin a request with the given inter-arrival time falls into.

        Inter-arrival times beyond the last bin edge clamp to the last bin
        (the paper notes L can be grown for intrinsically slow workloads;
        clamping is the hardware-faithful behaviour for a fixed geometry).
        """
        if interarrival < 0:
            raise ValueError("inter-arrival time must be non-negative")
        index = interarrival // self.interval_length
        return min(index, self.num_bins - 1)

    def bandwidth_of_bin(self, index: int, line_bytes: int = 64) -> float:
        """``b_i``: bytes/cycle a request stream at ``t_i`` spacing consumes."""
        return line_bytes / self.center(index)


@dataclass(frozen=True, slots=True)
class BinConfig:
    """A bin geometry plus a concrete credit allocation ``K``.

    This is the unit the genetic algorithm searches over and the unit an
    IaaS customer purchases.
    """

    spec: BinSpec
    credits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.credits) != self.spec.num_bins:
            raise ValueError(
                f"credit vector has {len(self.credits)} entries for "
                f"{self.spec.num_bins} bins")
        for value in self.credits:
            if value < 0:
                raise ValueError("credits must be non-negative")
            if value > self.spec.max_credits:
                raise ValueError(
                    f"credit count {value} exceeds max {self.spec.max_credits}")

    @classmethod
    def from_credits(cls, credits: Sequence[int],
                     spec: Optional[BinSpec] = None) -> "BinConfig":
        """Convenience constructor; defaults to the paper's 10x10 geometry."""
        if spec is None:
            spec = BinSpec()
        return cls(spec=spec, credits=tuple(int(c) for c in credits))

    @classmethod
    def single_bin(cls, index: int, credits: int,
                   spec: Optional[BinSpec] = None) -> "BinConfig":
        """A static configuration: all credits in one bin (Section IV-G3)."""
        if spec is None:
            spec = BinSpec()
        vector = [0] * spec.num_bins
        vector[index] = credits
        return cls(spec=spec, credits=tuple(vector))

    @classmethod
    def unlimited(cls, spec: Optional[BinSpec] = None) -> "BinConfig":
        """Effectively unshaped: max credits in the fastest bin.

        Any request may spend a bin-0 credit (its inter-arrival time is
        necessarily >= bin 0's), and the allocation sustains one request
        per ``t_0`` cycles -- above any rate a single L1 port generates.
        """
        if spec is None:
            spec = BinSpec()
        return cls.single_bin(0, spec.max_credits, spec)

    @property
    def total_credits(self) -> int:
        """Total transactions allowed per replenishment period."""
        return sum(self.credits)

    def replenish_period(self) -> int:
        """``T_r``: the period over which the allocation's credits last.

        Section III-B2 sizes the period so that "ideally all credits
        should be used up within this period": spending every credit at
        its bin's nominal spacing takes ``sum_i K_i * t_i`` cycles, which
        we use as ``T_r``.  (The paper's formula substitutes the hardware
        bound ``K_max`` for ``K_i``, which sizes the *registers*; using the
        configuration's own credits makes the enforced average bandwidth
        equal the allocation's ``1 / I_avg``, the identity Section IV-C's
        equal-bandwidth constraint relies on.)
        """
        weighted = sum(k * t for k, t in zip(self.credits, self.spec.centers))
        return max(1, round(weighted))

    def average_interval(self) -> float:
        """``I_avg = sum(n_i * t_i) / sum(n_i)`` (Section IV-C)."""
        total = self.total_credits
        if total == 0:
            return float("inf")
        weighted = sum(n * t for n, t in zip(self.credits, self.spec.centers))
        return weighted / total

    def average_bandwidth(self, period: Optional[int] = None,
                          line_bytes: int = 64) -> float:
        """Average bytes/cycle the configuration permits over a period.

        ``B_avg = total_credits * line_bytes / T_r`` -- total traffic the
        credits allow divided by the replenishment period.
        """
        if period is None:
            period = self.replenish_period()
        if period <= 0:
            raise ValueError("period must be positive")
        return self.total_credits * line_bytes / period

    def with_credits(self, index: int, value: int) -> "BinConfig":
        """Functional update of one bin's credit count."""
        vector = list(self.credits)
        vector[index] = value
        return BinConfig(spec=self.spec, credits=tuple(vector))

    def scaled(self, factor: float) -> "BinConfig":
        """Scale all bins by ``factor``, rounding and clamping to the spec."""
        vector = [min(self.spec.max_credits, max(0, round(c * factor)))
                  for c in self.credits]
        return BinConfig(spec=self.spec, credits=tuple(vector))

    def as_list(self) -> List[int]:
        return list(self.credits)
