"""Full-system assembly: cores + shapers + shared LLC + MC + DRAM.

:class:`SimSystem` wires one :class:`~repro.sim.core_model.CoreModel` per
trace through a per-core :class:`~repro.sim.core_model.ShaperPort` (holding
any :class:`~repro.core.limiter.SourceLimiter` -- a MITTS shaper, a static
limiter, or a pass-through) into a shared banked LLC, a memory controller
with a pluggable scheduling policy, and the DDR3 timing model.  This is the
SDSim substitute described in DESIGN.md.

Typical use::

    traces = [trace_for("mcf"), trace_for("libquantum")]
    system = SimSystem(traces, limiters=[MittsShaper(cfg1), MittsShaper(cfg2)])
    stats = system.run(200_000)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..analysis import contracts
from ..core.limiter import NoLimiter, SourceLimiter
from ..dram.device import DramDevice
from ..dram.timing import DDR3_1333, DramTiming
from .batched import (BatchedCoreModel, BatchedLLC,
                      BatchedMemoryController)
from .cache import Cache, CacheGeometry
from .core_model import CoreModel, ShaperPort
from .engine import Engine
from .llc import SharedLLC
from .memctrl import MemoryController, MemorySchedulerProtocol
from .request import MemoryRequest, RequestIdAllocator
from .soa import dram_coord_table
from .stats import CoreStats, SystemStats
from .wheel import WheelEngine


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Table II base configuration (single-program LLC is 64KB; mixes 1MB)."""

    l1_size: int = 32 * 1024
    l1_ways: int = 4
    llc_size: int = 1024 * 1024
    llc_ways: int = 8
    llc_hit_latency: int = 30
    llc_banks: int = 8
    llc_bank_busy: int = 4
    line_bytes: int = 64
    mc_queue_depth: int = 32
    timing: DramTiming = field(default_factory=lambda: DDR3_1333)
    #: DRAM address interleaving: "row" (DRAMSim2 default) or "bank"
    dram_mapping: str = "row"
    #: histogram bucket width for inter-arrival stats (= bin length L)
    interarrival_bucket: int = 10
    #: MLP used when a trace has no profile-specified value
    default_mlp: int = 4
    #: core model: "simple" (MSHR-capped MLP) or "window" (Table II's
    #: 4-wide, 128-entry instruction window ROB model)
    core_model: str = "simple"
    #: model the on-chip mesh between cores and LLC banks
    noc_enabled: bool = False
    #: per-hop latency of the mesh, in cycles
    noc_hop_latency: int = 2
    #: cycles a flit occupies each directed link behind itself
    noc_link_occupancy: int = 1
    #: instruction-window size for the "window" core model (Table II)
    window_size: int = 128
    #: dispatch/retire width for the "window" core model (Table II)
    issue_width: int = 4
    #: MSHRs per core for the "window" core model (Table II)
    mshrs: int = 8
    #: event kernel: "batched" (calendar-queue wheel + fused fast-path
    #: components when contracts are off) or "heap" (the binary-heap
    #: oracle engine with the original checked components).  Both produce
    #: bit-identical results (pinned by the golden-fingerprint suite).
    kernel: str = "batched"
    #: macro-tick shaper replenishment: "auto" attaches the vectorized
    #: per-window pump when every shaper is eligible (see
    #: :mod:`repro.core.macrotick`), "force" raises if not eligible,
    #: "off" keeps lazy per-shaper replenishment.  Only active on the
    #: fused batched path; bit-neutral either way.
    macro_tick: str = "auto"


#: Table II single-program configuration (64KB private L2).
SINGLE_PROGRAM_CONFIG = SystemConfig(llc_size=64 * 1024)
#: Table II multi-program configuration (1MB shared L2).
MULTI_PROGRAM_CONFIG = SystemConfig(llc_size=1024 * 1024)
#: Section IV-D1 "current day multicore" configuration.
LARGE_LLC_CONFIG = SystemConfig(llc_size=8 * 1024 * 1024)

# Scaled configurations for the reduced ROIs of pure-Python runs (DESIGN.md
# section 6): the paper's 1MB shared LLC holds ~16k lines and its 32KB L1s
# 512, which a 100-200k cycle ROI never pressures; scaling the hierarchy
# with the ROI preserves the capacity-contention ratios (working set : L1 :
# LLC) the evaluation depends on.  The paper-sized configs above remain
# available for paper-scale runs.
#: scaled stand-in for the Table II single-program system (32KB L1 / 64KB L2)
SCALED_SINGLE_CONFIG = SystemConfig(l1_size=8 * 1024, llc_size=64 * 1024)
#: scaled stand-in for the 1MB shared multi-program LLC
SCALED_MULTI_CONFIG = SystemConfig(l1_size=8 * 1024, llc_size=256 * 1024)
#: scaled stand-in for the 8MB "current day multicore" LLC (Figure 15)
SCALED_LARGE_LLC_CONFIG = SystemConfig(l1_size=8 * 1024,
                                       llc_size=1024 * 1024)


class _NocSender:
    """Picklable request path through the mesh: core tile -> LLC bank tile.

    A closure over ``(system, core_id)`` would work identically at run
    time but cannot be pickled, and the whole point of
    :meth:`SimSystem.save_checkpoint` is that every callable reachable
    from the event heap or a component's ``send`` slot serialises.
    """

    __slots__ = ("system", "core_id")

    def __init__(self, system: "SimSystem", core_id: int) -> None:
        self.system = system
        self.core_id = core_id

    def __call__(self, request: MemoryRequest) -> None:
        from .noc import bank_tile

        system = self.system
        line = request.address // system.config.line_bytes
        bank = line % system.config.llc_banks
        dst = bank_tile(system.noc, bank, system.config.llc_banks)
        arrive = system.noc.traverse(self.core_id % system.noc.tiles, dst,
                                     system.engine.now)
        system.engine.schedule(arrive, system.llc.lookup, request)


class _PeriodicCallback:
    """Self-rescheduling wrapper behind :meth:`SimSystem.every`.

    Holds ``(engine, period, callback)`` as plain attributes instead of
    closing over them so a checkpoint taken between ticks serialises the
    pending event (provided ``callback`` itself is picklable -- a bound
    method of a reachable object qualifies, a lambda does not).
    """

    __slots__ = ("engine", "period", "callback")

    def __init__(self, engine: Engine, period: int,
                 callback: Callable[[], None]) -> None:
        self.engine = engine
        self.period = period
        self.callback = callback

    def __call__(self) -> None:
        self.callback()
        self.engine.schedule_in(self.period, self)


class _FcfsFallback(MemorySchedulerProtocol):
    """Oldest-first policy used when no scheduler is supplied.

    The controller appends arrivals in order and refills from its overflow
    FIFO in order, so the scheduler-visible queue is always sorted by
    ``mc_arrival_cycle``: the oldest request *is* the head.  ``queue[0]``
    therefore selects exactly what ``min(queue, key=arrival)`` did (ties
    resolved to the earliest-queued request), without an O(n) scan.
    """

    __slots__ = ()

    selects_head = True

    def select(self, queue, now, controller):
        if not queue:
            return None
        return queue[0]


class SimSystem:
    """A simulated multicore with per-core source limiters."""

    __slots__ = ("config", "engine", "request_ids", "scheduler", "stats",
                 "dram", "mc", "llc", "noc", "ports", "cores", "watchdog",
                 "_pump", "_direct_respond", "_started")

    def __init__(self, traces: Sequence,
                 config: Optional[SystemConfig] = None,
                 limiters: Optional[Sequence[SourceLimiter]] = None,
                 scheduler: Optional[MemorySchedulerProtocol] = None,
                 mlps: Optional[Sequence[int]] = None) -> None:
        if not traces:
            raise ValueError("at least one trace is required")
        self.config = config or MULTI_PROGRAM_CONFIG
        kernel = self.config.kernel
        if kernel == "batched":
            self.engine = WheelEngine()
        elif kernel == "heap":
            self.engine = Engine()
        else:
            raise ValueError(f"unknown kernel {kernel!r}; "
                             f"known: ('heap', 'batched')")
        # The fused fast-path components are bit-identical transcriptions
        # of the checked ones but carry no invariant instrumentation, so
        # they assemble only when contracts are off; REPRO_CONTRACTS=1
        # pairs the wheel engine with the original (checked) components.
        fused = kernel == "batched" and not contracts.is_enabled()
        #: per-system request-id source: ids always start at 0 for a new
        #: system, so back-to-back systems in one process are bit-identical
        self.request_ids = RequestIdAllocator()
        num_cores = len(traces)
        if limiters is None:
            limiters = [NoLimiter() for _ in range(num_cores)]
        if len(limiters) != num_cores:
            raise ValueError("one limiter per trace is required")
        self.scheduler = scheduler or _FcfsFallback()

        self.stats = SystemStats(
            cores=[CoreStats(core_id=i) for i in range(num_cores)])
        self.dram = DramDevice(self.config.timing,
                               mapping_scheme=self.config.dram_mapping)
        if fused:
            coord_table = {}
            for trace in traces:
                sub = dram_coord_table(trace, self.config.timing,
                                       self.config.dram_mapping)
                if sub is None:
                    coord_table = None
                    break
                coord_table.update(sub)
            self.mc = BatchedMemoryController(
                self.engine, self.dram, self.scheduler,
                complete=self._on_dram_complete,
                queue_depth=self.config.mc_queue_depth, stats=self.stats,
                coord_table=coord_table)
        else:
            self.mc = MemoryController(
                self.engine, self.dram, self.scheduler,
                complete=self._on_dram_complete,
                queue_depth=self.config.mc_queue_depth, stats=self.stats)
        llc_cache = Cache(CacheGeometry(self.config.llc_size,
                                        self.config.llc_ways,
                                        self.config.line_bytes))
        if fused:
            self.llc = BatchedLLC(self.engine, llc_cache,
                                  forward_miss=contracts.hot_bind(
                                      self.mc.enqueue),
                                  respond=self._on_llc_determination,
                                  hit_latency=self.config.llc_hit_latency,
                                  banks=self.config.llc_banks,
                                  bank_busy=self.config.llc_bank_busy,
                                  stats=self.stats,
                                  req_ids=self.request_ids,
                                  respond_hit=self._fast_hit,
                                  respond_miss=self._fast_miss)
        else:
            self.llc = SharedLLC(self.engine, llc_cache,
                                 forward_miss=contracts.hot_bind(
                                     self.mc.enqueue),
                                 respond=self._on_llc_determination,
                                 hit_latency=self.config.llc_hit_latency,
                                 banks=self.config.llc_banks,
                                 bank_busy=self.config.llc_bank_busy,
                                 stats=self.stats,
                                 req_ids=self.request_ids)

        self.noc = None
        if self.config.noc_enabled:
            from .noc import MeshNoc
            self.noc = MeshNoc(self.engine, tiles=max(num_cores,
                                                      self.config.llc_banks),
                               hop_latency=self.config.noc_hop_latency,
                               link_occupancy=self.config.noc_link_occupancy)

        self.ports: List[ShaperPort] = []
        self.cores: List[CoreModel] = []
        for core_id, trace in enumerate(traces):
            send = self.llc.lookup if self.noc is None \
                else self._noc_send(core_id)
            port = ShaperPort(
                self.engine, limiters[core_id], send=send,
                stats=self.stats.cores[core_id],
                interarrival_bucket=self.config.interarrival_bucket)
            l1 = Cache(CacheGeometry(self.config.l1_size,
                                     self.config.l1_ways,
                                     self.config.line_bytes))
            if self.config.core_model == "window":
                from .ooo_core import WindowCoreModel
                core = WindowCoreModel(
                    core_id, self.engine, trace, l1, port,
                    self.stats.cores[core_id],
                    window=self.config.window_size,
                    width=self.config.issue_width,
                    mshrs=self.config.mshrs,
                    line_bytes=self.config.line_bytes,
                    req_ids=self.request_ids)
            elif self.config.core_model == "simple":
                mlp = self._mlp_for(trace, core_id, mlps)
                core_cls = BatchedCoreModel if fused else CoreModel
                core = core_cls(core_id, self.engine, trace, l1,
                                port, self.stats.cores[core_id], mlp=mlp,
                                line_bytes=self.config.line_bytes,
                                req_ids=self.request_ids)
            else:
                raise ValueError(
                    f"unknown core model {self.config.core_model!r}")
            self.ports.append(port)
            self.cores.append(core)
        if fused:
            # Fused completion path: ``_on_dram_complete`` is exactly
            # "ignore writebacks, else core.on_response", so the batched
            # controller may respond to cores directly.
            self.mc.attach_cores(self.cores)
        #: ``_fast_hit`` may inline ``core.on_response`` (no NoC hop, all
        #: cores batched with power-of-two lines)
        self._direct_respond = (fused and self.noc is None and all(
            type(core) is BatchedCoreModel and core._line_shift is not None
            for core in self.cores))
        #: optional forward-progress monitor (see repro.resilience.watchdog)
        self.watchdog = None
        #: macro-tick replenishment pump (fused path only; may be None)
        self._pump = None
        macro_tick = self.config.macro_tick
        if macro_tick not in ("auto", "force", "off"):
            raise ValueError(
                f"unknown macro_tick mode {macro_tick!r}; "
                f"known: ('auto', 'force', 'off')")
        if macro_tick != "off" and kernel == "batched":
            from ..core.macrotick import MacroTickPump
            if fused:
                self._pump = MacroTickPump.attach(self, macro_tick)
            elif macro_tick == "force" \
                    and MacroTickPump.eligible(self) is None:
                # Contracts runs never attach the pump, but an ineligible
                # "force" must fail identically in both modes -- config
                # validity cannot depend on REPRO_CONTRACTS.
                raise ValueError(
                    "macro_tick='force' requires every port limiter to be "
                    "a method-2 MittsShaper with a ResetReplenisher "
                    "sharing one period and one aligned boundary")
        self._started = False

    def __setstate__(self, state) -> None:
        """Checkpoint restore: default slot restore + column re-binding.

        :meth:`BatchedCoreModel._bind_columns` consults the port and LLC
        to decide its fusion level, but during a cyclic unpickle a core's
        ``__setstate__`` can run while those objects are still stateless
        shells (reached through a parked port's pending wake event), in
        which case the core conservatively binds unfused.  The system is
        the graph root, so its ``__setstate__`` runs last -- re-binding
        here (idempotent, pure derivation) restores every core's fusion
        against the fully restored graph.
        """
        plain, slots = state if isinstance(state, tuple) else (state, None)
        for source in (plain, slots):
            if source:
                for name, value in source.items():
                    setattr(self, name, value)
        for core in self.cores:
            rebind = getattr(core, "_bind_columns", None)
            if rebind is not None:
                rebind()

    def _mlp_for(self, trace, core_id: int,
                 mlps: Optional[Sequence[int]]) -> int:
        if mlps is not None:
            return mlps[core_id]
        profile = getattr(trace, "profile", None)
        if profile is not None and hasattr(profile, "mlp"):
            return profile.mlp
        return self.config.default_mlp

    # ------------------------------------------------------------------
    # response plumbing

    def _noc_send(self, core_id: int) -> _NocSender:
        """Request path through the mesh: core tile -> LLC bank tile."""
        return _NocSender(self, core_id)

    def _on_llc_determination(self, request: MemoryRequest,
                              was_hit: bool) -> None:
        """LLC has classified the request: feed the shaper, maybe the core."""
        if request.shaper_bin == -2:  # writeback, fire-and-forget
            return
        limiter = self.ports[request.core_id].limiter
        limiter.on_llc_response(request.req_id, was_hit)
        if was_hit:
            if self.noc is not None:
                from .noc import bank_tile
                line = request.address // self.config.line_bytes
                bank = line % self.config.llc_banks
                src = bank_tile(self.noc, bank, self.config.llc_banks)
                arrive = self.noc.traverse(
                    src, request.core_id % self.noc.tiles, self.engine.now)
                self.engine.schedule(
                    arrive, self.cores[request.core_id].on_response, request)
            else:
                self.cores[request.core_id].on_response(request)
        else:
            stats = self.stats.cores[request.core_id]
            if stats.last_mem_request_cycle >= 0:
                stats.record_mem_interarrival(
                    self.engine.now - stats.last_mem_request_cycle,
                    self.config.interarrival_bucket)
            stats.last_mem_request_cycle = self.engine.now

    def _fast_hit(self, request: MemoryRequest) -> None:
        """Fused-path hit determination: ``_on_llc_determination`` with the
        ``was_hit=True`` branch pre-selected (no per-event bool dispatch)
        and -- on the direct-respond layout -- the ``core.on_response``
        body inlined."""
        if request.shaper_bin == -2:
            return
        core_id = request.core_id
        port = self.ports[core_id]
        if not port._unshaped:
            port.limiter.on_llc_response(request.req_id, True)
        core = self.cores[core_id]
        if self._direct_respond:
            # inline core.on_response(request) (CoreModel transcription)
            now = self.engine.now
            core.outstanding.pop(request.address >> core._line_shift, None)
            request.complete_cycle = now
            cstats = core.stats
            cstats.total_latency += now - request.l1_miss_cycle
            cstats.post_shaper_latency += now - request.issue_cycle
            if core._blocked:
                core._blocked = False
                cstats.memory_stall_cycles += now - core._block_start
                core._run()
        elif self.noc is None:
            core.on_response(request)
        else:
            from .noc import bank_tile
            line = request.address // self.config.line_bytes
            bank = line % self.config.llc_banks
            src = bank_tile(self.noc, bank, self.config.llc_banks)
            arrive = self.noc.traverse(
                src, core_id % self.noc.tiles, self.engine.now)
            self.engine.schedule(arrive, core.on_response, request)

    def _fast_miss(self, request: MemoryRequest) -> None:
        """Fused-path miss determination, fused with the miss forward.

        The tail is the body of ``MemoryController.enqueue`` (what
        ``llc.forward_miss`` is wired to on this path, contract-free since
        fused systems only assemble with contracts off), saving two call
        frames on every LLC-miss determination event.
        """
        now = self.engine.now
        if request.shaper_bin != -2:
            port = self.ports[request.core_id]
            if not port._unshaped:
                port.limiter.on_llc_response(request.req_id, False)
            stats = self.stats.cores[request.core_id]
            last = stats.last_mem_request_cycle
            if last >= 0:
                hist = stats.mem_interarrival._counts
                gap_bin = (now - last) // self.config.interarrival_bucket
                if gap_bin < len(hist):
                    hist[gap_bin] += 1
                else:
                    stats.mem_interarrival.add(gap_bin)
            stats.last_mem_request_cycle = now
        # inline self.llc.forward_miss(request) == mc.enqueue(request)
        mc = self.mc
        request.mc_arrival_cycle = now
        queue = mc.queue
        sysstats = self.stats
        if len(queue) >= mc.queue_depth:
            mc.overflow.append(request)
            sysstats.queue_backpressure_events += 1
        else:
            queue.append(request)
        depth = len(queue) + len(mc.overflow)
        if depth > sysstats.peak_queue_depth:
            sysstats.peak_queue_depth = depth
        if mc._inflight < mc._max_inflight:
            mc._dispatch()

    def _on_dram_complete(self, request: MemoryRequest) -> None:
        if request.shaper_bin == -2:
            return
        self.cores[request.core_id].on_response(request)

    # ------------------------------------------------------------------
    # control

    def set_limiter(self, core_id: int, limiter: SourceLimiter) -> None:
        """Swap a core's source limiter (online reconfiguration)."""
        self.ports[core_id].set_limiter(limiter)

    def limiter(self, core_id: int) -> SourceLimiter:
        return self.ports[core_id].limiter

    def every(self, period: int, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` every ``period`` cycles (tuner epochs)."""
        if period < 1:
            raise ValueError("period must be >= 1")
        self.engine.schedule_in(period,
                                _PeriodicCallback(self.engine, period,
                                                  callback))

    # ------------------------------------------------------------------
    # resilience (checkpoint/restore + forward-progress watchdog)

    def save_checkpoint(self, path) -> None:
        """Serialise the complete system state to ``path``.

        Thin delegate to :func:`repro.resilience.checkpoint.save_checkpoint`
        (imported lazily so the base simulator has no hard dependency on
        the resilience package).
        """
        from ..resilience.checkpoint import save_checkpoint
        save_checkpoint(self, path)

    @staticmethod
    def load_checkpoint(path) -> "SimSystem":
        """Restore a system previously saved with :meth:`save_checkpoint`."""
        from ..resilience.checkpoint import load_checkpoint
        return load_checkpoint(path)

    def attach_watchdog(self, config=None):
        """Attach a forward-progress watchdog (see
        :class:`repro.resilience.watchdog.ForwardProgressWatchdog`).

        Returns the watchdog so callers can inspect it; attaching twice
        replaces the previous instance's future checks (the old one stops
        rescheduling once detached).
        """
        from ..resilience.watchdog import ForwardProgressWatchdog
        if self.watchdog is not None:
            self.watchdog.detach()
        self.watchdog = ForwardProgressWatchdog(self, config)
        self.watchdog.attach()
        return self.watchdog

    def run(self, cycles: int) -> SystemStats:
        """Run (or continue) the simulation for ``cycles`` more cycles."""
        if not self._started:
            for core in self.cores:
                core.start()
            self._started = True
        horizon = self.engine.now + cycles
        self.engine.run(until=horizon)
        self.stats.cycles = self.engine.now
        self.stats.row_hits = self.dram.row_hits
        self.stats.row_misses = self.dram.row_misses
        return self.stats

    # ------------------------------------------------------------------
    # observation probes (read-only; used by repro.validate's BoundChecker)

    def mc_occupancy(self) -> Tuple[int, int, int]:
        """``(visible, overflow, inflight)`` MC occupancy right now."""
        mc = self.mc
        return len(mc.queue), len(mc.overflow), mc._inflight

    def mc_demand_depths(self) -> List[int]:
        """Per-core count of *demand* requests queued at the MC.

        Counts scheduler-visible plus overflow entries (writebacks,
        tagged ``shaper_bin == -2``, are excluded); in-flight DRAM
        requests have left the queue and are not attributable per core
        without extra bookkeeping, so they are not counted here.
        """
        depths = [0] * len(self.cores)
        for request in self.mc.queue:
            if request.shaper_bin != -2:
                depths[request.core_id] += 1
        for request in self.mc.overflow:
            if request.shaper_bin != -2:
                depths[request.core_id] += 1
        return depths

    def outstanding_caps(self) -> List[int]:
        """Per-core cap on concurrently outstanding demand misses.

        The MSHR-style bound of each core model: ``mlp`` for the simple
        model, ``mshrs`` for the window model.  This is the structural
        term of the analytic backlog bounds -- a core can never have more
        demand requests below its L1 than it has miss slots.
        """
        caps = []
        for core in self.cores:
            cap = getattr(core, "mlp", None)
            if cap is None:
                cap = getattr(core, "mshrs", None)
            if cap is None:
                cap = self.config.mshrs
            caps.append(cap)
        return caps

    # ------------------------------------------------------------------
    # derived results

    def work_rates(self) -> List[float]:
        """Per-core work-cycles retired per wall cycle (progress rate)."""
        cycles = max(1, self.stats.cycles)
        return [core.work_cycles / cycles for core in self.stats.cores]


def single_config(llc_size: int = 64 * 1024, **overrides) -> SystemConfig:
    """A single-program SystemConfig with optional field overrides."""
    return replace(SINGLE_PROGRAM_CONFIG, llc_size=llc_size, **overrides)
