"""Multicore simulator substrate (the paper's SDSim equivalent)."""

from .cache import Cache, CacheGeometry
from .core_model import CoreModel, ShaperPort
from .engine import Engine
from .llc import SharedLLC
from .memctrl import MemoryController, MemorySchedulerProtocol
from .noc import MeshNoc
from .ooo_core import WindowCoreModel
from .request import MemoryRequest
from .stats import CoreStats, SystemStats
from .system import (LARGE_LLC_CONFIG, MULTI_PROGRAM_CONFIG,
                     SCALED_LARGE_LLC_CONFIG, SCALED_MULTI_CONFIG,
                     SCALED_SINGLE_CONFIG, SINGLE_PROGRAM_CONFIG, SimSystem, SystemConfig,
                     single_config)

__all__ = [
    "Cache",
    "CacheGeometry",
    "CoreModel",
    "CoreStats",
    "Engine",
    "LARGE_LLC_CONFIG",
    "MULTI_PROGRAM_CONFIG",
    "MemoryController",
    "MemoryRequest",
    "MemorySchedulerProtocol",
    "MeshNoc",
    "SCALED_LARGE_LLC_CONFIG",
    "SCALED_MULTI_CONFIG",
    "SCALED_SINGLE_CONFIG",
    "SINGLE_PROGRAM_CONFIG",
    "SharedLLC",
    "ShaperPort",
    "SimSystem",
    "SystemConfig",
    "SystemStats",
    "WindowCoreModel",
    "single_config",
]
