"""Per-core and system-wide statistics collection.

Statistics are plain counters updated inline by the simulator components.
``CoreStats.snapshot()`` supports the online genetic algorithm, which needs
per-epoch deltas of the same counters (request service rates, stall cycles)
to estimate application slowdown the way MISE does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CoreStats:
    """Counters for one core / one program in the simulated system."""

    core_id: int = 0
    #: memory accesses issued by the core (L1 lookups)
    accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    #: demand requests fully serviced by DRAM
    dram_requests: int = 0
    #: writeback (dirty-victim) requests serviced by DRAM
    writebacks: int = 0
    #: cycles the core was stalled by the MITTS shaper / source throttle
    shaper_stall_cycles: int = 0
    #: cycles the core was stalled waiting for MSHRs / data
    memory_stall_cycles: int = 0
    #: total request latency accumulated (for average latency)
    total_latency: int = 0
    #: latency accumulated from shaper release to completion (excludes
    #: time spent stalled in the shaper -- the memory system's own delay)
    post_shaper_latency: int = 0
    #: trace work-cycles retired -- progress measure used for slowdowns
    work_cycles: int = 0
    #: number of trace events retired
    retired: int = 0
    #: inter-arrival histogram of issued (post-shaper) L1-miss requests
    interarrival: Dict[int, int] = field(default_factory=dict)
    #: cycle of the last issued (post-shaper) memory request
    last_issue_cycle: int = -1
    #: inter-arrival histogram of *memory* requests (LLC misses) -- the
    #: stream Figures 1 and 2 plot
    mem_interarrival: Dict[int, int] = field(default_factory=dict)
    #: cycle of the last LLC-miss (memory) request
    last_mem_request_cycle: int = -1

    def record_interarrival(self, gap: int, bucket_width: int = 10) -> None:
        """Accumulate ``gap`` cycles into the post-shaper histogram."""
        bucket = gap // bucket_width
        self.interarrival[bucket] = self.interarrival.get(bucket, 0) + 1

    def record_mem_interarrival(self, gap: int,
                                bucket_width: int = 10) -> None:
        """Accumulate ``gap`` cycles into the memory-request histogram."""
        bucket = gap // bucket_width
        self.mem_interarrival[bucket] = \
            self.mem_interarrival.get(bucket, 0) + 1

    @property
    def average_latency(self) -> float:
        """Mean end-to-end latency of DRAM-serviced requests."""
        if self.dram_requests == 0:
            return 0.0
        return self.total_latency / self.dram_requests

    @property
    def l1_miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.l1_misses / self.accesses

    def snapshot(self) -> Dict[str, int]:
        """Copy of the scalar counters, for epoch-delta computation."""
        return {
            "accesses": self.accesses,
            "l1_misses": self.l1_misses,
            "llc_hits": self.llc_hits,
            "llc_misses": self.llc_misses,
            "dram_requests": self.dram_requests,
            "writebacks": self.writebacks,
            "shaper_stall_cycles": self.shaper_stall_cycles,
            "memory_stall_cycles": self.memory_stall_cycles,
            "total_latency": self.total_latency,
            "post_shaper_latency": self.post_shaper_latency,
            "work_cycles": self.work_cycles,
            "retired": self.retired,
        }

    @staticmethod
    def delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
        """Element-wise difference of two snapshots."""
        return {key: after[key] - before[key] for key in after}


@dataclass
class SystemStats:
    """System-wide statistics for one simulation run."""

    cores: List[CoreStats] = field(default_factory=list)
    #: total cycles simulated
    cycles: int = 0
    #: DRAM row-buffer hits / misses (memory-controller wide)
    row_hits: int = 0
    row_misses: int = 0
    #: peak occupancy observed in the MC transaction queue
    peak_queue_depth: int = 0
    #: requests rejected (backpressured) because the MC queue was full
    queue_backpressure_events: int = 0

    def core(self, core_id: int) -> CoreStats:
        return self.cores[core_id]

    @property
    def total_dram_requests(self) -> int:
        """All DRAM transactions, demand plus writeback."""
        return sum(core.dram_requests + core.writebacks
                   for core in self.cores)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        if total == 0:
            return 0.0
        return self.row_hits / total

    def bandwidth_bytes_per_cycle(self, line_bytes: int = 64) -> float:
        """Average delivered DRAM bandwidth over the run."""
        if self.cycles == 0:
            return 0.0
        return self.total_dram_requests * line_bytes / self.cycles
