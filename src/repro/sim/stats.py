"""Per-core and system-wide statistics collection.

Statistics are plain counters updated inline by the simulator components.
``CoreStats.snapshot()`` supports the online genetic algorithm, which needs
per-epoch deltas of the same counters (request service rates, stall cycles)
to estimate application slowdown the way MISE does.

``SystemStats.snapshot()`` extends that to the whole system (all cores,
both inter-arrival histograms, DRAM row stats) and
``SystemStats.fingerprint()`` hashes it canonically -- the bit-identity
oracle the event-kernel fast path is pinned against
(``tests/test_golden_fingerprints.py``).
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


class BucketHistogram(Mapping):
    """Dense list-indexed histogram with a dict-like read interface.

    Inter-arrival buckets are small non-negative integers (``gap // L``),
    so a plain list indexed by bucket beats a hash table on the record
    path -- one bounds check and an integer increment per sample instead
    of hashing.  Reads present the familiar mapping view (only buckets
    that were ever hit appear as keys), so existing consumers --
    ``dict(hist)``, ``hist.values()``, equality against plain dicts --
    keep working unchanged.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping = None) -> None:
        self._counts: List[int] = []
        if counts:
            for bucket, count in sorted(counts.items()):
                self._counts.extend(
                    [0] * (bucket + 1 - len(self._counts)))
                self._counts[bucket] = count

    def add(self, bucket: int) -> None:
        """Record one sample in ``bucket`` (a non-negative integer)."""
        counts = self._counts
        if bucket >= len(counts):
            if bucket < 0:
                raise ValueError(f"histogram bucket must be >= 0, "
                                 f"got {bucket}")
            counts.extend([0] * (bucket + 1 - len(counts)))
        counts[bucket] += 1

    # -- mapping interface over the non-empty buckets ------------------

    def __getitem__(self, bucket: int) -> int:
        counts = self._counts
        if isinstance(bucket, int) and 0 <= bucket < len(counts):
            count = counts[bucket]
            if count:
                return count
        raise KeyError(bucket)

    def __iter__(self) -> Iterator[int]:
        return (bucket for bucket, count in enumerate(self._counts)
                if count)

    def __len__(self) -> int:
        return sum(1 for count in self._counts if count)

    def __bool__(self) -> bool:
        return any(self._counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BucketHistogram):
            return dict(self) == dict(other)
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"BucketHistogram({dict(self)!r})"


@dataclass(slots=True)
class CoreStats:
    """Counters for one core / one program in the simulated system.

    ``slots=True``: these counters are incremented on every simulated
    access, so instances carry no per-object ``__dict__`` and attribute
    access takes the fixed-offset path.
    """

    core_id: int = 0
    #: memory accesses issued by the core (L1 lookups)
    accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    #: demand requests fully serviced by DRAM
    dram_requests: int = 0
    #: writeback (dirty-victim) requests serviced by DRAM
    writebacks: int = 0
    #: cycles the core was stalled by the MITTS shaper / source throttle
    shaper_stall_cycles: int = 0
    #: cycles the core was stalled waiting for MSHRs / data
    memory_stall_cycles: int = 0
    #: total request latency accumulated (for average latency)
    total_latency: int = 0
    #: latency accumulated from shaper release to completion (excludes
    #: time spent stalled in the shaper -- the memory system's own delay)
    post_shaper_latency: int = 0
    #: trace work-cycles retired -- progress measure used for slowdowns
    work_cycles: int = 0
    #: number of trace events retired
    retired: int = 0
    #: inter-arrival histogram of issued (post-shaper) L1-miss requests
    interarrival: BucketHistogram = field(default_factory=BucketHistogram)
    #: cycle of the last issued (post-shaper) memory request
    last_issue_cycle: int = -1
    #: inter-arrival histogram of *memory* requests (LLC misses) -- the
    #: stream Figures 1 and 2 plot
    mem_interarrival: BucketHistogram = field(
        default_factory=BucketHistogram)
    #: cycle of the last LLC-miss (memory) request
    last_mem_request_cycle: int = -1

    def record_interarrival(self, gap: int, bucket_width: int = 10) -> None:
        """Accumulate ``gap`` cycles into the post-shaper histogram."""
        self.interarrival.add(gap // bucket_width)

    def record_mem_interarrival(self, gap: int,
                                bucket_width: int = 10) -> None:
        """Accumulate ``gap`` cycles into the memory-request histogram."""
        self.mem_interarrival.add(gap // bucket_width)

    @property
    def average_latency(self) -> float:
        """Mean end-to-end latency of DRAM-serviced requests."""
        if self.dram_requests == 0:
            return 0.0
        return self.total_latency / self.dram_requests

    @property
    def l1_miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.l1_misses / self.accesses

    def snapshot(self) -> Dict[str, int]:
        """Copy of the scalar counters, for epoch-delta computation."""
        return {
            "accesses": self.accesses,
            "l1_misses": self.l1_misses,
            "llc_hits": self.llc_hits,
            "llc_misses": self.llc_misses,
            "dram_requests": self.dram_requests,
            "writebacks": self.writebacks,
            "shaper_stall_cycles": self.shaper_stall_cycles,
            "memory_stall_cycles": self.memory_stall_cycles,
            "total_latency": self.total_latency,
            "post_shaper_latency": self.post_shaper_latency,
            "work_cycles": self.work_cycles,
            "retired": self.retired,
        }

    @staticmethod
    def delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
        """Element-wise difference of two snapshots."""
        return {key: after[key] - before[key] for key in after}


@dataclass(slots=True)
class SystemStats:
    """System-wide statistics for one simulation run."""

    cores: List[CoreStats] = field(default_factory=list)
    #: total cycles simulated
    cycles: int = 0
    #: DRAM row-buffer hits / misses (memory-controller wide)
    row_hits: int = 0
    row_misses: int = 0
    #: peak occupancy observed in the MC transaction queue
    peak_queue_depth: int = 0
    #: requests rejected (backpressured) because the MC queue was full
    queue_backpressure_events: int = 0

    def core(self, core_id: int) -> CoreStats:
        return self.cores[core_id]

    def progress_vector(self) -> Tuple[int, ...]:
        """Per-core retired-event counts -- the forward-progress
        watchdog's cheap probe (one tuple per check, no dict churn)."""
        return tuple(core.retired for core in self.cores)

    @property
    def total_dram_requests(self) -> int:
        """All DRAM transactions, demand plus writeback."""
        return sum(core.dram_requests + core.writebacks
                   for core in self.cores)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        if total == 0:
            return 0.0
        return self.row_hits / total

    def bandwidth_bytes_per_cycle(self, line_bytes: int = 64) -> float:
        """Average delivered DRAM bandwidth over the run."""
        if self.cycles == 0:
            return 0.0
        return self.total_dram_requests * line_bytes / self.cycles

    def snapshot(self) -> Dict:
        """Full deterministic state of the run as plain JSON-able data.

        Includes every per-core scalar counter, both inter-arrival
        histograms (keys stringified for JSON stability), and the
        system-wide DRAM/queue counters -- everything a simulation result
        can legitimately depend on.
        """
        cores = []
        for core in self.cores:
            entry = dict(core.snapshot())
            entry["core_id"] = core.core_id
            entry["last_issue_cycle"] = core.last_issue_cycle
            entry["last_mem_request_cycle"] = core.last_mem_request_cycle
            entry["interarrival"] = {str(bucket): count for bucket, count
                                     in core.interarrival.items()}
            entry["mem_interarrival"] = {
                str(bucket): count for bucket, count
                in core.mem_interarrival.items()}
            cores.append(entry)
        return {
            "cycles": self.cycles,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "peak_queue_depth": self.peak_queue_depth,
            "queue_backpressure_events": self.queue_backpressure_events,
            "cores": cores,
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form of :meth:`snapshot`."""
        payload = json.dumps(self.snapshot(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
