"""On-chip network (mesh NoC) between core tiles and LLC banks.

Section II-B lists the on-chip interconnection network among the shared
resources "difficult to isolate", and the 25-core tape-out is an
OpenPiton-style tiled mesh.  This model adds that substrate: cores and
LLC banks sit on a 2D mesh, requests traverse XY-routed hops with a
per-hop latency, and each directed link serialises flits -- so a core
streaming through a shared corner of the mesh delays its neighbours even
when DRAM is idle.

Enable with ``SystemConfig(noc_enabled=True)``; tile geometry is derived
from the core count (square-ish mesh), and LLC banks are distributed
round-robin across tiles as in a distributed shared LLC.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from .engine import Engine


class MeshNoc:
    """XY-routed 2D mesh with per-directed-link serialisation."""

    __slots__ = ("engine", "tiles", "width", "hop_latency",
                 "link_occupancy", "_link_free", "flits_routed",
                 "total_hops")

    def __init__(self, engine: Engine, tiles: int, hop_latency: int = 2,
                 link_occupancy: int = 1) -> None:
        if tiles < 1:
            raise ValueError("need at least one tile")
        if hop_latency < 1 or link_occupancy < 0:
            raise ValueError("invalid NoC timing")
        self.engine = engine
        self.tiles = tiles
        self.width = max(1, math.ceil(math.sqrt(tiles)))
        self.hop_latency = hop_latency
        self.link_occupancy = link_occupancy
        #: directed link (src_tile, dst_tile) -> busy-until cycle
        self._link_free: Dict[Tuple[int, int], int] = {}
        self.flits_routed = 0
        self.total_hops = 0

    def coordinates(self, tile: int) -> Tuple[int, int]:
        if not 0 <= tile < self.tiles:
            raise ValueError(f"tile {tile} out of range")
        return tile % self.width, tile // self.width

    def _tile_at(self, x: int, y: int) -> int:
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance under XY routing."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int):
        """The XY route as a list of directed (tile, tile) links."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        links = []
        x, y = sx, sy
        while x != dx:
            nx = x + (1 if dx > x else -1)
            links.append((self._tile_at(x, y), self._tile_at(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            links.append((self._tile_at(x, y), self._tile_at(x, ny)))
            y = ny
        return links

    def traverse(self, src: int, dst: int, now: int) -> int:
        """Send one flit from ``src`` to ``dst``; returns arrival cycle.

        Each link on the route is claimed in order: the flit leaves a
        link no earlier than the link frees, and occupies it for
        ``link_occupancy`` cycles behind itself (wormhole-ish
        serialisation without per-flit buffering detail).
        """
        time = now
        for link in self.route(src, dst):
            depart = max(time, self._link_free.get(link, 0))
            self._link_free[link] = depart + self.link_occupancy
            time = depart + self.hop_latency
            self.total_hops += 1
        self.flits_routed += 1
        return time

    def congestion(self, now: int) -> float:
        """Mean cycles until links free (a coarse utilisation probe)."""
        if not self._link_free:
            return 0.0
        backlog = [max(0, free - now) for free in self._link_free.values()]
        return sum(backlog) / len(backlog)


def bank_tile(noc: MeshNoc, bank: int, banks: int) -> int:
    """Home tile of an LLC bank: banks stripe round-robin over tiles."""
    if banks < 1:
        raise ValueError("banks must be >= 1")
    return (bank * max(1, noc.tiles // banks)) % noc.tiles
