"""Set-associative cache model with LRU replacement and dirty tracking.

Used for both the per-core L1s and the (shared or private) LLC.  Tag state
is exact -- real sets, ways and LRU order -- because Figure 2's observation
(a larger LLC both shrinks and right-shifts the inter-arrival distribution)
only emerges from real locality filtering, not from a flat miss ratio.

The lookup path is hot (every simulated access goes through an L1, most
through the LLC too), so indexing is precomputed: power-of-two line sizes
and set counts -- every shipped configuration -- use shift/mask arithmetic
instead of div/mod, and LRU promotion uses ``OrderedDict.move_to_end``
(one C call) instead of pop-and-reinsert.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


def _shift_for(value: int) -> Optional[int]:
    """log2 of ``value`` when it is a power of two, else ``None``."""
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


@dataclass(frozen=True, slots=True)
class CacheGeometry:
    """Size/associativity description of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


class Cache:
    """LRU set-associative cache over line addresses.

    ``access`` performs lookup + fill in one step (fills are immediate;
    fill latency is accounted by the requesting component).  Returns the
    hit flag and, on a miss that evicts a dirty line, the victim's address
    so the caller can generate writeback traffic.
    """

    __slots__ = ("geometry", "_sets", "hits", "misses", "writebacks",
                 "_line_shift", "_set_mask", "_num_sets", "_ways",
                 "_line_bytes")

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(geometry.num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        # Precomputed indexing: all shipped geometries are powers of two;
        # a non-power-of-two geometry falls back to div/mod (same result).
        self._num_sets = geometry.num_sets
        self._ways = geometry.ways
        self._line_bytes = geometry.line_bytes
        self._line_shift = _shift_for(geometry.line_bytes)
        set_shift = _shift_for(self._num_sets)
        self._set_mask = self._num_sets - 1 if set_shift is not None else None

    def _locate(self, address: int) -> Tuple[int, int]:
        shift = self._line_shift
        line = address >> shift if shift is not None \
            else address // self._line_bytes
        mask = self._set_mask
        set_index = line & mask if mask is not None \
            else line % self._num_sets
        return set_index, line

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or filling."""
        shift = self._line_shift
        line = address >> shift if shift is not None \
            else address // self._line_bytes
        mask = self._set_mask
        set_index = line & mask if mask is not None \
            else line % self._num_sets
        return line in self._sets[set_index]

    def access(self, address: int,
               is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Lookup ``address``; fill on miss.

        Returns ``(hit, dirty_victim_address)``.  The victim address is the
        byte address of an evicted dirty line, or ``None``.
        """
        shift = self._line_shift
        line = address >> shift if shift is not None \
            else address // self._line_bytes
        mask = self._set_mask
        set_index = line & mask if mask is not None \
            else line % self._num_sets
        ways = self._sets[set_index]
        if line in ways:
            ways.move_to_end(line)
            if is_write and not ways[line]:
                ways[line] = True
            self.hits += 1
            return True, None
        self.misses += 1
        victim = None
        if len(ways) >= self._ways:
            victim_line, victim_dirty = ways.popitem(last=False)
            if victim_dirty:
                victim = victim_line * self._line_bytes \
                    if shift is None else victim_line << shift
                self.writebacks += 1
        ways[line] = is_write
        return False, victim

    def access_if_present(self, address: int, is_write: bool = False) -> bool:
        """Hit-only access: update LRU/dirty state and return True on a
        hit; leave the cache untouched (no fill, no miss count) otherwise.

        Equivalent to ``probe(a) and access(a, w)`` in one lookup -- the
        instruction-window core model's dispatch path uses it to test for
        a hit without committing an MSHR.
        """
        shift = self._line_shift
        line = address >> shift if shift is not None \
            else address // self._line_bytes
        mask = self._set_mask
        set_index = line & mask if mask is not None \
            else line % self._num_sets
        ways = self._sets[set_index]
        if line in ways:
            ways.move_to_end(line)
            if is_write and not ways[line]:
                ways[line] = True
            self.hits += 1
            return True
        return False

    def invalidate(self, address: int) -> bool:
        """Drop a line if present; returns whether it was resident."""
        set_index, line = self._locate(address)
        return self._sets[set_index].pop(line, None) is not None

    def flush(self) -> None:
        """Empty the cache (e.g. between experiment phases)."""
        for ways in self._sets:
            ways.clear()

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
