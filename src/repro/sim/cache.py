"""Set-associative cache model with LRU replacement and dirty tracking.

Used for both the per-core L1s and the (shared or private) LLC.  Tag state
is exact -- real sets, ways and LRU order -- because Figure 2's observation
(a larger LLC both shrinks and right-shifts the inter-arrival distribution)
only emerges from real locality filtering, not from a flat miss ratio.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity description of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


class Cache:
    """LRU set-associative cache over line addresses.

    ``access`` performs lookup + fill in one step (fills are immediate;
    fill latency is accounted by the requesting component).  Returns the
    hit flag and, on a miss that evicts a dirty line, the victim's address
    so the caller can generate writeback traffic.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(geometry.num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.geometry.line_bytes
        return line % self.geometry.num_sets, line

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or filling."""
        set_index, line = self._locate(address)
        return line in self._sets[set_index]

    def access(self, address: int,
               is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Lookup ``address``; fill on miss.

        Returns ``(hit, dirty_victim_address)``.  The victim address is the
        byte address of an evicted dirty line, or ``None``.
        """
        set_index, line = self._locate(address)
        ways = self._sets[set_index]
        if line in ways:
            dirty = ways.pop(line)
            ways[line] = dirty or is_write
            self.hits += 1
            return True, None
        self.misses += 1
        victim = None
        if len(ways) >= self.geometry.ways:
            victim_line, victim_dirty = ways.popitem(last=False)
            if victim_dirty:
                victim = victim_line * self.geometry.line_bytes
                self.writebacks += 1
        ways[line] = is_write
        return False, victim

    def invalidate(self, address: int) -> bool:
        """Drop a line if present; returns whether it was resident."""
        set_index, line = self._locate(address)
        return self._sets[set_index].pop(line, None) is not None

    def flush(self) -> None:
        """Empty the cache (e.g. between experiment phases)."""
        for ways in self._sets:
            ways.clear()

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
