"""Instruction-window (ROB) core model.

The paper's SSim frontend "models out-of-order cores with out-of-order
memory systems" (4-wide issue, 128-entry instruction window, Table II).
The default :class:`~repro.sim.core_model.CoreModel` approximates latency
tolerance with a flat MSHR cap; this model adds the reorder-buffer
dynamics that actually produce it:

* trace events *dispatch* in order into a fixed-size window, up to
  ``width`` per cycle, each after its compute gap;
* memory accesses issue when dispatched (L1 hit, coalesce, or miss via
  the shaper port, still MSHR-bounded);
* events *retire* in order; a load at the window head that has not
  received data blocks retirement -- the window then fills and dispatch
  stalls, which is where the stall time of a miss really comes from.

Latency tolerance emerges: a pointer chaser with dependent misses fills
the window with one outstanding miss, while a streaming kernel keeps
``mshrs`` misses in flight -- no per-benchmark ``mlp`` knob needed.

The model is drop-in: pass ``core_model="window"`` to
:class:`~repro.sim.system.SimSystem`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, Optional

from .cache import Cache
from .core_model import ShaperPort
from .engine import Engine
from .request import MemoryRequest, RequestIdAllocator, _default_request_ids
from .stats import CoreStats


class _WindowEntry:
    """One in-flight trace event in the reorder buffer."""

    __slots__ = ("work", "address", "is_write", "waiting_line", "done",
                 "dep")

    def __init__(self, work: int, address: int, is_write: bool,
                 dep: "Optional[_WindowEntry]" = None) -> None:
        self.work = work
        self.address = address
        self.is_write = is_write
        #: line the entry is waiting on (None once data arrived / hit)
        self.waiting_line: Optional[int] = None
        self.done = False
        #: entry this one is data-dependent on (pointer chase), or None
        self.dep = dep


class WindowCoreModel:
    """Trace-driven core with an in-order-retire instruction window."""

    __slots__ = ("core_id", "engine", "trace", "l1", "port", "stats",
                 "window", "width", "mshrs", "line_bytes",
                 "throttle_multiplier", "_iter", "wraps", "_rob",
                 "outstanding", "_deferred", "_staged", "_stage_ready",
                 "_last_entry", "_ticking", "_stall_started", "_tick_cb",
                 "_new_req_id")

    def __init__(self, core_id: int, engine: Engine, trace: Iterable,
                 l1: Cache, port: ShaperPort, stats: CoreStats,
                 window: int = 128, width: int = 4, mshrs: int = 8,
                 line_bytes: int = 64,
                 throttle_multiplier: float = 1.0,
                 req_ids: Optional[RequestIdAllocator] = None) -> None:
        if window < 1 or width < 1 or mshrs < 1:
            raise ValueError("window, width and mshrs must be >= 1")
        self.core_id = core_id
        self.engine = engine
        self.trace = trace
        self.l1 = l1
        self.port = port
        self.stats = stats
        self.window = window
        self.width = width
        self.mshrs = mshrs
        self.line_bytes = line_bytes
        self.throttle_multiplier = throttle_multiplier
        self._iter: Iterator = iter(trace)
        self.wraps = 0
        self._rob: Deque[_WindowEntry] = deque()
        #: line -> entries waiting on it (coalescing + wakeup)
        self.outstanding: Dict[int, list] = {}
        #: misses that could not get an MSHR yet
        self._deferred: Deque[_WindowEntry] = deque()
        #: next event, staged until its gap elapses and its dependency
        #: (if any) resolves
        self._staged: Optional[_WindowEntry] = None
        self._stage_ready = 0
        self._last_entry: Optional[_WindowEntry] = None
        self._ticking = False
        self._stall_started: Optional[int] = None
        self._tick_cb = self._tick
        self._new_req_id = req_ids or _default_request_ids

    # ------------------------------------------------------------------

    def start(self) -> None:
        self.engine.schedule(self.engine.now, self._tick_cb)

    @property
    def mlp(self) -> int:
        """Compatibility shim: components asking for the MLP knob get the
        MSHR count (the hard upper bound this model enforces)."""
        return self.mshrs

    def _next_event(self):
        try:
            return next(self._iter)
        except StopIteration:
            self.wraps += 1
            self._iter = iter(self.trace)
            return next(self._iter)

    # ------------------------------------------------------------------
    # the per-cycle pipeline step (event-driven: only scheduled when
    # something can change)

    def _tick(self) -> None:
        if self._ticking:
            return
        self._ticking = True
        try:
            now = self.engine.now
            self._retire(now)
            dispatched = self._dispatch(now)
            self._account_stall(now)
            # Re-arm: keep ticking while the pipeline has same-cycle work;
            # sleep out a compute gap; otherwise only a memory response
            # can unblock us (on_response re-arms the tick).
            if dispatched or (self._rob and self._rob[0].done):
                self.engine.schedule(now + 1, self._tick_cb)
            elif len(self._rob) < self.window \
                    and self._stage_ready > now:
                self.engine.schedule(self._stage_ready, self._tick_cb)
        finally:
            self._ticking = False

    def _retire(self, now: int) -> None:
        retired = 0
        while self._rob and retired < self.width:
            head = self._rob[0]
            if not head.done:
                break
            self._rob.popleft()
            self.stats.retired += 1
            self.stats.work_cycles += 1 + head.work
            retired += 1

    def _dispatch(self, now: int) -> int:
        dispatched = 0
        while dispatched < self.width and len(self._rob) < self.window:
            if self._staged is None:
                event = self._next_event()
                work = int(event.work * self.throttle_multiplier)
                dep = self._last_entry if getattr(event, "depends",
                                                  False) else None
                entry = _WindowEntry(work, event.address, event.is_write,
                                     dep=dep)
                self._last_entry = entry
                self._staged = entry
                self._stage_ready = now + work
            if now < self._stage_ready:
                break
            dep = self._staged.dep
            if dep is not None and not dep.done:
                break  # pointer chase: wait for the producer's data
            entry = self._staged
            self._staged = None
            entry.dep = None
            self._enter_window(entry, now)
            dispatched += 1
        return dispatched

    def _enter_window(self, entry: _WindowEntry, now: int) -> None:
        self._rob.append(entry)
        self.stats.accesses += 1
        line = entry.address // self.line_bytes
        if line in self.outstanding:
            # Coalesce: wait on the already in-flight line.
            entry.waiting_line = line
            self.outstanding[line].append(entry)
            return
        if self.l1.access_if_present(entry.address, entry.is_write):
            self.stats.l1_hits += 1
            entry.done = True
            return
        if len(self.outstanding) >= self.mshrs:
            # No MSHR free: the miss waits at dispatch (no L1 fill yet)
            # and is retried when a response frees one.
            entry.waiting_line = line
            self._deferred.append(entry)
            return
        self._issue_miss(entry, now)

    def _issue_miss(self, entry: _WindowEntry, now: int) -> None:
        _, dirty_victim = self.l1.access(entry.address, entry.is_write)
        line = entry.address // self.line_bytes
        self.stats.l1_misses += 1
        entry.waiting_line = line
        self.outstanding[line] = [entry]
        request = MemoryRequest(core_id=self.core_id,
                                address=entry.address,
                                is_write=entry.is_write,
                                l1_miss_cycle=now,
                                req_id=self._new_req_id())
        self.port.submit(request)
        if dirty_victim is not None:
            writeback = MemoryRequest(core_id=self.core_id,
                                      address=dirty_victim, is_write=True,
                                      l1_miss_cycle=now,
                                      req_id=self._new_req_id())
            writeback.shaper_bin = -2
            self.port.submit_bypass(writeback)

    def _account_stall(self, now: int) -> None:
        """Track cycles where a full window blocks dispatch.

        Accumulates incrementally at every tick: back-to-back stall
        intervals (head retires but the refilled window blocks again
        within the same tick) must not swallow the elapsed time.
        """
        if self._stall_started is not None:
            self.stats.memory_stall_cycles += now - self._stall_started
        blocked = bool(self._rob) and not self._rob[0].done \
            and len(self._rob) >= self.window
        self._stall_started = now if blocked else None

    # ------------------------------------------------------------------

    def on_response(self, request: MemoryRequest) -> None:
        now = self.engine.now
        line = request.address // self.line_bytes
        waiters = self.outstanding.pop(line, [])
        for entry in waiters:
            entry.done = True
            entry.waiting_line = None
        request.complete_cycle = now
        self.stats.total_latency += request.total_latency
        self.stats.post_shaper_latency += now - request.issue_cycle
        self._retry_deferred(now)
        self.engine.schedule(now, self._tick_cb)

    def _retry_deferred(self, now: int) -> None:
        pending = list(self._deferred)
        self._deferred.clear()
        for entry in pending:
            line = entry.address // self.line_bytes
            if entry.done:
                continue
            if line in self.outstanding:
                self.outstanding[line].append(entry)
                continue
            if self.l1.access_if_present(entry.address, entry.is_write):
                # A coalesced fill landed while deferred.
                entry.done = True
                entry.waiting_line = None
                continue
            if len(self.outstanding) >= self.mshrs:
                self._deferred.append(entry)
                continue
            self._issue_miss(entry, now)
