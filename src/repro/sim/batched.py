"""Fused fast-path components of the batched simulation kernel.

The heap engine's component graph (``CoreModel -> ShaperPort -> SharedLLC
-> MemoryController -> DramDevice``) is semantically clean but pays a deep
Python call chain per simulated access.  The subclasses here collapse those
chains when -- and only when -- the collapse is provably bit-identical:

* :class:`BatchedCoreModel` replays its trace from struct-of-arrays
  columns (:mod:`repro.sim.soa`) instead of the iterator protocol and
  inlines the L1 lookup (the ``OrderedDict`` set operations of
  :class:`~repro.sim.cache.Cache.access`) plus the pass-through
  :class:`~repro.sim.core_model.ShaperPort` drain into its run loop.  Per-
  access statistics accumulate in locals and flush once per activation.
* :class:`BatchedLLC` inlines the cache access and the bank-serialisation
  arithmetic of :meth:`~repro.sim.llc.SharedLLC.lookup` and schedules the
  system's fused hit/miss determinations directly (no ``_hit``/``_miss``
  trampoline events).
* :class:`BatchedMemoryController` pops the queue head directly when the
  scheduler declares ``selects_head`` (FCFS order), and services DRAM from
  a precomputed line -> ``(flat_bank, row, channel)`` table with the bank
  state machine and channel-bus arithmetic inlined -- no per-dispatch
  address mapping, no per-access ``contracts.is_enabled()`` probe.

Every inlined body is a transcription of the corresponding checked
component with the same statement order for every observable effect
(statistics, request-id allocation, event scheduling); the golden
fingerprint suite pins the equivalence.  Each subclass also keeps a
gate flag and falls back to the parent implementation whenever its
preconditions (power-of-two geometry, materialisable trace, head-selecting
scheduler) do not hold, so these classes are accelerators, never a
restriction on configuration space.

These classes are only instantiated on the fused path (``kernel:
"batched"`` with contracts disabled); with ``REPRO_CONTRACTS=1`` the
system assembles the fully instrumented originals so every invariant
check still runs.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Callable, Dict, Optional, Tuple

from ..dram.device import DramDevice
from .core_model import CoreModel
from .engine import _NO_ARG
from .llc import SharedLLC
from .memctrl import MemoryController, MemorySchedulerProtocol
from .request import MemoryRequest
from .soa import trace_columns
from .stats import SystemStats
from .wheel import _MASK, SPAN, WheelEngine


#: slots rebuilt from the trace on unpickle instead of being serialised --
#: checkpoint files should not carry megabytes of derivable trace columns
#: (or bound references into the component graph)
_REBUILT_SLOTS = frozenset({"_works", "_addrs", "_iswrites", "_lines",
                            "_rows", "_n", "_fast", "_next_rid",
                            "_fused_llc", "_llc_pack"})


class BatchedCoreModel(CoreModel):
    """Trace-replaying core over SoA columns with an inlined L1 path.

    Behaviour is bit-identical to :class:`~repro.sim.core_model.CoreModel`:
    the same accesses at the same cycles, the same request-id allocation
    order, the same statistics.  When the trace cannot be materialised as
    columns (or the L1 geometry is not power-of-two) the instance simply
    runs the parent implementation.
    """

    __slots__ = ("_pos", "_works", "_addrs", "_iswrites", "_lines", "_rows",
                 "_n", "_fast", "_next_rid", "_fused_llc", "_llc_pack")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pos = 0
        self._bind_columns()

    def _bind_columns(self) -> None:
        """(Re)derive the SoA columns; clears the fast flag on failure."""
        # Request ids come from ``next()`` on the allocator's raw counter
        # (one C call) instead of the allocator's ``__call__`` frame.
        allocator = self._new_req_id
        counter = getattr(allocator, "_count", None)
        self._next_rid = counter.__next__ if counter is not None \
            else allocator
        self._fused_llc = None
        self._llc_pack = None
        columns = None
        l1 = self.l1
        # The fast loop schedules by direct bucket append, so it requires
        # the wheel engine (the only engine fused systems assemble).
        if (self._line_shift is not None and l1._set_mask is not None
                and l1._line_shift == self._line_shift
                and type(self.engine) is WheelEngine):
            columns = trace_columns(self.trace, self.line_bytes)
        if columns is None:
            self._works = None
            self._addrs = None
            self._iswrites = None
            self._lines = None
            self._rows = None
            self._n = 0
            self._fast = False
        else:
            self._works = columns.works
            self._addrs = columns.addrs
            self._iswrites = columns.iswrites
            self._lines = columns.lines
            self._rows = columns.rows
            self._n = columns.length
            self._fast = True
            # When the port sends straight into a fast BatchedLLC that
            # shares this core's id allocator and statistics objects, the
            # run loop may inline the lookup body (the demand-miss path's
            # hottest callee).  Anything else -- a NoC sender, a hand-built
            # rig with its own stats -- keeps the indirect call.
            # ``getattr`` with defaults throughout: during checkpoint
            # restore this can run while the port or LLC is still an
            # empty shell (pickle builds cyclic graphs in heap-event
            # order, and a parked port's wake event may reach this core
            # through llc -> mc -> _respond_cores before the port's own
            # state is set).  A shell simply fails the fusion test here;
            # SimSystem.__setstate__ re-binds every core once the whole
            # graph is restored, so the final binding is unaffected.
            send = getattr(self.port, "send", None)
            llc = getattr(send, "__self__", None)
            cores = getattr(llc, "_stat_cores", None)
            if (type(llc) is BatchedLLC and getattr(llc, "_fast", False)
                    and getattr(send, "__func__", None) is BatchedLLC.lookup
                    and getattr(llc, "_new_req_id", None) is allocator
                    and cores is not None and self.core_id < len(cores)
                    and cores[self.core_id] is self.stats):
                self._fused_llc = llc
                self._llc_pack = (llc._line_shift, llc._bank_mask,
                                  llc.bank_busy, llc.hit_latency)

    # -- checkpointing: columns are derivable, so do not serialise them --

    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                if name not in _REBUILT_SLOTS and hasattr(self, name):
                    state[name] = getattr(self, name)
        return state

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._bind_columns()

    # ------------------------------------------------------------------

    def _run(self) -> None:
        """Column-driven transcription of :meth:`CoreModel._run`.

        Shaped for the dominant activation: one access, one column fetch,
        one self-reschedule.  Attributes are read on demand instead of
        bulk-bound up front (an activation touches each at most once), and
        the self-reschedule appends straight into the wheel bucket --
        identical ``(when, seq)`` allocation to ``engine.schedule`` minus
        the call.  The access body inlines :meth:`Cache.access` (same
        ``OrderedDict`` operations in the same order) and the unshaped
        :meth:`ShaperPort._pump` drain (``shaper_stall_cycles`` gains
        ``now - now == 0`` on that path, so the add is skipped).
        """
        if self._blocked or self._running:
            return
        if not self._fast:
            CoreModel._run(self)
            return
        self._running = True
        engine = self.engine
        now = engine.now
        pending = self._pending_work
        budget = 4
        try:
            while True:
                if pending is None:
                    pos = self._pos
                    if pos == self._n:
                        self.wraps += 1
                        pos = 0
                    work, address, is_write, line = self._rows[pos]
                    self._pos = pos + 1
                    multiplier = self.throttle_multiplier
                    if multiplier != 1.0:
                        work = int(work * multiplier)
                    if work > 0:
                        when = now + work
                    elif budget <= 0:
                        when = now + 1
                    else:
                        when = -1
                    if when >= 0:
                        self._pending_work = [0, work, address, is_write]
                        # inline engine.schedule(when, self._run_cb)
                        seq = engine._seq
                        engine._seq = seq + 1
                        if when - now < SPAN:
                            index = when & _MASK
                            engine._buckets[index].append(
                                (when, seq, self._run_cb, _NO_ARG))
                            engine._occupied[index] = 1
                        else:
                            _heappush(engine._overflow,
                                      (when, seq, self._run_cb, _NO_ARG))
                        engine._count += 1
                        return
                else:
                    remaining = pending[0]
                    work = pending[1]
                    address = pending[2]
                    is_write = pending[3]
                    if remaining > 0:
                        pending[0] = 0
                        engine.schedule(now + remaining, self._run_cb)
                        return
                    if budget <= 0:
                        engine.schedule(now + 1, self._run_cb)
                        return
                    line = address >> self._line_shift
                outstanding = self.outstanding
                stats = self.stats
                if line in outstanding:
                    # Coalesced secondary miss: line already in flight.
                    pass
                else:
                    l1 = self.l1
                    ways = l1._sets[line & l1._set_mask]
                    if line in ways:
                        ways.move_to_end(line)
                        if is_write and not ways[line]:
                            ways[line] = True
                        l1.hits += 1
                        stats.l1_hits += 1
                    elif len(outstanding) >= self.mlp:
                        # MSHRs full: block until a response frees one.
                        self._blocked = True
                        self._block_start = now
                        if pending is None:
                            self._pending_work = [0, work, address, is_write]
                        return
                    else:
                        l1.misses += 1
                        stats.l1_misses += 1
                        victim = None
                        if len(ways) >= l1._ways:
                            vline, vdirty = ways.popitem(last=False)
                            if vdirty:
                                victim = vline << self._line_shift
                                l1.writebacks += 1
                        ways[line] = is_write
                        outstanding[line] = True
                        port = self.port
                        core_id = self.core_id
                        # positional MemoryRequest: (core_id, address,
                        # is_write, l1_miss, issue, mc_arrival, dram_start,
                        # complete, shaper_bin, req_id)
                        request = MemoryRequest(core_id, address, is_write,
                                                now, 0, 0, 0, 0, -1,
                                                self._next_rid())
                        if port._unshaped and not port.queue \
                                and not port._parked:
                            request.issue_cycle = now
                            last = stats.last_issue_cycle
                            if last >= 0:
                                hist = stats.interarrival._counts
                                gap_bin = (now - last) \
                                    // port.interarrival_bucket
                                if gap_bin < len(hist):
                                    hist[gap_bin] += 1
                                else:
                                    stats.interarrival.add(gap_bin)
                            stats.last_issue_cycle = now
                            llc = self._fused_llc
                            if llc is None:
                                port.send(request)
                            else:
                                # inline llc.lookup(request): same cache
                                # ops, counters and schedule in the same
                                # order (BatchedLLC.lookup transcription;
                                # ``request.shaper_bin`` is -1 here so the
                                # demand gates are pre-decided).
                                lshift, lbank_mask, lbusy, lhit_lat = \
                                    self._llc_pack
                                lline = address >> lshift
                                lbank_free = llc._bank_free
                                lbank = lline & lbank_mask
                                free_at = lbank_free[lbank]
                                lstart = now if now > free_at else free_at
                                lbank_free[lbank] = lstart + lbusy
                                lcache = llc.cache
                                lways = lcache._sets[
                                    lline & lcache._set_mask]
                                respond_at = lstart + lhit_lat
                                lvictim = None
                                if lline in lways:
                                    lways.move_to_end(lline)
                                    if is_write and not lways[lline]:
                                        lways[lline] = True
                                    lcache.hits += 1
                                    llc.hits += 1
                                    stats.llc_hits += 1
                                    callback = llc._respond_hit
                                else:
                                    lcache.misses += 1
                                    if len(lways) >= lcache._ways:
                                        lvline, lvdirty = lways.popitem(
                                            last=False)
                                        if lvdirty:
                                            lvictim = lvline << lshift
                                            lcache.writebacks += 1
                                    lways[lline] = is_write
                                    llc.misses += 1
                                    stats.llc_misses += 1
                                    callback = llc._respond_miss
                                # inline engine.schedule(respond_at,
                                #                        callback, request)
                                seq = engine._seq
                                engine._seq = seq + 1
                                if respond_at - now < SPAN:
                                    index = respond_at & _MASK
                                    engine._buckets[index].append(
                                        (respond_at, seq, callback,
                                         request))
                                    engine._occupied[index] = 1
                                else:
                                    _heappush(engine._overflow,
                                              (respond_at, seq, callback,
                                               request))
                                engine._count += 1
                                if lvictim is not None:
                                    lwb = MemoryRequest(
                                        core_id, lvictim, True, now, now,
                                        0, 0, 0, -2, self._next_rid())
                                    engine.schedule(respond_at,
                                                    llc.forward_miss, lwb)
                        else:
                            port.submit(request)
                        if victim is not None:
                            writeback = MemoryRequest(core_id, victim, True,
                                                      now, now, 0, 0, 0, -2,
                                                      self._next_rid())
                            port.send(writeback)
                stats.accesses += 1
                stats.retired += 1
                stats.work_cycles += 1 + work
                if pending is not None:
                    self._pending_work = None
                    pending = None
                budget -= 1
        finally:
            self._running = False


class BatchedLLC(SharedLLC):
    """Shared LLC with the cache access and bank arithmetic inlined.

    ``respond_hit`` / ``respond_miss`` are the system's fused determination
    callbacks, scheduled directly where the parent schedules its
    ``_hit``/``_miss`` trampolines -- one fewer Python call per LLC event,
    identical event order and payloads.
    """

    __slots__ = ("_respond_hit", "_respond_miss", "_fast")

    def __init__(self, *args,
                 respond_hit: Optional[Callable] = None,
                 respond_miss: Optional[Callable] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._respond_hit = respond_hit if respond_hit is not None \
            else self._hit
        self._respond_miss = respond_miss if respond_miss is not None \
            else self._miss
        cache = self.cache
        self._fast = (self._line_shift is not None
                      and self._bank_mask is not None
                      and cache._set_mask is not None
                      and cache._line_shift == self._line_shift
                      and type(self.engine) is WheelEngine)

    def lookup(self, request: MemoryRequest) -> None:
        if not self._fast:
            SharedLLC.lookup(self, request)
            return
        engine = self.engine
        now = engine.now
        line = request.address >> self._line_shift
        bank = line & self._bank_mask
        bank_free = self._bank_free
        free_at = bank_free[bank]
        start = now if now > free_at else free_at
        bank_free[bank] = start + self.bank_busy
        cache = self.cache
        ways = cache._sets[line & cache._set_mask]
        respond_at = start + self.hit_latency
        cores = self._stat_cores
        demand = request.shaper_bin != -2
        if line in ways:
            ways.move_to_end(line)
            if request.is_write and not ways[line]:
                ways[line] = True
            cache.hits += 1
            self.hits += 1
            if cores is not None and demand:
                cores[request.core_id].llc_hits += 1
            callback = self._respond_hit
        else:
            cache.misses += 1
            victim = None
            if len(ways) >= cache._ways:
                vline, vdirty = ways.popitem(last=False)
                if vdirty:
                    victim = vline << self._line_shift
                    cache.writebacks += 1
            ways[line] = request.is_write
            self.misses += 1
            if cores is not None and demand:
                cores[request.core_id].llc_misses += 1
            callback = self._respond_miss
        # inline engine.schedule(respond_at, callback, request)
        seq = engine._seq
        engine._seq = seq + 1
        if respond_at - now < SPAN:
            index = respond_at & _MASK
            engine._buckets[index].append((respond_at, seq, callback,
                                           request))
            engine._occupied[index] = 1
        else:
            _heappush(engine._overflow, (respond_at, seq, callback, request))
        engine._count += 1
        if callback is self._respond_miss and victim is not None:
            # Same creation order as the parent: the LLC-victim writeback's
            # req_id is allocated after the miss determination is scheduled.
            writeback = MemoryRequest(request.core_id, victim, True, now,
                                      now, 0, 0, 0, -2, self._new_req_id())
            engine.schedule(respond_at, self.forward_miss, writeback)


class BatchedMemoryController(MemoryController):
    """Memory controller with head-select dispatch over precomputed
    DRAM coordinates.

    The fast dispatch requires (a) a scheduler that always selects the
    queue head (``selects_head``, i.e. strict FCFS order) and (b) the
    coordinate table covering the request's address; otherwise it falls
    back to the generic select/map/service path per request.  The inlined
    bank state machine is :meth:`repro.dram.bank.Bank.access` with the
    timing sums precomputed, followed by the channel-bus serialisation of
    :meth:`repro.dram.device.DramDevice.service`.
    """

    __slots__ = ("_coords", "_dshift", "_fast_select", "_skip_on_complete",
                 "_timing_pack", "_respond_cores", "_respond_fast")

    def __init__(self, engine, dram: DramDevice,
                 scheduler: MemorySchedulerProtocol,
                 complete: Callable[[MemoryRequest], None],
                 queue_depth: int = 32,
                 stats: Optional[SystemStats] = None,
                 coord_table: Optional[
                     Dict[int, Tuple[int, int, int]]] = None) -> None:
        super().__init__(engine, dram, scheduler, complete,
                         queue_depth=queue_depth, stats=stats)
        self._coords = coord_table
        timing = dram.timing
        line_bytes = timing.line_bytes
        self._dshift = line_bytes.bit_length() - 1 \
            if line_bytes & (line_bytes - 1) == 0 else None
        self._fast_select = bool(getattr(scheduler, "selects_head", False)) \
            and coord_table is not None and self._dshift is not None \
            and type(engine) is WheelEngine
        self._skip_on_complete = (type(scheduler).on_complete
                                  is MemorySchedulerProtocol.on_complete)
        #: one tuple read + unpack per dispatch instead of nine attr reads
        self._timing_pack = (
            timing.t_bl, timing.t_rc, timing.t_rp, timing.t_wr,
            timing.t_rcd + timing.t_bl,
            timing.t_rp + timing.t_rcd + timing.t_bl,
            timing.row_hit_latency, timing.row_closed_latency,
            timing.row_conflict_latency)
        #: core models indexed by core_id (installed by the system after
        #: construction); lets ``_complete`` respond to the core directly
        #: instead of going through the generic ``complete`` callback
        self._respond_cores = None
        self._respond_fast = False

    def attach_cores(self, cores) -> None:
        """Install the per-core response targets (fused completion path).

        Only valid when the system's ``complete`` callback is equivalent
        to "ignore writebacks, else ``cores[core_id].on_response``" --
        exactly what :meth:`SimSystem._on_dram_complete` does.  When every
        target is a :class:`BatchedCoreModel` with a power-of-two line
        size, ``_complete`` additionally inlines the ``on_response`` body
        (the completion event is the hottest callback in the system).
        """
        self._respond_cores = cores
        self._respond_fast = all(
            type(core) is BatchedCoreModel and core._line_shift is not None
            for core in cores)

    def _dispatch(self) -> None:
        if not self._fast_select:
            MemoryController._dispatch(self)
            return
        queue = self.queue
        inflight = self._inflight
        if not queue or inflight >= self._max_inflight:
            return
        max_inflight = self._max_inflight
        engine = self.engine
        now = engine.now
        overflow = self.overflow
        depth = self.queue_depth
        dram = self.dram
        banks = dram.banks
        bus_free = dram.bus_free
        complete_cb = self._complete_cb
        coords_get = self._coords.get
        dshift = self._dshift
        (t_bl, t_rc, t_rp, t_wr, t_rcd_bl, t_rp_rcd_bl,
         hit_lat, closed_lat, conflict_lat) = self._timing_pack
        dispatched = 0
        while queue and inflight < max_inflight:
            request = queue.pop(0)
            if overflow:
                while overflow and len(queue) < depth:
                    queue.append(overflow.popleft())
            request.dram_start_cycle = now
            next_refresh = dram._next_refresh
            if next_refresh is not None and now >= next_refresh:
                dram._maybe_refresh(now)
            entry = coords_get(request.address >> dshift)
            if entry is None:
                done = dram.service(request.address, now, request.is_write)
            else:
                flat, row, channel = entry
                bank = banks[flat]
                start = bank.ready_cycle
                if now > start:
                    start = now
                open_row = bank.open_row
                if open_row == row:
                    done = start + hit_lat
                    next_ready = start + t_bl
                    bank.row_hits += 1
                else:
                    gate = bank.last_activate + t_rc
                    if gate > start:
                        start = gate
                    if open_row is None:
                        done = start + closed_lat
                        next_ready = start + t_rcd_bl
                        bank.last_activate = start
                    else:
                        done = start + conflict_lat
                        next_ready = start + t_rp_rcd_bl
                        bank.last_activate = start + t_rp
                    bank.row_misses += 1
                    bank.open_row = row
                if request.is_write:
                    next_ready += t_wr
                bank.ready_cycle = next_ready
                bus_start = done - t_bl
                free_at = bus_free[channel]
                if free_at > bus_start:
                    bus_start = free_at
                done = bus_start + t_bl
                bus_free[channel] = done
            inflight += 1
            dispatched += 1
            # inline engine.schedule(done, complete_cb, request)
            seq = engine._seq
            engine._seq = seq + 1
            if done - now < SPAN:
                index = done & _MASK
                engine._buckets[index].append((done, seq, complete_cb,
                                               request))
                engine._occupied[index] = 1
            else:
                _heappush(engine._overflow, (done, seq, complete_cb,
                                             request))
            engine._count += 1
        self._inflight = inflight
        self.dispatched += dispatched

    def _complete(self, request: MemoryRequest) -> None:
        self._inflight -= 1
        if self.probe is not None:
            self.probe.on_mc_complete(request, self.engine.now)
        core_id = request.core_id
        cores = self._cores
        demand = request.shaper_bin != -2
        if cores is not None:
            cstats = cores[core_id]
            if demand:
                cstats.dram_requests += 1
            else:
                cstats.writebacks += 1
        if not self._skip_on_complete:
            self.scheduler.on_complete(request, self.engine.now)
        respond = self._respond_cores
        if respond is None:
            self.complete(request)
        elif demand:
            core = respond[core_id]
            if self._respond_fast:
                # inline core.on_response(request): same stores and stat
                # adds as CoreModel.on_response, minus the call frame
                now = self.engine.now
                core.outstanding.pop(
                    request.address >> core._line_shift, None)
                request.complete_cycle = now
                cstats = core.stats
                cstats.total_latency += now - request.l1_miss_cycle
                cstats.post_shaper_latency += now - request.issue_cycle
                if core._blocked:
                    core._blocked = False
                    cstats.memory_stall_cycles += now - core._block_start
                    core._run()
            else:
                core.on_response(request)
        if self.overflow:
            self._refill_window()
        if self.queue:
            self._dispatch()
