"""Memory request objects passed between simulator components."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


class RequestIdAllocator:
    """Monotonic source of ``req_id`` values for one simulated system.

    Request ids exist for two purposes: keying the MITTS shaper's pending
    tables and breaking ties deterministically in memory schedulers that
    order by ``(mc_arrival_cycle, req_id)``.  Both only need ids that are
    unique and monotonic *within one system*.  A process-global counter
    would hand the second :class:`~repro.sim.system.SimSystem` built in a
    process a different id range than the first -- a latent determinism
    hazard for anything comparing id values -- so each system owns an
    allocator and every request it creates draws from it, making a
    system's stats independent of whatever ran earlier in the process.
    """

    __slots__ = ("_count",)

    def __init__(self) -> None:
        self._count = itertools.count()

    def __call__(self) -> int:
        return next(self._count)


#: fallback allocator for requests constructed outside a ``SimSystem``
#: (unit tests building components by hand); systems never use it.
_default_request_ids = RequestIdAllocator()


@dataclass(slots=True, eq=False)
class MemoryRequest:
    """A single memory transaction as seen below the L1 cache.

    A request is created by a core on an L1 miss, possibly delayed by the
    MITTS shaper, looked up in the shared LLC and -- on an LLC miss --
    serviced by the memory controller and DRAM.  Timestamps for each stage
    are recorded so latency statistics can be derived afterwards.

    Requests compare by identity (``eq=False``): every request is unique
    (ids are never reused), and identity comparison keeps hot membership
    operations like the memory controller's ``queue.remove`` at pointer
    speed instead of field-by-field tuple comparison.
    """

    core_id: int
    address: int
    is_write: bool = False
    #: cycle the L1 miss occurred (before any shaper delay)
    l1_miss_cycle: int = 0
    #: cycle the shaper released the request towards the LLC
    issue_cycle: int = 0
    #: cycle the request arrived at the memory controller (LLC miss only)
    mc_arrival_cycle: int = 0
    #: cycle DRAM service started
    dram_start_cycle: int = 0
    #: cycle the data response reached the core
    complete_cycle: int = 0
    #: MITTS bin a credit was deducted from (hybrid method 2 bookkeeping)
    shaper_bin: int = -1
    req_id: int = field(default_factory=_default_request_ids)

    @property
    def total_latency(self) -> int:
        """End-to-end latency from L1 miss to completion."""
        return self.complete_cycle - self.l1_miss_cycle

    @property
    def shaper_delay(self) -> int:
        """Cycles the request spent stalled in the MITTS shaper."""
        return self.issue_cycle - self.l1_miss_cycle

    @property
    def queue_delay(self) -> int:
        """Cycles spent waiting in the memory-controller transaction queue."""
        return self.dram_start_cycle - self.mc_arrival_cycle
