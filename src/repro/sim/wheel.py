"""Calendar-queue event scheduler: the batched kernel's event wheel.

:class:`WheelEngine` is a drop-in replacement for
:class:`~repro.sim.engine.Engine` that swaps the binary heap for a bucketed
event wheel keyed on integer cycles.  The simulator's event mix is strongly
near-future-dominated -- work delays, cache latencies and DRAM service
times are all well under a few thousand cycles -- so almost every event
lands in a fixed-size circular array of per-cycle buckets where insert and
pop are O(1) instead of O(log n).  The rare far-future event (tuner epochs,
watchdog probes, ``every()`` periods beyond the wheel span) parks in a
small overflow heap and migrates into the wheel when simulated time draws
near.

Ordering is *exactly* the heap engine's: events carry the same
``(when, seq, callback, arg)`` tuples, same-cycle events pop in FIFO
scheduling order, and the golden-fingerprint suite pins both kernels to
identical results.  The ordering argument, bucket by bucket:

* **Window invariant** -- every bucketed event satisfies
  ``now <= when < now + SPAN``.  ``schedule`` enforces the upper bound at
  insert time (later events overflow) and the run loop enforces it as
  ``now`` advances by migrating eligible overflow events *before*
  executing each cycle.  Since ``SPAN`` consecutive cycles map to
  ``SPAN`` distinct buckets, a live bucket only ever holds events of one
  cycle value.
* **Within a bucket** -- ``schedule`` appends in call order and overflow
  migration drains its min-heap in ascending ``(when, seq)`` order, so a
  bucket's list order is its seq order.  An overflow event can never
  migrate into a non-empty bucket: migration for cycle ``w`` happens at
  the first processed cycle ``t > w - SPAN``, and any directly-bucketed
  event for ``w`` must have been scheduled at a cycle ``s > w - SPAN``,
  i.e. ``s >= t`` -- after the migration already ran (cycle-start
  migration precedes that cycle's event execution).
* **Across buckets** -- scanning the occupancy bitmap circularly from
  ``now & MASK`` visits buckets in ascending ``when`` under the window
  invariant.

The occupancy scan uses ``bytearray.find`` (a C-level memchr), so locating
the next event costs one library call over the gap, not a Python loop.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..analysis import contracts
from .engine import _NO_ARG

_heappush = heapq.heappush
_heappop = heapq.heappop

#: wheel span in cycles (power of two): events within ``now + SPAN`` are
#: bucketed, farther ones overflow.  4096 comfortably covers every
#: component latency in the shipped configurations (DRAM worst-case
#: service plus maximal bus backlog stays in the hundreds of cycles).
SPAN = 4096
_MASK = SPAN - 1

Event = Tuple[int, int, Callable, object]


class WheelEngine:
    """Bucketed event wheel with a far-future overflow heap.

    API-compatible with :class:`~repro.sim.engine.Engine` (``now``,
    ``schedule``, ``schedule_in``, ``stop``, ``run``, ``pending_events``,
    ``events_executed``), picklable for checkpoints, and bit-identical in
    event ordering.  With ``REPRO_CONTRACTS=1`` (or ``max_events``) the
    checked loop verifies time monotonicity and same-cycle FIFO order per
    event, mirroring ``Engine._run_checked``.
    """

    __slots__ = ("now", "_buckets", "_occupied", "_overflow", "_seq",
                 "_count", "_stopped", "_contracts", "events_executed")

    def __init__(self) -> None:
        self.now: int = 0
        self._buckets: List[List[Event]] = [[] for _ in range(SPAN)]
        self._occupied = bytearray(SPAN)
        self._overflow: List[Event] = []
        self._seq = 0
        self._count = 0
        self._stopped = False
        self._contracts = contracts.is_enabled()
        #: cumulative number of events executed (perf accounting only;
        #: never feeds back into simulated behaviour)
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # scheduling

    def schedule(self, when: int, callback: Callable,
                 arg: object = _NO_ARG) -> None:
        """Schedule ``callback`` (optionally ``callback(arg)``) at absolute
        cycle ``when``; the past clamps to the current cycle."""
        if self._contracts:
            contracts.check(
                isinstance(when, int),
                "WheelEngine.schedule(when=%r): simulated time is integer "
                "CPU cycles, got %s", when, type(when).__name__)
            contracts.check(
                callable(callback),
                "WheelEngine.schedule: callback %r is not callable",
                callback)
        now = self.now
        if when < now:
            when = now
        seq = self._seq
        self._seq = seq + 1
        if when - now < SPAN:
            index = when & _MASK
            self._buckets[index].append((when, seq, callback, arg))
            self._occupied[index] = 1
        else:
            _heappush(self._overflow, (when, seq, callback, arg))
        self._count += 1

    def schedule_in(self, delay: int, callback: Callable,
                    arg: object = _NO_ARG) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback, arg)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued (wheel plus overflow)."""
        return self._count

    # ------------------------------------------------------------------
    # run loops

    def _migrate(self) -> None:
        """Pull every overflow event now inside the wheel window."""
        overflow = self._overflow
        buckets = self._buckets
        occupied = self._occupied
        limit = self.now + SPAN
        while overflow and overflow[0][0] < limit:
            event = _heappop(overflow)
            index = event[0] & _MASK
            buckets[index].append(event)
            occupied[index] = 1

    def _next_bucket(self) -> int:
        """Index of the nearest occupied bucket, or -1 (circular scan)."""
        occupied = self._occupied
        start = self.now & _MASK
        index = occupied.find(1, start)
        if index < 0:
            index = occupied.find(1, 0, start)
        return index

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` cycles pass, or
        ``max_events`` events have executed.

        Semantics match :meth:`Engine.run` exactly: the horizon is
        exclusive, and events pop in global ``(when, seq)`` order.
        """
        self._stopped = False
        if self._contracts or max_events is not None:
            return self._run_checked(until, max_events)
        buckets = self._buckets
        occupied = self._occupied
        overflow = self._overflow
        find = occupied.find
        no_arg = _NO_ARG
        # ``None`` horizon (run to drain) becomes an unreachable cycle so
        # the per-bucket comparison needs no None test.
        horizon = until if until is not None else (1 << 62)
        executed = 0
        try:
            while self._count and not self._stopped:
                if overflow:
                    self._migrate()
                start = self.now & _MASK
                index = find(1, start)
                if index < 0:
                    index = find(1, 0, start)
                if index < 0:
                    # Only far-future events remain: jump to the overflow
                    # head (or the horizon) and re-migrate.
                    when = overflow[0][0]
                    if when >= horizon:
                        break
                    self.now = when
                    continue
                bucket = buckets[index]
                event = bucket[0]
                when = event[0]
                if when >= horizon:
                    break
                self.now = when
                if len(bucket) == 1:
                    # Dominant case (event gaps beat cycle density): one
                    # event this cycle, so skip the iterator machinery.  A
                    # same-cycle schedule from the callback grows this
                    # bucket; the trim then keeps the tail and the next
                    # outer iteration re-finds the same bucket.
                    try:
                        arg = event[3]
                        if arg is no_arg:
                            event[2]()
                        else:
                            event[2](arg)
                    finally:
                        executed += 1
                        self._count -= 1
                        if len(bucket) == 1:
                            del bucket[:]
                            occupied[index] = 0
                        else:
                            del bucket[:1]
                    continue
                # Execute in list order; same-cycle schedules append to
                # this same bucket and are picked up by the iterator's
                # per-step length check.  The finally block trims exactly
                # the executed prefix, so a callback that raises (watchdog
                # starvation, chaos injection) leaves the queue resumable
                # without replaying events.
                position = 0
                try:
                    for event in bucket:
                        position += 1
                        arg = event[3]
                        if arg is no_arg:
                            event[2]()
                        else:
                            event[2](arg)
                        if self._stopped:
                            break
                finally:
                    executed += position
                    self._count -= position
                    if position >= len(bucket):
                        del bucket[:]
                        occupied[index] = 0
                    else:
                        # Stopped mid-cycle: keep the unexecuted tail.
                        del bucket[:position]
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            self.events_executed += executed

    def _run_checked(self, until: Optional[int],
                     max_events: Optional[int]) -> int:
        """Reference loop: contract checks and ``max_events`` counting."""
        executed = 0
        last_seq = -1
        checked = self._contracts
        buckets = self._buckets
        occupied = self._occupied
        try:
            while self._count and not self._stopped:
                if self._overflow:
                    self._migrate()
                index = self._next_bucket()
                if index < 0:
                    when = self._overflow[0][0]
                    if until is not None and when >= until:
                        self.now = until
                        return self.now
                    self.now = when
                    continue
                bucket = buckets[index]
                when = bucket[0][0]
                if until is not None and when >= until:
                    self.now = until
                    return self.now
                if max_events is not None and executed >= max_events:
                    return self.now
                when, seq, callback, arg = bucket.pop(0)
                if not bucket:
                    occupied[index] = 0
                self._count -= 1
                if checked:
                    contracts.check(
                        when >= self.now,
                        "time monotonicity violated: popped event at cycle "
                        "%d behind current cycle %d", when, self.now)
                    contracts.check(
                        when > self.now or seq > last_seq,
                        "wheel-FIFO order violated at cycle %d: event seq "
                        "%d popped after seq %d", when, seq, last_seq)
                last_seq = seq
                self.now = when
                if arg is _NO_ARG:
                    callback()
                else:
                    callback(arg)
                executed += 1
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            self.events_executed += executed
