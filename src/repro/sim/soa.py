"""Struct-of-arrays trace columns for the batched simulation kernel.

The heap kernel replays traces through the iterator protocol and derives
everything per access: line number, cache set, DRAM coordinates.  The
batched kernel instead precomputes the derived values *once per trace* as
parallel columns -- ``works`` / ``addrs`` / ``iswrites`` / ``lines`` --
using numpy int64 array ops over the whole event stream (one vectorized
shift instead of one Python shift per replayed access), plus a DRAM
coordinate table mapping every distinct line to its
``(flat_bank, row, channel)`` triple via
:meth:`~repro.dram.address_map.AddressMapper.map_lines`.

Columns are converted back to plain Python scalars (``ndarray.tolist``)
before they leave this module: the hot loops index them as ordinary lists
(CPython list indexing beats numpy scalar extraction), and no ``np.int64``
ever reaches a statistic, a fingerprint, or a JSON document.

Everything here is memoized per ``(profile, seed)`` -- the same key the
trace generator's own memo uses -- because the same seeded trace drives
many systems (slowdown baselines, benchmark repeats, GA evaluations).
numpy is optional: without it the columns are built by plain Python loops
with identical results.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..dram.address_map import AddressMapper
from ..dram.timing import DramTiming

try:  # pragma: no cover - exercised implicitly by every batched run
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: bounded memos (same policy as the trace generator's stream memo)
_COLUMN_MEMO: "OrderedDict[Tuple, TraceColumns]" = OrderedDict()
_COORD_MEMO: "OrderedDict[Tuple, Dict[int, Tuple[int, int, int]]]" = \
    OrderedDict()
_MEMO_MAX = 64


class TraceColumns(NamedTuple):
    """Parallel per-event columns of one trace (do not mutate)."""

    #: compute gap before each access, in cycles
    works: List[int]
    #: byte address of each access
    addrs: List[int]
    #: write flag of each access
    iswrites: List[bool]
    #: cache-line number (``address >> log2(line_bytes)``)
    lines: List[int]
    #: zipped ``(work, address, is_write, line)`` rows -- the core's run
    #: loop fetches one row per access (one index plus an unpack) instead
    #: of four column indexings
    rows: List[Tuple[int, int, bool, int]]

    @property
    def length(self) -> int:
        return len(self.works)


def _shift_for(value: int) -> Optional[int]:
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def trace_key(trace) -> Optional[Tuple]:
    """Hashable memo key of a trace, or ``None`` when not memoizable."""
    profile = getattr(trace, "profile", None)
    seed = getattr(trace, "seed", None)
    if profile is None or seed is None:
        return None
    try:
        hash((profile, seed))
    except TypeError:
        return None
    return (profile, seed)


def _memo_put(memo: OrderedDict, key: Tuple, value) -> None:
    memo[key] = value
    if len(memo) > _MEMO_MAX:
        memo.popitem(last=False)


def trace_columns(trace, line_bytes: int) -> Optional[TraceColumns]:
    """Build (or fetch) the SoA columns of ``trace``.

    Returns ``None`` when the trace cannot be materialised as columns
    (non-power-of-two line size, or events that are not 4-field
    ``(work, address, is_write, depends)`` records); callers fall back to
    the iterator-driven core model in that case.
    """
    shift = _shift_for(line_bytes)
    if shift is None:
        return None
    key = trace_key(trace)
    memo_key = (key, shift) if key is not None else None
    if memo_key is not None:
        cached = _COLUMN_MEMO.get(memo_key)
        if cached is not None:
            return cached
    try:
        events = tuple(iter(trace))
    except TypeError:
        return None
    if not events:
        return None
    columns = _build_columns(events, shift)
    if columns is not None and memo_key is not None:
        _memo_put(_COLUMN_MEMO, memo_key, columns)
    return columns


def _build_columns(events: Tuple, shift: int) -> Optional[TraceColumns]:
    if _np is not None:
        try:
            table = _np.array(events, dtype=_np.int64)
        except (TypeError, ValueError):
            return None
        if table.ndim != 2 or table.shape[1] < 3:
            return None
        addrs_col = table[:, 1]
        works = table[:, 0].tolist()
        addrs = addrs_col.tolist()
        iswrites = (table[:, 2] != 0).tolist()
        lines = (addrs_col >> shift).tolist()
        return TraceColumns(works, addrs, iswrites, lines,
                            list(zip(works, addrs, iswrites, lines)))
    works: List[int] = []
    addrs: List[int] = []
    iswrites: List[bool] = []
    lines: List[int] = []
    try:
        for event in events:
            works.append(int(event[0]))
            addrs.append(int(event[1]))
            iswrites.append(bool(event[2]))
            lines.append(int(event[1]) >> shift)
    except (TypeError, IndexError):
        return None
    return TraceColumns(works, addrs, iswrites, lines,
                        list(zip(works, addrs, iswrites, lines)))


def dram_coord_table(trace, timing: DramTiming,
                     scheme: str) -> Optional[Dict[int, Tuple[int, int, int]]]:
    """DRAM line -> ``(flat_bank, row, channel)`` for a trace's addresses.

    Keyed by ``address >> log2(timing.line_bytes)``.  Covers every address
    the trace touches -- and therefore every dirty-victim writeback too,
    since victims are previously-filled lines of the same stream.  The
    batched memory controller falls back to the scalar mapper for any
    address outside the table, so the table is a pure accelerator, never a
    correctness dependency.
    """
    dshift = _shift_for(timing.line_bytes)
    if dshift is None:
        return None
    key = trace_key(trace)
    memo_key = (key, timing, scheme) if key is not None else None
    if memo_key is not None:
        cached = _COORD_MEMO.get(memo_key)
        if cached is not None:
            return cached
    columns = trace_columns(trace, timing.line_bytes)
    if columns is None:
        return None
    mapper = AddressMapper(timing, scheme=scheme)
    if _np is not None:
        unique = _np.unique(_np.array(columns.lines, dtype=_np.int64))
        flat, row, channel = mapper.map_lines(unique)
        table = dict(zip(unique.tolist(),
                         zip(flat.tolist(), row.tolist(), channel.tolist())))
    else:
        table = {}
        line_bytes = timing.line_bytes
        for line in set(columns.lines):
            coords = mapper.map(line * line_bytes)
            table[line] = (mapper.flat_index(coords), coords.row,
                           coords.channel)
    if memo_key is not None:
        _memo_put(_COORD_MEMO, memo_key, table)
    return table
