"""Shared (or private) last-level cache with banked access.

The LLC reports hit/miss back to each core's MITTS shaper per request --
the hybrid design of Section III-D -- and forwards misses to the memory
controller.  Banks serialise accesses mapped to them, so a core hogging the
LLC delays others even when everything hits: this is the "destructive
effects at a shared LLC" that source-side shaping can counter (Section
IV-D advantage 1).

Completion callbacks are scheduled as ``(bound method, request)`` pairs
(no per-event closures), with the bound methods created once here.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .cache import Cache
from .engine import Engine
from .request import MemoryRequest, RequestIdAllocator, _default_request_ids
from .stats import SystemStats


class SharedLLC:
    """Banked LLC between the shaper ports and the memory controller."""

    __slots__ = ("engine", "cache", "forward_miss", "respond",
                 "hit_latency", "banks", "bank_busy", "stats", "_bank_free",
                 "hits", "misses", "_hit_cb", "_miss_cb", "_new_req_id",
                 "_line_shift", "_bank_mask", "_line_bytes", "_stat_cores")

    def __init__(self, engine: Engine, cache: Cache,
                 forward_miss: Callable[[MemoryRequest], None],
                 respond: Callable[[MemoryRequest, bool], None],
                 hit_latency: int = 30, banks: int = 8,
                 bank_busy: int = 4,
                 stats: Optional[SystemStats] = None,
                 req_ids: Optional[RequestIdAllocator] = None) -> None:
        self.engine = engine
        self.cache = cache
        self.forward_miss = forward_miss
        self.respond = respond
        self.hit_latency = hit_latency
        self.banks = banks
        self.bank_busy = bank_busy
        self.stats = stats
        self._bank_free: List[int] = [0] * banks
        self.hits = 0
        self.misses = 0
        self._hit_cb = self._hit
        self._miss_cb = self._miss
        self._stat_cores = stats.cores if stats is not None else None
        self._new_req_id = req_ids or _default_request_ids
        line_bytes = cache.geometry.line_bytes
        self._line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1 \
            if line_bytes & (line_bytes - 1) == 0 else None
        self._bank_mask = banks - 1 if banks & (banks - 1) == 0 else None

    def lookup(self, request: MemoryRequest) -> None:
        """Start an LLC access for ``request`` at the current cycle."""
        engine = self.engine
        now = engine.now
        shift = self._line_shift
        line = request.address >> shift if shift is not None \
            else request.address // self._line_bytes
        mask = self._bank_mask
        bank = line & mask if mask is not None else line % self.banks
        bank_free = self._bank_free
        free_at = bank_free[bank]
        start = now if now > free_at else free_at
        bank_free[bank] = start + self.bank_busy
        hit, dirty_victim = self.cache.access(request.address,
                                              request.is_write)
        respond_at = start + self.hit_latency
        demand = request.shaper_bin != -2
        cores = self._stat_cores
        if hit:
            self.hits += 1
            if cores is not None and demand:
                cores[request.core_id].llc_hits += 1
            engine.schedule(respond_at, self._hit_cb, request)
        else:
            self.misses += 1
            if cores is not None and demand:
                cores[request.core_id].llc_misses += 1
            engine.schedule(respond_at, self._miss_cb, request)
            if dirty_victim is not None:
                writeback = MemoryRequest(core_id=request.core_id,
                                          address=dirty_victim,
                                          is_write=True,
                                          l1_miss_cycle=now,
                                          req_id=self._new_req_id())
                writeback.shaper_bin = -2
                writeback.issue_cycle = now
                engine.schedule(respond_at, self.forward_miss, writeback)

    def _hit(self, request: MemoryRequest) -> None:
        self.respond(request, True)

    def _miss(self, request: MemoryRequest) -> None:
        self.respond(request, False)
        self.forward_miss(request)
