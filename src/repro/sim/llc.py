"""Shared (or private) last-level cache with banked access.

The LLC reports hit/miss back to each core's MITTS shaper per request --
the hybrid design of Section III-D -- and forwards misses to the memory
controller.  Banks serialise accesses mapped to them, so a core hogging the
LLC delays others even when everything hits: this is the "destructive
effects at a shared LLC" that source-side shaping can counter (Section
IV-D advantage 1).
"""

from __future__ import annotations

from typing import Callable, List

from .cache import Cache
from .engine import Engine
from .request import MemoryRequest
from .stats import SystemStats


class SharedLLC:
    """Banked LLC between the shaper ports and the memory controller."""

    def __init__(self, engine: Engine, cache: Cache,
                 forward_miss: Callable[[MemoryRequest], None],
                 respond: Callable[[MemoryRequest, bool], None],
                 hit_latency: int = 30, banks: int = 8,
                 bank_busy: int = 4,
                 stats: SystemStats = None) -> None:
        self.engine = engine
        self.cache = cache
        self.forward_miss = forward_miss
        self.respond = respond
        self.hit_latency = hit_latency
        self.banks = banks
        self.bank_busy = bank_busy
        self.stats = stats
        self._bank_free: List[int] = [0] * banks
        self.hits = 0
        self.misses = 0

    def lookup(self, request: MemoryRequest) -> None:
        """Start an LLC access for ``request`` at the current cycle."""
        now = self.engine.now
        line = request.address // self.cache.geometry.line_bytes
        bank = line % self.banks
        start = max(now, self._bank_free[bank])
        self._bank_free[bank] = start + self.bank_busy
        hit, dirty_victim = self.cache.access(request.address,
                                              request.is_write)
        respond_at = start + self.hit_latency
        demand = request.shaper_bin != -2
        if hit:
            self.hits += 1
            if self.stats is not None and demand:
                self.stats.cores[request.core_id].llc_hits += 1
            self.engine.schedule(respond_at,
                                 lambda: self.respond(request, True))
        else:
            self.misses += 1
            if self.stats is not None and demand:
                self.stats.cores[request.core_id].llc_misses += 1
            self.engine.schedule(
                respond_at, lambda: self._miss(request))
            if dirty_victim is not None:
                writeback = MemoryRequest(core_id=request.core_id,
                                          address=dirty_victim,
                                          is_write=True,
                                          l1_miss_cycle=now)
                writeback.shaper_bin = -2
                writeback.issue_cycle = now
                self.engine.schedule(
                    respond_at, lambda: self.forward_miss(writeback))

    def _miss(self, request: MemoryRequest) -> None:
        self.respond(request, False)
        self.forward_miss(request)
