"""Discrete-event simulation engine.

The whole simulator is event-driven rather than cycle-ticked: components
schedule callbacks at absolute cycle times on a single binary heap.  This is
what makes pure-Python simulation of multi-million-cycle regions practical --
the cost of a run is proportional to the number of memory-system events, not
the number of cycles.

Time is measured in integer CPU cycles (the paper's core runs at 2.4 GHz and
all DRAM timing parameters are converted to CPU cycles up front, see
:mod:`repro.dram.timing`).

The event kernel is the hottest loop in the repository (every experiment,
sweep and GA fitness evaluation bottoms out here), so it is written for
CPython speed without giving up determinism:

* events are ``(when, seq, callback, arg)`` tuples -- hot callers pass a
  bound method plus its argument instead of allocating a per-event closure;
* :meth:`run` hoists the heap, ``heappop`` and the no-arg sentinel into
  locals and batches same-cycle event chains so the horizon comparison is
  paid once per simulated cycle, not once per event;
* the contract-checked and ``max_events``-counting variant lives on a
  separate slow path so the common case (``run(until=...)``) stays lean.

Every fast-path shortcut preserves the FIFO pop order of the seeded heap,
so results are bit-identical to the straightforward loop (pinned by the
golden-fingerprint tests).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..analysis import contracts

_heappush = heapq.heappush
_heappop = heapq.heappop


class _NoArg:
    """Singleton sentinel marking "call the callback with no argument".

    The run loops compare event args against the sentinel *by identity*
    (``arg is _NO_ARG``), so the sentinel must survive serialisation as
    the same object: a checkpointed engine whose heap holds no-arg events
    must, after unpickling, still recognise them.  A plain ``object()``
    would deserialise to a fresh instance and the restored loop would
    call ``callback(<junk>)``.  ``__new__``/``__reduce__`` pin the
    module-level instance on both construction and unpickling.
    """

    __slots__ = ()
    _instance: "_NoArg" = None

    def __new__(cls) -> "_NoArg":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_NoArg, ())

    def __repr__(self) -> str:
        return "<no-arg>"


#: sentinel marking "call the callback with no argument"
_NO_ARG = _NoArg()


class Engine:
    """A minimal discrete-event scheduler keyed by integer cycle time.

    Events scheduled for the same cycle run in FIFO order of scheduling,
    which keeps component interactions deterministic.  Scheduling a
    ``(callback, arg)`` pair is equivalent to scheduling
    ``lambda: callback(arg)`` but allocates nothing per event; FIFO order
    depends only on the ``(when, seq)`` heap key, so both forms interleave
    deterministically.

    With runtime contracts enabled (``REPRO_CONTRACTS=1``, see
    :mod:`repro.analysis.contracts`) the engine verifies its two core
    invariants on every event -- time never runs backwards and same-cycle
    events pop in FIFO scheduling order -- and rejects non-integer cycle
    arguments at :meth:`schedule` time.  The flag is captured at
    construction so the disabled case costs one attribute read per event.
    """

    __slots__ = ("now", "_queue", "_counter", "_stopped", "_contracts",
                 "events_executed")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable, object]] = []
        self._counter = itertools.count()
        self._stopped = False
        self._contracts = contracts.is_enabled()
        #: cumulative number of events executed (perf accounting only;
        #: never feeds back into simulated behaviour)
        self.events_executed: int = 0

    def schedule(self, when: int, callback: Callable,
                 arg: object = _NO_ARG) -> None:
        """Schedule ``callback`` (optionally ``callback(arg)``) at absolute
        cycle ``when``.

        Scheduling in the past is clamped to the current cycle; this lets
        components compute "ready" times without worrying about underflow.
        """
        if self._contracts:
            contracts.check(
                isinstance(when, int),
                "Engine.schedule(when=%r): simulated time is integer CPU "
                "cycles, got %s", when, type(when).__name__)
            contracts.check(
                callable(callback),
                "Engine.schedule: callback %r is not callable", callback)
        if when < self.now:
            when = self.now
        _heappush(self._queue, (when, next(self._counter), callback, arg))

    def schedule_in(self, delay: int, callback: Callable,
                    arg: object = _NO_ARG) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback, arg)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` cycles pass, or
        ``max_events`` events have executed.

        Returns the final simulation time.  Events scheduled at exactly
        ``until`` do *not* run (the horizon is exclusive), so repeated calls
        with increasing horizons never execute an event twice.
        """
        self._stopped = False
        if self._contracts or max_events is not None:
            return self._run_checked(until, max_events)

        # Fast path: locals for everything touched per event, and an inner
        # loop that drains each cycle's whole event chain with one horizon
        # check.  Pop order is exactly the heap's (when, seq) order, so
        # this is observably identical to the one-event-at-a-time loop.
        queue = self._queue
        pop = _heappop
        no_arg = _NO_ARG
        executed = 0
        if until is None:
            while queue and not self._stopped:
                when, _seq, callback, arg = pop(queue)
                self.now = when
                if arg is no_arg:
                    callback()
                else:
                    callback(arg)
                executed += 1
                while queue and queue[0][0] == when and not self._stopped:
                    _when, _seq, callback, arg = pop(queue)
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    executed += 1
        else:
            while queue and not self._stopped:
                when = queue[0][0]
                if when >= until:
                    break
                self.now = when
                while queue and queue[0][0] == when and not self._stopped:
                    _when, _seq, callback, arg = pop(queue)
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    executed += 1
            if self.now < until:
                self.now = until
        self.events_executed += executed
        return self.now

    def _run_checked(self, until: Optional[int],
                     max_events: Optional[int]) -> int:
        """Reference event loop: contract checks and ``max_events``."""
        executed = 0
        last_seq = -1
        checked = self._contracts
        try:
            while self._queue and not self._stopped:
                when = self._queue[0][0]
                if until is not None and when >= until:
                    self.now = until
                    return self.now
                if max_events is not None and executed >= max_events:
                    return self.now
                when, seq, callback, arg = _heappop(self._queue)
                if checked:
                    contracts.check(
                        when >= self.now,
                        "time monotonicity violated: popped event at cycle %d "
                        "behind current cycle %d", when, self.now)
                    contracts.check(
                        when > self.now or seq > last_seq,
                        "heap-FIFO order violated at cycle %d: event seq %d "
                        "popped after seq %d", when, seq, last_seq)
                last_seq = seq
                self.now = when
                if arg is _NO_ARG:
                    callback()
                else:
                    callback(arg)
                executed += 1
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            self.events_executed += executed
