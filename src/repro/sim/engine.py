"""Discrete-event simulation engine.

The whole simulator is event-driven rather than cycle-ticked: components
schedule callbacks at absolute cycle times on a single binary heap.  This is
what makes pure-Python simulation of multi-million-cycle regions practical --
the cost of a run is proportional to the number of memory-system events, not
the number of cycles.

Time is measured in integer CPU cycles (the paper's core runs at 2.4 GHz and
all DRAM timing parameters are converted to CPU cycles up front, see
:mod:`repro.dram.timing`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class Engine:
    """A minimal discrete-event scheduler keyed by integer cycle time.

    Events scheduled for the same cycle run in FIFO order of scheduling,
    which keeps component interactions deterministic.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._stopped = False

    def schedule(self, when: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``when``.

        Scheduling in the past is clamped to the current cycle; this lets
        components compute "ready" times without worrying about underflow.
        """
        if when < self.now:
            when = self.now
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def schedule_in(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` cycles pass, or
        ``max_events`` events have executed.

        Returns the final simulation time.  Events scheduled at exactly
        ``until`` do *not* run (the horizon is exclusive), so repeated calls
        with increasing horizons never execute an event twice.
        """
        self._stopped = False
        executed = 0
        while self._queue and not self._stopped:
            when = self._queue[0][0]
            if until is not None and when >= until:
                self.now = until
                return self.now
            if max_events is not None and executed >= max_events:
                return self.now
            when, _, callback = heapq.heappop(self._queue)
            self.now = when
            callback()
            executed += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now
