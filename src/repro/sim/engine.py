"""Discrete-event simulation engine.

The whole simulator is event-driven rather than cycle-ticked: components
schedule callbacks at absolute cycle times on a single binary heap.  This is
what makes pure-Python simulation of multi-million-cycle regions practical --
the cost of a run is proportional to the number of memory-system events, not
the number of cycles.

Time is measured in integer CPU cycles (the paper's core runs at 2.4 GHz and
all DRAM timing parameters are converted to CPU cycles up front, see
:mod:`repro.dram.timing`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..analysis import contracts


class Engine:
    """A minimal discrete-event scheduler keyed by integer cycle time.

    Events scheduled for the same cycle run in FIFO order of scheduling,
    which keeps component interactions deterministic.

    With runtime contracts enabled (``REPRO_CONTRACTS=1``, see
    :mod:`repro.analysis.contracts`) the engine verifies its two core
    invariants on every event -- time never runs backwards and same-cycle
    events pop in FIFO scheduling order -- and rejects non-integer cycle
    arguments at :meth:`schedule` time.  The flag is captured at
    construction so the disabled case costs one attribute read per event.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._stopped = False
        self._contracts = contracts.is_enabled()

    def schedule(self, when: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``when``.

        Scheduling in the past is clamped to the current cycle; this lets
        components compute "ready" times without worrying about underflow.
        """
        if self._contracts:
            contracts.check(
                isinstance(when, int),
                "Engine.schedule(when=%r): simulated time is integer CPU "
                "cycles, got %s", when, type(when).__name__)
            contracts.check(
                callable(callback),
                "Engine.schedule: callback %r is not callable", callback)
        if when < self.now:
            when = self.now
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def schedule_in(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` cycles pass, or
        ``max_events`` events have executed.

        Returns the final simulation time.  Events scheduled at exactly
        ``until`` do *not* run (the horizon is exclusive), so repeated calls
        with increasing horizons never execute an event twice.
        """
        self._stopped = False
        executed = 0
        last_seq = -1
        while self._queue and not self._stopped:
            when = self._queue[0][0]
            if until is not None and when >= until:
                self.now = until
                return self.now
            if max_events is not None and executed >= max_events:
                return self.now
            when, seq, callback = heapq.heappop(self._queue)
            if self._contracts:
                contracts.check(
                    when >= self.now,
                    "time monotonicity violated: popped event at cycle %d "
                    "behind current cycle %d", when, self.now)
                contracts.check(
                    when > self.now or seq > last_seq,
                    "heap-FIFO order violated at cycle %d: event seq %d "
                    "popped after seq %d", when, seq, last_seq)
            last_seq = seq
            self.now = when
            callback()
            executed += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now
