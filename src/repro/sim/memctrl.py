"""Memory controller: transaction queue + pluggable scheduling policy.

Table II's controller has a 32-entry transaction queue; Section III-C adds
a small fixed FIFO that absorbs global burstiness when many cores spend
burst credits simultaneously.  Requests beyond the queue depth back up into
an overflow FIFO (they "back up to the cores" in the paper's words) and are
invisible to the scheduler until a slot frees, which bounds the scheduling
window just like real hardware.

Bank-level parallelism is preserved: the controller keeps dispatching
selected requests to the DRAM device while the data bus is not booked too
far ahead, so independent banks overlap their activates.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..analysis import contracts
from ..dram.device import DramDevice
from .engine import Engine
from .request import MemoryRequest
from .stats import SystemStats


def _queue_within_depth(mc: "MemoryController") -> bool:
    """scheduler-visible transaction queue stays within queue_depth"""
    return len(mc.queue) <= mc.queue_depth


def _inflight_within_banks(mc: "MemoryController") -> bool:
    """in-flight DRAM requests stay within [0, total_banks]"""
    return 0 <= mc._inflight <= mc._max_inflight


class MemoryController:
    """Transaction queue feeding the DRAM device via a scheduler policy."""

    __slots__ = ("engine", "dram", "scheduler", "complete", "queue_depth",
                 "stats", "queue", "overflow", "_inflight", "_max_inflight",
                 "_complete_cb", "_cores", "dispatched", "probe")

    def __init__(self, engine: Engine, dram: DramDevice,
                 scheduler: "MemorySchedulerProtocol",
                 complete: Callable[[MemoryRequest], None],
                 queue_depth: int = 32,
                 stats: Optional[SystemStats] = None) -> None:
        self.engine = engine
        self.dram = dram
        self.scheduler = scheduler
        self.complete = complete
        self.queue_depth = queue_depth
        self.stats = stats
        self.queue: List[MemoryRequest] = []
        self.overflow: Deque[MemoryRequest] = deque()
        self._inflight = 0
        self._max_inflight = dram.timing.total_banks
        #: pre-bound completion callback (one allocation, not one/event);
        #: contract-free when contracts are off at construction time
        self._complete_cb = contracts.hot_bind(self._complete)
        self._cores = stats.cores if stats is not None else None
        #: cumulative requests handed to DRAM -- the forward-progress
        #: watchdog's dequeue probe; never feeds back into behaviour
        self.dispatched = 0
        #: optional completion observer (``on_mc_complete(request, now)``);
        #: the analytic bound checker (repro.validate) attaches here to
        #: measure request sojourn.  Observers never mutate simulator
        #: state, so attaching one is bit-neutral.
        self.probe = None

    @contracts.invariant(_queue_within_depth, _inflight_within_banks)
    def enqueue(self, request: MemoryRequest) -> None:
        request.mc_arrival_cycle = self.engine.now
        queue = self.queue
        if len(queue) >= self.queue_depth:
            self.overflow.append(request)
            if self.stats is not None:
                self.stats.queue_backpressure_events += 1
        else:
            queue.append(request)
        if self.stats is not None:
            depth = len(queue) + len(self.overflow)
            if depth > self.stats.peak_queue_depth:
                self.stats.peak_queue_depth = depth
        self._dispatch()

    @property
    def pending(self) -> int:
        return len(self.queue) + len(self.overflow) + self._inflight

    def _refill_window(self) -> None:
        overflow = self.overflow
        queue = self.queue
        while overflow and len(queue) < self.queue_depth:
            queue.append(overflow.popleft())

    def _dispatch(self) -> None:
        """Dispatch selected requests while bank-level slots are free.

        One in-flight request per bank keeps independent banks overlapped
        (that is where DRAM parallelism comes from) while the rest of the
        queue stays visible to the scheduler, so late decisions -- row-hit
        prioritisation, per-core ranking -- still apply.
        """
        engine = self.engine
        now = engine.now
        queue = self.queue
        select = self.scheduler.select
        service = self.dram.service
        complete_cb = self._complete_cb
        while queue and self._inflight < self._max_inflight:
            request = select(queue, now, self)
            if request is None:
                return
            queue.remove(request)
            self._refill_window()
            request.dram_start_cycle = now
            done = service(request.address, now, request.is_write)
            self._inflight += 1
            self.dispatched += 1
            engine.schedule(done, complete_cb, request)

    @contracts.invariant(_queue_within_depth, _inflight_within_banks)
    def _complete(self, request: MemoryRequest) -> None:
        self._inflight -= 1
        if self.probe is not None:
            self.probe.on_mc_complete(request, self.engine.now)
        if self._cores is not None:
            core = self._cores[request.core_id]
            if request.shaper_bin == -2:
                core.writebacks += 1
            else:
                core.dram_requests += 1
        self.scheduler.on_complete(request, self.engine.now)
        self.complete(request)
        self._refill_window()
        self._dispatch()


class MemorySchedulerProtocol:
    """Interface memory schedulers implement (see :mod:`repro.sched`)."""

    __slots__ = ()

    #: Declares that ``select`` always returns ``queue[0]`` (strict FCFS
    #: over the controller's arrival-ordered queue).  The batched kernel's
    #: memory controller replaces select-then-``queue.remove`` with a
    #: single ``pop(0)`` when this holds; schedulers that reorder must
    #: leave it False.
    selects_head = False

    def select(self, queue: List[MemoryRequest], now: int,
               controller: MemoryController) -> Optional[MemoryRequest]:
        raise NotImplementedError

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        """Completion hook (service-rate accounting for TCM/MISE)."""
