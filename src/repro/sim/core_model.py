"""Trace-driven core model and the shaper port that throttles its misses.

The core replays a workload trace of ``(work, address, is_write)`` events.
Compute cycles advance the core's clock; memory accesses look up the L1.
L1 misses are handed to the :class:`ShaperPort`, which releases them toward
the LLC at the times the core's :class:`~repro.core.limiter.SourceLimiter`
permits.  Memory-level parallelism is bounded by ``mlp`` outstanding misses
(MSHR-style): when the bound is hit the core blocks until a response
returns, which is how shaper stalls backpressure into lost performance --
exactly the "stalls the core" behaviour of Section III-B1.

Progress is measured in *work cycles retired*: the slowdown metrics of
Section IV-D compare work retired alone vs. shared over the same wall-clock
window.

Hot-path notes: both classes pre-bind their own event callbacks once at
construction (``self._run`` / ``self._wake`` re-bound per ``schedule``
call would allocate a bound method per event) and pass requests to the
engine as ``(callback, arg)`` pairs instead of closures.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, Iterator, Optional

from ..core.limiter import NoLimiter, SourceLimiter
from .cache import Cache
from .engine import Engine
from .request import MemoryRequest, RequestIdAllocator, _default_request_ids
from .stats import CoreStats


class ShaperPort:
    """FIFO between a core's L1 miss path and the LLC, policed by a limiter.

    Requests are released in order; each release consults the limiter's
    ``earliest_issue`` and commits with ``issue``.  When the limiter can
    never release (zero-credit config), requests park until the limiter is
    reconfigured and :meth:`kick` is called.
    """

    __slots__ = ("engine", "limiter", "send", "stats",
                 "interarrival_bucket", "queue", "_wakeup_at", "_parked",
                 "_wake_cb", "_unshaped")

    def __init__(self, engine: Engine, limiter: SourceLimiter,
                 send: Callable[[MemoryRequest], None],
                 stats: CoreStats,
                 interarrival_bucket: int = 10) -> None:
        self.engine = engine
        self.limiter = limiter
        self.send = send
        self.stats = stats
        self.interarrival_bucket = interarrival_bucket
        self.queue: Deque[MemoryRequest] = deque()
        self._wakeup_at: Optional[int] = None
        self._parked = False
        self._wake_cb = self._wake
        #: exact pass-through limiter: _pump may skip its no-op calls
        self._unshaped = type(limiter) is NoLimiter

    def submit(self, request: MemoryRequest) -> None:
        self.queue.append(request)
        self._pump()

    def submit_bypass(self, request: MemoryRequest) -> None:
        """Send without consuming shaper budget (L1 writeback traffic).

        The paper's shaper polices L1 *misses*; dirty-victim writebacks are
        eviction side-effects, not demand requests, so they bypass the bins.
        """
        request.issue_cycle = self.engine.now
        self.send(request)

    def set_limiter(self, limiter: SourceLimiter) -> None:
        """Swap the limiter (online tuner installing a new config)."""
        self.limiter = limiter
        self._unshaped = type(limiter) is NoLimiter
        self.kick()

    def kick(self) -> None:
        """Re-evaluate release times after an external state change."""
        self._wakeup_at = None
        self._parked = False
        self._pump()

    @property
    def occupancy(self) -> int:
        return len(self.queue)

    def _pump(self) -> None:
        """Release every request whose time has come; sleep until the next."""
        if self._parked:
            return
        engine = self.engine
        limiter = self.limiter
        queue = self.queue
        stats = self.stats
        now = engine.now
        if self._unshaped:
            # NoLimiter always answers earliest_issue(now) == now and its
            # issue() is a no-op: drain without the two calls per request.
            bucket = self.interarrival_bucket
            send = self.send
            while queue:
                request = queue.popleft()
                request.issue_cycle = now
                stats.shaper_stall_cycles += now - request.l1_miss_cycle
                last = stats.last_issue_cycle
                if last >= 0:
                    stats.interarrival.add((now - last) // bucket)
                stats.last_issue_cycle = now
                send(request)
            return
        while queue:
            release_at = limiter.earliest_issue(now)
            if release_at is None:
                if limiter.stall_forever():
                    # Genuinely blocked until reconfiguration + kick().
                    self._parked = True
                else:
                    # Defensive: a live limiter found no slot within its
                    # search horizon; retry shortly rather than deadlock.
                    self._wakeup_at = now + 64
                    engine.schedule(self._wakeup_at, self._wake_cb)
                return
            if release_at > now:
                if self._wakeup_at is None or release_at < self._wakeup_at:
                    self._wakeup_at = release_at
                    engine.schedule(release_at, self._wake_cb)
                return
            request = queue.popleft()
            limiter.issue(now, request.req_id)
            request.issue_cycle = now
            stats.shaper_stall_cycles += now - request.l1_miss_cycle
            last = stats.last_issue_cycle
            if last >= 0:
                stats.interarrival.add(
                    (now - last) // self.interarrival_bucket)
            stats.last_issue_cycle = now
            self.send(request)

    def _wake(self) -> None:
        if self._wakeup_at is not None and self.engine.now >= self._wakeup_at:
            self._wakeup_at = None
            self._pump()


class CoreModel:
    """One trace-replaying core with an L1 cache and MSHR-bounded MLP."""

    __slots__ = ("core_id", "engine", "trace", "l1", "port", "stats",
                 "mlp", "line_bytes", "throttle_multiplier", "_iter",
                 "wraps", "outstanding", "_blocked", "_block_start",
                 "_pending_work", "_running", "_run_cb", "_new_req_id",
                 "_line_shift")

    def __init__(self, core_id: int, engine: Engine,
                 trace: Iterable, l1: Cache, port: ShaperPort,
                 stats: CoreStats, mlp: int = 8,
                 line_bytes: int = 64,
                 throttle_multiplier: float = 1.0,
                 req_ids: Optional[RequestIdAllocator] = None) -> None:
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.core_id = core_id
        self.engine = engine
        self.trace = trace
        self.l1 = l1
        self.port = port
        self.stats = stats
        self.mlp = mlp
        self.line_bytes = line_bytes
        #: >1.0 slows the core's compute (FST-style source throttling knob)
        self.throttle_multiplier = throttle_multiplier
        self._iter: Iterator = iter(trace)
        self.wraps = 0
        self.outstanding: Dict[int, bool] = {}
        self._blocked = False
        self._block_start = 0
        self._pending_work: Optional[list] = None
        self._running = False
        self._run_cb = self._run
        self._new_req_id = req_ids or _default_request_ids
        self._line_shift = line_bytes.bit_length() - 1 \
            if line_bytes & (line_bytes - 1) == 0 else None

    def start(self) -> None:
        """Schedule the first activity; call once before ``engine.run``."""
        self.engine.schedule(self.engine.now, self._run_cb)

    # ------------------------------------------------------------------

    def _next_event(self):
        try:
            return next(self._iter)
        except StopIteration:
            self.wraps += 1
            self._iter = iter(self.trace)
            return next(self._iter)

    def _run(self) -> None:
        """Process trace events until compute time elapses or we block."""
        if self._blocked or self._running:
            return
        self._running = True
        engine = self.engine
        multiplier = self.throttle_multiplier
        # At most issue-width zero-work accesses retire per cycle; beyond
        # that the core re-schedules itself one cycle later so simulated
        # time always advances (an all-hit trace must not spin forever).
        inline_budget = 4
        try:
            while True:
                pending = self._pending_work
                if pending is None:
                    event = self._next_event()
                    work = event.work if multiplier == 1.0 \
                        else int(event.work * multiplier)
                    pending = [work, work, event.address, event.is_write]
                    self._pending_work = pending
                remaining, work, address, is_write = pending
                if remaining > 0:
                    pending[0] = 0
                    engine.schedule(engine.now + remaining, self._run_cb)
                    return
                if inline_budget <= 0:
                    engine.schedule(engine.now + 1, self._run_cb)
                    return
                if not self._try_access(address, is_write, work):
                    # MSHRs full: block until a response frees one.
                    self._blocked = True
                    self._block_start = engine.now
                    return
                inline_budget -= 1
                self._pending_work = None
        finally:
            self._running = False

    def _try_access(self, address: int, is_write: bool, work: int) -> bool:
        """Perform the L1 access; False when blocked on MSHRs."""
        now = self.engine.now
        stats = self.stats
        shift = self._line_shift
        line = address >> shift if shift is not None \
            else address // self.line_bytes
        outstanding = self.outstanding
        if line in outstanding:
            # Coalesced secondary miss: the line is already in flight.
            stats.accesses += 1
            stats.retired += 1
            stats.work_cycles += 1 + work
            return True
        if len(outstanding) >= self.mlp and not self.l1.probe(address):
            return False
        stats.accesses += 1
        hit, dirty_victim = self.l1.access(address, is_write)
        if hit:
            stats.l1_hits += 1
            stats.retired += 1
            stats.work_cycles += 1 + work
            return True
        stats.l1_misses += 1
        outstanding[line] = True
        request = MemoryRequest(core_id=self.core_id, address=address,
                                is_write=is_write, l1_miss_cycle=now,
                                req_id=self._new_req_id())
        self.port.submit(request)
        if dirty_victim is not None:
            # Writeback travels the same path but needs no response.
            writeback = MemoryRequest(core_id=self.core_id,
                                      address=dirty_victim, is_write=True,
                                      l1_miss_cycle=now,
                                      req_id=self._new_req_id())
            writeback.shaper_bin = -2  # marks fire-and-forget
            self.port.submit_bypass(writeback)
        stats.retired += 1
        stats.work_cycles += 1 + work
        return True

    def _retire(self, work: int) -> None:
        self.stats.retired += 1
        # work was spent before the access; credit it plus the access cycle
        self.stats.work_cycles += 1 + work

    # ------------------------------------------------------------------

    def on_response(self, request: MemoryRequest) -> None:
        """Data returned (LLC hit or DRAM completion)."""
        now = self.engine.now
        shift = self._line_shift
        line = request.address >> shift if shift is not None \
            else request.address // self.line_bytes
        self.outstanding.pop(line, None)
        request.complete_cycle = now
        self.stats.total_latency += now - request.l1_miss_cycle
        self.stats.post_shaper_latency += now - request.issue_cycle
        if self._blocked:
            self._blocked = False
            self.stats.memory_stall_cycles += now - self._block_start
            self._run()
