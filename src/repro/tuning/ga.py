"""Offline genetic algorithm for bin configuration (Section IV-B).

"The offline algorithm optimizes for a single choice of bin configurations
across a whole program with 20 generations and 30 children per
generation."  The GA is elitist: the best genomes survive unchanged,
children are produced by tournament-selected crossover plus per-bin
mutation, and an optional repair operator projects every genome onto a
constraint surface (the equal-average-interval / equal-average-bandwidth
constraint of the static comparison uses
:func:`repro.core.config_space.repair_to_constraints`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.bins import BinConfig, BinSpec
from ..resilience.watchdog import StarvationError
from .genome import (Genome, crossover, genome_key, mutate, random_genome,
                     validate_genome)
from .objectives import STARVATION_FITNESS

#: scores a batch of genomes; must return one fitness per genome, in
#: order.  Injected to fan a generation's evaluations out in parallel
#: (see repro.experiments.common.parallel_batch_evaluator).
BatchEvaluator = Callable[[Sequence[Genome]], Sequence[float]]


#: paper-scale parameters (Section IV-B)
PAPER_GENERATIONS = 20
PAPER_POPULATION = 30


@dataclass
class GaParams:
    """Search hyper-parameters; defaults are scaled for pure-Python runs.

    Pass ``generations=PAPER_GENERATIONS, population=PAPER_POPULATION`` to
    reproduce the paper-scale search.
    """

    generations: int = 8
    population: int = 12
    elite: int = 2
    tournament: int = 3
    mutation_rate: float = 0.15
    max_per_bin: int = 64
    seed: int = 42

    def __post_init__(self) -> None:
        if self.generations < 1 or self.population < 2:
            raise ValueError("need >= 1 generation and >= 2 children")
        if not 0 <= self.elite < self.population:
            raise ValueError("elite must be < population")
        if self.tournament < 1:
            raise ValueError("tournament must be >= 1")


@dataclass
class GaResult:
    """Best genome found plus the per-generation best-fitness history.

    ``evaluations`` counts *deduplicated* fitness computations: elites
    carried between generations and duplicate children are scored once
    and served from the memo thereafter (``memo_hits`` counts those free
    lookups).  ``evaluations + memo_hits`` equals the naive
    generations x population budget.
    """

    best_genome: Genome
    best_fitness: float
    history: List[float] = field(default_factory=list)
    evaluations: int = 0
    memo_hits: int = 0
    #: evaluations that starved and were penalised instead of scored
    penalized: int = 0


class GeneticAlgorithm:
    """Elitist GA over per-core bin configurations."""

    def __init__(self, fitness: Callable[[Genome], float],
                 spec: BinSpec, num_cores: int,
                 params: GaParams = None,
                 repair: Optional[Callable[[BinConfig], BinConfig]] = None,
                 seed_genomes: Optional[List[Genome]] = None,
                 batch_evaluator: Optional[BatchEvaluator] = None) -> None:
        self.fitness = fitness
        self.spec = spec
        self.num_cores = num_cores
        self.params = params or GaParams()
        self.repair = repair
        # User-supplied seeds are the one place degenerate configurations
        # (all-zero credits, wrong geometry) can enter the search; reject
        # them here with the offending cores/bins named rather than
        # paying a simulation to find out.
        for genome in seed_genomes or []:
            validate_genome(genome)
        self.seed_genomes = seed_genomes or []
        self.batch_evaluator = batch_evaluator

    # ------------------------------------------------------------------

    def _repair(self, genome: Genome) -> Genome:
        if self.repair is None:
            return genome
        return [self.repair(config) for config in genome]

    def _initial_population(self, rng: random.Random) -> List[Genome]:
        population = [self._repair(genome) for genome in self.seed_genomes]
        while len(population) < self.params.population:
            population.append(self._repair(
                random_genome(self.spec, self.num_cores, rng,
                              self.params.max_per_bin)))
        return population[:self.params.population]

    def _tournament_pick(self, scored: List[Tuple[float, Genome]],
                         rng: random.Random) -> Genome:
        entrants = [scored[rng.randrange(len(scored))]
                    for _ in range(self.params.tournament)]
        return max(entrants, key=lambda pair: pair[0])[1]

    def _evaluate_batch(self, genomes: List[Genome]) -> List[float]:
        """Score genomes that missed the memo, as one batch."""
        if self.batch_evaluator is not None:
            scores = list(self.batch_evaluator(genomes))
            if len(scores) != len(genomes):
                raise ValueError(
                    f"batch evaluator returned {len(scores)} scores for "
                    f"{len(genomes)} genomes")
            return [float(score) for score in scores]
        scores = []
        for genome in genomes:
            try:
                scores.append(float(self.fitness(genome)))
            except StarvationError:
                # A starved simulation is a bad candidate, not a search
                # failure; FitnessEvaluator already maps this itself, so
                # this guard covers bare fitness callables.
                scores.append(STARVATION_FITNESS)
        return scores

    def run(self) -> GaResult:
        rng = random.Random(self.params.seed)
        population = self._initial_population(rng)
        history: List[float] = []
        memo: Dict[tuple, float] = {}
        evaluations = 0
        memo_hits = 0
        best_genome: Optional[Genome] = None
        best_fitness = float("-inf")

        for generation in range(self.params.generations):
            # Score only genomes the memo has never seen (elites carried
            # over -- and duplicate children -- cost zero evaluations);
            # fitness is deterministic, so memoisation cannot change the
            # search trajectory, only the work done.
            fresh: List[Genome] = []
            fresh_keys: List[tuple] = []
            batch_seen = set()
            for genome in population:
                key = genome_key(genome)
                if key in memo or key in batch_seen:
                    continue
                batch_seen.add(key)
                fresh.append(genome)
                fresh_keys.append(key)
            if fresh:
                # Batch evaluators that label work by generation (the
                # fabric submits each batch as a campaign) opt in by
                # exposing set_generation; plain callables are untouched.
                announce = getattr(self.batch_evaluator,
                                   "set_generation", None)
                if announce is not None:
                    announce(generation)
                for key, score in zip(fresh_keys,
                                      self._evaluate_batch(fresh)):
                    memo[key] = score
                evaluations += len(fresh)
            memo_hits += len(population) - len(fresh)

            scored = []
            for genome in population:
                score = memo[genome_key(genome)]
                scored.append((score, genome))
                if score > best_fitness:
                    best_fitness = score
                    best_genome = genome
            scored.sort(key=lambda pair: pair[0], reverse=True)
            history.append(scored[0][0])

            next_population = [genome for _, genome
                               in scored[:self.params.elite]]
            while len(next_population) < self.params.population:
                parent_a = self._tournament_pick(scored, rng)
                parent_b = self._tournament_pick(scored, rng)
                child = crossover(parent_a, parent_b, rng)
                child = mutate(child, rng, self.params.mutation_rate,
                               self.params.max_per_bin)
                next_population.append(self._repair(child))
            population = next_population

        assert best_genome is not None
        penalized = sum(1 for score in memo.values()
                        if score <= STARVATION_FITNESS)
        return GaResult(best_genome=best_genome, best_fitness=best_fitness,
                        history=history, evaluations=evaluations,
                        memo_hits=memo_hits, penalized=penalized)
