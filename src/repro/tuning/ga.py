"""Offline genetic algorithm for bin configuration (Section IV-B).

"The offline algorithm optimizes for a single choice of bin configurations
across a whole program with 20 generations and 30 children per
generation."  The GA is elitist: the best genomes survive unchanged,
children are produced by tournament-selected crossover plus per-bin
mutation, and an optional repair operator projects every genome onto a
constraint surface (the equal-average-interval / equal-average-bandwidth
constraint of the static comparison uses
:func:`repro.core.config_space.repair_to_constraints`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..core.bins import BinConfig, BinSpec
from .genome import Genome, crossover, mutate, random_genome


#: paper-scale parameters (Section IV-B)
PAPER_GENERATIONS = 20
PAPER_POPULATION = 30


@dataclass
class GaParams:
    """Search hyper-parameters; defaults are scaled for pure-Python runs.

    Pass ``generations=PAPER_GENERATIONS, population=PAPER_POPULATION`` to
    reproduce the paper-scale search.
    """

    generations: int = 8
    population: int = 12
    elite: int = 2
    tournament: int = 3
    mutation_rate: float = 0.15
    max_per_bin: int = 64
    seed: int = 42

    def __post_init__(self) -> None:
        if self.generations < 1 or self.population < 2:
            raise ValueError("need >= 1 generation and >= 2 children")
        if not 0 <= self.elite < self.population:
            raise ValueError("elite must be < population")
        if self.tournament < 1:
            raise ValueError("tournament must be >= 1")


@dataclass
class GaResult:
    """Best genome found plus the per-generation best-fitness history."""

    best_genome: Genome
    best_fitness: float
    history: List[float] = field(default_factory=list)
    evaluations: int = 0


class GeneticAlgorithm:
    """Elitist GA over per-core bin configurations."""

    def __init__(self, fitness: Callable[[Genome], float],
                 spec: BinSpec, num_cores: int,
                 params: GaParams = None,
                 repair: Optional[Callable[[BinConfig], BinConfig]] = None,
                 seed_genomes: Optional[List[Genome]] = None) -> None:
        self.fitness = fitness
        self.spec = spec
        self.num_cores = num_cores
        self.params = params or GaParams()
        self.repair = repair
        self.seed_genomes = seed_genomes or []

    # ------------------------------------------------------------------

    def _repair(self, genome: Genome) -> Genome:
        if self.repair is None:
            return genome
        return [self.repair(config) for config in genome]

    def _initial_population(self, rng: random.Random) -> List[Genome]:
        population = [self._repair(genome) for genome in self.seed_genomes]
        while len(population) < self.params.population:
            population.append(self._repair(
                random_genome(self.spec, self.num_cores, rng,
                              self.params.max_per_bin)))
        return population[:self.params.population]

    def _tournament_pick(self, scored: List[Tuple[float, Genome]],
                         rng: random.Random) -> Genome:
        entrants = [scored[rng.randrange(len(scored))]
                    for _ in range(self.params.tournament)]
        return max(entrants, key=lambda pair: pair[0])[1]

    def run(self) -> GaResult:
        rng = random.Random(self.params.seed)
        population = self._initial_population(rng)
        history: List[float] = []
        evaluations = 0
        best_genome: Optional[Genome] = None
        best_fitness = float("-inf")

        for _ in range(self.params.generations):
            scored = []
            for genome in population:
                score = self.fitness(genome)
                evaluations += 1
                scored.append((score, genome))
                if score > best_fitness:
                    best_fitness = score
                    best_genome = genome
            scored.sort(key=lambda pair: pair[0], reverse=True)
            history.append(scored[0][0])

            next_population = [genome for _, genome
                               in scored[:self.params.elite]]
            while len(next_population) < self.params.population:
                parent_a = self._tournament_pick(scored, rng)
                parent_b = self._tournament_pick(scored, rng)
                child = crossover(parent_a, parent_b, rng)
                child = mutate(child, rng, self.params.mutation_rate,
                               self.params.max_per_bin)
                next_population.append(self._repair(child))
            population = next_population

        assert best_genome is not None
        return GaResult(best_genome=best_genome, best_fitness=best_fitness,
                        history=history, evaluations=evaluations)
