"""Profile-based bin configuration (Section III-F's "basic solution").

"A basic solution is to profile their applications with their specific
input set and objective functions, and set the configuration based on the
profile.  Profiling is good for stable workloads with fixed input size."

The profiler runs the application alone, collects its intrinsic memory
request inter-arrival histogram, and converts it into a bin configuration
that covers a chosen fraction of the observed demand per replenishment
period -- no search required.  ``coverage`` trades cost for performance:
1.0 buys enough credits for every observed request, lower values shave
the expensive fast bins first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.bins import BinConfig, BinSpec
from ..sim.system import SimSystem, SystemConfig
from ..workloads.benchmarks import trace_for


@dataclass
class Profile:
    """Intrinsic memory behaviour observed during a profiling run."""

    #: memory-request inter-arrival histogram (bucket -> count)
    histogram: Dict[int, int]
    #: cycles profiled
    cycles: int
    #: total memory requests observed
    requests: int
    bucket_width: int = 10

    @property
    def request_rate(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.requests / self.cycles


def profile_application(trace, system_config: SystemConfig,
                        cycles: int) -> Profile:
    """Run the application alone and capture its request distribution."""
    system = SimSystem([trace], config=system_config)
    stats = system.run(cycles)
    core = stats.cores[0]
    return Profile(histogram=dict(core.mem_interarrival),
                   cycles=stats.cycles,
                   requests=sum(core.mem_interarrival.values()) + 1,
                   bucket_width=system.config.interarrival_bucket)


def config_from_profile(profile: Profile, spec: BinSpec = None,
                        coverage: float = 1.0,
                        headroom: float = 1.25) -> BinConfig:
    """Convert an intrinsic distribution into a bin configuration.

    Each histogram bucket maps onto the bin covering its inter-arrival
    time (buckets past the last bin clamp into it, as the hardware does).
    Credits are scaled so the allocation covers the observed per-period
    demand times ``headroom``.  With ``coverage < 1``, spending is trimmed
    from the *fastest* bins first -- they are the expensive ones, and a
    bursty application degrades most gracefully by queueing its deepest
    bursts.
    """
    if spec is None:
        spec = BinSpec()
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    if headroom <= 0:
        raise ValueError("headroom must be positive")
    if not profile.histogram:
        return BinConfig.single_bin(spec.num_bins - 1, 1, spec)

    # Observed requests per bin.
    per_bin = [0.0] * spec.num_bins
    for bucket, count in profile.histogram.items():
        interarrival = bucket * profile.bucket_width
        per_bin[spec.bin_for_interarrival(interarrival)] += count

    # Scale the observation window down to one replenishment period: a
    # first pass with 1:1 credits yields a period estimate, then credits
    # are rescaled so demand over that period is covered with headroom.
    raw = [max(0, math.ceil(c)) for c in per_bin]
    draft = BinConfig(spec=spec,
                      credits=tuple(min(spec.max_credits, c)
                                    for c in raw))
    period = draft.replenish_period()
    window_fraction = min(1.0, period / max(1, profile.cycles))
    credits = [min(spec.max_credits,
                   max(0, math.ceil(c * window_fraction * headroom)))
               for c in per_bin]
    if not any(credits):
        credits[spec.num_bins - 1] = 1

    if coverage < 1.0:
        target = max(1, math.ceil(sum(credits) * coverage))
        index = 0
        while sum(credits) > target and index < spec.num_bins:
            excess = sum(credits) - target
            take = min(credits[index], excess)
            credits[index] -= take
            index += 1
        if not any(credits):
            credits[spec.num_bins - 1] = 1
    return BinConfig(spec=spec, credits=tuple(credits))


def profile_benchmark(benchmark: str, system_config: SystemConfig,
                      cycles: int, spec: BinSpec = None,
                      coverage: float = 1.0, seed: int = 1,
                      headroom: float = 1.25) -> BinConfig:
    """One-call profiling pipeline for a named benchmark."""
    profile = profile_application(trace_for(benchmark, seed=seed),
                                  system_config, cycles)
    return config_from_profile(profile, spec=spec, coverage=coverage,
                               headroom=headroom)
