"""Online genetic algorithm (Figure 10): auto-tuning MITTS at runtime.

The tuner runs *inside* one simulation.  A CONFIG_PHASE is made of
generations of EPOCHs:

1. **Measurement epochs** -- one per core.  The measured core's shaper is
   opened wide while every other core's traffic is held at the source,
   approximating MISE's "highest priority mode" request-service-rate
   measurement through source control (the same trick the paper borrows
   from MISE, Section IV-B).
2. **Evaluation epochs** -- each child configuration is installed in the
   live shapers and run for one EPOCH; the objective (throughput, fairness,
   performance, or perf/cost) is computed from per-epoch counter deltas
   using the paper's online slowdown estimate.
3. At each generation boundary the software runtime evolves the population
   (crossover + mutation); its overhead (~5000 cycles per invocation in
   the paper's measurement) is modelled by blocking all memory traffic for
   ``overhead_cycles`` -- the runtime runs on the cores it manages.

After the last generation the best genome is installed for the RUN_PHASE.
With ``reconfigure_every`` set, a fresh CONFIG_PHASE starts at each program
phase boundary (the phase-based online GA of Section IV-D).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from ..core.bins import BinConfig, BinSpec
from ..core.limiter import NoLimiter, SourceLimiter
from ..core.shaper import MittsShaper
from ..metrics.slowdown import mise_online_slowdown
from ..sim.system import SimSystem
from .genome import Genome, crossover, mutate, random_genome, seed_genomes


class _BlockedLimiter(SourceLimiter):
    """Releases nothing; used to hold other cores during measurement and
    to model the tuner's software overhead."""

    __slots__ = ()

    def earliest_issue(self, now: int) -> Optional[int]:
        return None

    def issue(self, cycle: int, req_id: int = -1) -> None:
        raise RuntimeError("blocked limiter cannot issue")

    def stall_forever(self) -> bool:
        return True


class OnlineGaTuner:
    """Figure 10's online GA attached to a live :class:`SimSystem`."""

    __slots__ = ("system", "spec", "objective", "generations",
                 "population_size", "epoch", "elite", "mutation_rate",
                 "max_per_bin", "overhead_cycles", "reconfigure_every",
                 "repair", "_rng", "num_cores", "alone_rates",
                 "best_genome", "best_fitness", "history",
                 "config_phase_cycles", "run_phase_started_at",
                 "work_at_run_phase", "software_invocations",
                 "_population", "_scored", "_generation", "_child_index",
                 "_snapshots", "_saved_limiters", "_phase_started_at",
                 "configuring", "_phase_token")

    def __init__(self, system: SimSystem, spec: Optional[BinSpec] = None,
                 objective: str = "throughput",
                 generations: int = 3, population: int = 6,
                 epoch: int = 4000, elite: int = 2,
                 mutation_rate: float = 0.2, max_per_bin: int = 64,
                 overhead_cycles: int = 1000, seed: int = 42,
                 reconfigure_every: Optional[int] = None,
                 repair: Optional[Callable[[BinConfig], BinConfig]] = None
                 ) -> None:
        if generations < 1 or population < 2:
            raise ValueError("need >= 1 generation and >= 2 children")
        if epoch < 100:
            raise ValueError("epoch must be >= 100 cycles")
        if objective not in ("throughput", "fairness", "performance",
                             "perf_per_cost"):
            raise ValueError(f"unknown online objective {objective!r}")
        self.system = system
        self.spec = spec or BinSpec()
        self.objective = objective
        self.generations = generations
        self.population_size = population
        self.epoch = epoch
        self.elite = elite
        self.mutation_rate = mutation_rate
        self.max_per_bin = max_per_bin
        self.overhead_cycles = overhead_cycles
        self.reconfigure_every = reconfigure_every
        self.repair = repair
        self._rng = random.Random(seed)
        self.num_cores = len(system.cores)

        self.alone_rates: List[float] = [0.0] * self.num_cores
        self.best_genome: Optional[Genome] = None
        self.best_fitness = float("-inf")
        self.history: List[float] = []
        self.config_phase_cycles = 0
        self.run_phase_started_at: Optional[int] = None
        #: per-core work counters captured when the RUN_PHASE began, so
        #: callers can compute run-phase-only rates
        self.work_at_run_phase: Optional[List[float]] = None
        self.software_invocations = 0

        self._population: List[Genome] = []
        self._scored: List[Tuple[float, Genome]] = []
        self._generation = 0
        self._child_index = 0
        self._snapshots: List[dict] = []
        self._saved_limiters: List[SourceLimiter] = []
        self._phase_started_at = 0
        #: True while a CONFIG_PHASE is in flight
        self.configuring = False
        # Restarting a CONFIG_PHASE invalidates any still-scheduled epoch
        # callbacks from the previous one: each callback carries the token
        # of the phase that scheduled it and no-ops when it is stale.
        self._phase_token = 0

        engine = system.engine
        engine.schedule(engine.now, self._begin_config_phase)

    def _schedule(self, delay: int, callback) -> None:
        """Schedule a callback bound to the current CONFIG_PHASE."""
        token = self._phase_token

        def guarded() -> None:
            if token == self._phase_token:
                callback()

        self.system.engine.schedule_in(delay, guarded)

    def request_reconfigure(self) -> bool:
        """Start a new CONFIG_PHASE (e.g. on a detected phase change).

        Returns False (and does nothing) when a CONFIG_PHASE is already
        running; True when a new one was scheduled.
        """
        if self.configuring:
            return False
        self.system.engine.schedule(self.system.engine.now,
                                    self._begin_config_phase)
        return True

    # ------------------------------------------------------------------
    # phase orchestration

    def _begin_config_phase(self) -> None:
        self._phase_token += 1
        self.configuring = True
        self._phase_started_at = self.system.engine.now
        self._generation = 0
        self._child_index = 0
        self._scored = []
        self._population = [
            self._repair_genome(random_genome(self.spec, self.num_cores,
                                              self._rng, self.max_per_bin))
            for _ in range(self.population_size)]
        # Seed with structured candidates so the search starts from sane
        # operating points rather than pure noise: the previous phase's
        # winner (for phase adaptation), a generous allocation, and a flat
        # mid-rate allocation.
        seeds = list(seed_genomes(self.spec, self.num_cores,
                                  self.max_per_bin))
        if self.best_genome is not None:
            seeds.insert(0, self.best_genome)
        for index, genome in enumerate(seeds[:len(self._population)]):
            self._population[index] = self._repair_genome(genome)
        self._start_measurement(core_index=0)

    def _start_measurement(self, core_index: int) -> None:
        """Open one core, hold the rest: quasi-alone service rate."""
        for core_id in range(self.num_cores):
            limiter = NoLimiter() if core_id == core_index \
                else _BlockedLimiter()
            self.system.set_limiter(core_id, limiter)
        self._take_snapshots()
        self._schedule(self.epoch,
                       lambda: self._finish_measurement(core_index))

    def _finish_measurement(self, core_index: int) -> None:
        delta = self._deltas()[core_index]
        self.alone_rates[core_index] = delta["dram_requests"] / self.epoch
        next_core = core_index + 1
        if next_core < self.num_cores:
            self._start_measurement(next_core)
        else:
            self._start_child_epoch()

    def _install(self, genome: Genome) -> None:
        """Install a genome's shapers with staggered replenish phases."""
        for core_id, config in enumerate(genome):
            phase = core_id * config.replenish_period() // self.num_cores
            self.system.set_limiter(core_id,
                                    MittsShaper(config, phase=phase))

    def _start_child_epoch(self) -> None:
        genome = self._population[self._child_index]
        self._install(genome)
        self._take_snapshots()
        self._schedule(self.epoch, self._finish_child_epoch)

    def _finish_child_epoch(self) -> None:
        genome = self._population[self._child_index]
        fitness = self._score_epoch(genome)
        self._scored.append((fitness, genome))
        if fitness > self.best_fitness:
            self.best_fitness = fitness
            self.best_genome = genome
        self._child_index += 1
        if self._child_index < len(self._population):
            self._start_child_epoch()
        else:
            self._end_generation()

    def _end_generation(self) -> None:
        self._scored.sort(key=lambda pair: pair[0], reverse=True)
        self.history.append(self._scored[0][0])
        self._generation += 1
        self.software_invocations += 1
        if self._generation >= self.generations:
            self._apply_overhead(self._begin_run_phase)
            return
        self._population = self._evolve()
        self._scored = []
        self._child_index = 0
        self._apply_overhead(self._start_child_epoch)

    def _begin_run_phase(self) -> None:
        assert self.best_genome is not None
        self._install(self.best_genome)
        self.configuring = False
        now = self.system.engine.now
        self.run_phase_started_at = now
        self.work_at_run_phase = [float(core.work_cycles)
                                  for core in self.system.stats.cores]
        self.config_phase_cycles += now - self._phase_started_at
        if self.reconfigure_every is not None:
            self.system.engine.schedule_in(
                self.reconfigure_every,
                lambda: self.request_reconfigure())

    # ------------------------------------------------------------------
    # GA mechanics

    def _repair_genome(self, genome: Genome) -> Genome:
        if self.repair is None:
            return genome
        return [self.repair(config) for config in genome]

    def _evolve(self) -> List[Genome]:
        next_population = [genome for _, genome in self._scored[:self.elite]]
        while len(next_population) < self.population_size:
            parent_a = self._tournament()
            parent_b = self._tournament()
            child = crossover(parent_a, parent_b, self._rng)
            child = mutate(child, self._rng, self.mutation_rate,
                           self.max_per_bin)
            next_population.append(self._repair_genome(child))
        return next_population

    def _tournament(self, k: int = 3) -> Genome:
        entrants = [self._scored[self._rng.randrange(len(self._scored))]
                    for _ in range(k)]
        return max(entrants, key=lambda pair: pair[0])[1]

    # ------------------------------------------------------------------
    # measurement plumbing

    def _take_snapshots(self) -> None:
        self._snapshots = [core.snapshot()
                           for core in self.system.stats.cores]

    def _deltas(self) -> List[dict]:
        deltas = []
        for index, core in enumerate(self.system.stats.cores):
            snap = core.snapshot()
            deltas.append({key: snap[key] - self._snapshots[index][key]
                           for key in snap})
        return deltas

    def _score_epoch(self, genome: Genome) -> float:
        from ..core.pricing import config_price_core_equivalents

        deltas = self._deltas()
        if self.objective == "performance":
            return float(sum(d["work_cycles"] for d in deltas))
        if self.objective == "perf_per_cost":
            work = sum(d["work_cycles"] for d in deltas)
            cost = self.num_cores + sum(config_price_core_equivalents(c)
                                        for c in genome)
            return work / max(cost, 1e-9)
        estimates = []
        for core_id, delta in enumerate(deltas):
            shared_rate = delta["dram_requests"] / self.epoch
            stall = delta["shaper_stall_cycles"] \
                + delta["memory_stall_cycles"]
            stall_fraction = min(1.0, stall / self.epoch)
            estimates.append(mise_online_slowdown(
                self.alone_rates[core_id], shared_rate, stall_fraction))
        if self.objective == "fairness":
            return -max(estimates)
        return -sum(estimates) / len(estimates)

    def _apply_overhead(self, then: Callable[[], None]) -> None:
        """Model the runtime's software overhead as a memory-side stall."""
        if self.overhead_cycles <= 0:
            then()
            return
        self._saved_limiters = [port.limiter for port in self.system.ports]
        for core_id in range(self.num_cores):
            self.system.set_limiter(core_id, _BlockedLimiter())

        def restore() -> None:
            for core_id, limiter in enumerate(self._saved_limiters):
                self.system.set_limiter(core_id, limiter)
            then()

        self._schedule(self.overhead_cycles, restore)
