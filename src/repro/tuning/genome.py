"""Genome representation for bin-configuration search.

A genome is one credit vector per core (the GA searches all co-running
programs' configurations jointly -- "Each benchmark can have a different
MITTS bin configuration", Section IV-D).  Crossover and mutation operate
per-core so building blocks transfer between candidate solutions the way
genetic algorithms exploit.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..core.bins import BinConfig, BinSpec
from ..core.config_space import validate_credit_vector

Genome = List[BinConfig]
RepairFn = Callable[[Sequence[int], BinSpec], BinConfig]


def validate_genome(genome: Genome) -> Genome:
    """Reject genomes with unusable per-core configurations, up front.

    Aggregates every core's :func:`~repro.core.config_space.
    validate_credit_vector` failure into one :class:`ValueError` naming
    the offending cores and bins, so user-supplied seed genomes fail at
    GA construction rather than stalling a simulation mid-search.
    Randomly generated and mutated genomes never trip this (both
    operators guarantee at least one credit); the check guards the
    user-facing boundary only.
    """
    if not genome:
        raise ValueError("genome must configure at least one core")
    errors = []
    for core_id, config in enumerate(genome):
        try:
            validate_credit_vector(config.credits, config.spec,
                                   core=core_id)
        except ValueError as exc:
            errors.append(str(exc))
    if errors:
        raise ValueError("invalid genome: " + "; ".join(errors))
    return genome


def random_config(spec: BinSpec, rng: random.Random,
                  max_per_bin: int = None) -> BinConfig:
    """A random credit vector; bins are exponentially weighted so both
    sparse and dense configurations appear in the initial population."""
    if max_per_bin is None:
        max_per_bin = min(spec.max_credits, 64)
    credits = []
    for _ in range(spec.num_bins):
        if rng.random() < 0.3:
            credits.append(0)
        else:
            credits.append(min(max_per_bin,
                               int(rng.expovariate(1.0 / 8.0))))
    if not any(credits):
        credits[rng.randrange(spec.num_bins)] = 1
    return BinConfig(spec=spec, credits=tuple(credits))


def random_genome(spec: BinSpec, num_cores: int, rng: random.Random,
                  max_per_bin: int = None) -> Genome:
    """One random per-core configuration for every core in the mix."""
    return [random_config(spec, rng, max_per_bin)
            for _ in range(num_cores)]


def crossover(parent_a: Genome, parent_b: Genome,
              rng: random.Random) -> Genome:
    """Uniform crossover at bin granularity, independently per core."""
    if len(parent_a) != len(parent_b):
        raise ValueError("genomes must cover the same number of cores")
    child: Genome = []
    for config_a, config_b in zip(parent_a, parent_b):
        credits = tuple(
            a if rng.random() < 0.5 else b
            for a, b in zip(config_a.credits, config_b.credits))
        child.append(BinConfig(spec=config_a.spec, credits=credits))
    return child


def mutate(genome: Genome, rng: random.Random,
           rate: float = 0.15, max_per_bin: int = None) -> Genome:
    """Per-bin point mutation: perturb, zero, or re-roll a credit count."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("mutation rate must be in [0, 1]")
    mutated: Genome = []
    for config in genome:
        spec = config.spec
        limit = max_per_bin if max_per_bin is not None \
            else min(spec.max_credits, 64)
        credits = list(config.credits)
        for index in range(len(credits)):
            if rng.random() >= rate:
                continue
            choice = rng.random()
            if choice < 0.4:
                delta = rng.choice([-4, -2, -1, 1, 2, 4])
                credits[index] = min(limit, max(0, credits[index] + delta))
            elif choice < 0.6:
                credits[index] = 0
            else:
                credits[index] = rng.randrange(limit + 1)
        if not any(credits):
            credits[rng.randrange(len(credits))] = 1
        mutated.append(BinConfig(spec=spec, credits=tuple(credits)))
    return mutated


def seed_genomes(spec: BinSpec, num_cores: int,
                 max_per_bin: int = 64) -> List[Genome]:
    """Structured starting points for the search.

    A generous full-rate allocation, a flat mid-rate allocation, and a
    front-loaded geometric taper -- the three qualitative shapes Figure 17
    shows real optima take -- so the GA begins from sane operating points
    instead of pure noise.
    """
    generous = BinConfig.single_bin(0, max_per_bin, spec)
    flat = BinConfig(spec=spec,
                     credits=tuple([max(1, max_per_bin // 4)]
                                   * spec.num_bins))
    taper = BinConfig(spec=spec,
                      credits=tuple(max(1, max_per_bin >> min(i, 6))
                                    for i in range(spec.num_bins)))
    mid = BinConfig.single_bin(spec.num_bins // 2,
                               max(1, max_per_bin // 4), spec)
    slow = BinConfig.single_bin(spec.num_bins - 1,
                                max(1, max_per_bin // 8), spec)
    return [[generous] * num_cores,
            [flat] * num_cores,
            [taper] * num_cores,
            [mid] * num_cores,
            [slow] * num_cores]


def genome_key(genome: Genome) -> tuple:
    """A hashable identity for a genome, for fitness memoisation.

    Two genomes with equal specs and equal per-core credit vectors
    describe the same shaper configuration and therefore the same
    (deterministic) fitness.
    """
    return tuple((config.spec.num_bins, config.spec.interval_length,
                  config.spec.max_credits, config.credits)
                 for config in genome)


def apply_repair(genome: Genome,
                 repair: Optional[Callable[[BinConfig], BinConfig]]) -> Genome:
    """Run an optional per-core repair operator (constraint projection)."""
    if repair is None:
        return genome
    return [repair(config) for config in genome]
