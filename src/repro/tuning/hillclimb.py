"""Baseline optimizers for the GA-vs-alternatives ablation.

Section IV-B argues hill climbing and gradient descent "are likely to get
stuck in a local optimal solution" in the non-convex bin-configuration
space; these implementations make that claim testable
(``benchmarks/bench_ablation_optimizer.py``).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..core.bins import BinConfig, BinSpec
from .ga import GaResult
from .genome import Genome, random_genome


class HillClimber:
    """Steepest-ascent hill climbing over single-credit moves.

    Each step tries perturbing every (core, bin) coordinate by +/- delta
    and takes the best improving move; terminates at a local optimum or
    when the evaluation budget runs out.
    """

    def __init__(self, fitness: Callable[[Genome], float], spec: BinSpec,
                 num_cores: int, budget: int = 96, delta: int = 2,
                 max_per_bin: int = 64, seed: int = 42,
                 repair: Optional[Callable[[BinConfig], BinConfig]] = None
                 ) -> None:
        self.fitness = fitness
        self.spec = spec
        self.num_cores = num_cores
        self.budget = budget
        self.delta = delta
        self.max_per_bin = max_per_bin
        self.seed = seed
        self.repair = repair

    def _neighbours(self, genome: Genome) -> List[Genome]:
        moves = []
        for core in range(self.num_cores):
            for index in range(self.spec.num_bins):
                for delta in (self.delta, -self.delta):
                    value = genome[core].credits[index] + delta
                    if not 0 <= value <= self.max_per_bin:
                        continue
                    candidate = list(genome)
                    candidate[core] = genome[core].with_credits(index, value)
                    if self.repair is not None:
                        candidate[core] = self.repair(candidate[core])
                    moves.append(candidate)
        return moves

    def run(self) -> GaResult:
        rng = random.Random(self.seed)
        current = random_genome(self.spec, self.num_cores, rng,
                                self.max_per_bin)
        if self.repair is not None:
            current = [self.repair(c) for c in current]
        current_fitness = self.fitness(current)
        evaluations = 1
        history = [current_fitness]
        while evaluations < self.budget:
            best_move = None
            best_fitness = current_fitness
            for candidate in self._neighbours(current):
                if evaluations >= self.budget:
                    break
                score = self.fitness(candidate)
                evaluations += 1
                if score > best_fitness:
                    best_fitness = score
                    best_move = candidate
            if best_move is None:
                break  # local optimum
            current, current_fitness = best_move, best_fitness
            history.append(current_fitness)
        return GaResult(best_genome=current, best_fitness=current_fitness,
                        history=history, evaluations=evaluations)


class RandomSearch:
    """Uniform random sampling with the same evaluation budget."""

    def __init__(self, fitness: Callable[[Genome], float], spec: BinSpec,
                 num_cores: int, budget: int = 96, max_per_bin: int = 64,
                 seed: int = 42,
                 repair: Optional[Callable[[BinConfig], BinConfig]] = None
                 ) -> None:
        self.fitness = fitness
        self.spec = spec
        self.num_cores = num_cores
        self.budget = budget
        self.max_per_bin = max_per_bin
        self.seed = seed
        self.repair = repair

    def run(self) -> GaResult:
        rng = random.Random(self.seed)
        best_genome = None
        best_fitness = float("-inf")
        history = []
        for _ in range(self.budget):
            genome = random_genome(self.spec, self.num_cores, rng,
                                   self.max_per_bin)
            if self.repair is not None:
                genome = [self.repair(c) for c in genome]
            score = self.fitness(genome)
            if score > best_fitness:
                best_fitness = score
                best_genome = genome
            history.append(best_fitness)
        assert best_genome is not None
        return GaResult(best_genome=best_genome, best_fitness=best_fitness,
                        history=history, evaluations=self.budget)
